//! The four controlled datasets of the paper's Section 5, as scalable
//! generative presets.
//!
//! | Paper dataset | Records | Queriable attributes (Table 2) | Distinct values |
//! |---|---|---|---|
//! | eBay auctions ('01) | 20,000 | Categories, Seller, Location, Price | 22,950 |
//! | ACM Digital Library | 150,000 | Title, Conference, Journal, Author, Subject keywords | 370,416 |
//! | DBLP | 500,000 | Title, Conference, Journal, Author, Volume | 860,293 |
//! | IMDB | 400,000 | Actor, Actress, Director, Editor, Producer, Costumer, Composer, Photographer, Language, Company, Release Location | 1,225,895 |
//!
//! `scale = 1.0` reproduces the paper's record counts; smaller scales shrink
//! records and value pools proportionally so density, connectivity and degree
//! shape are preserved. Every preset is deterministic in `(scale, seed)`.

use crate::domain::{AttrGen, AttrKind, DomainModel};
use dwc_model::{AttrId, UniversalTable};

/// The four controlled datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// eBay auction items (20k records at scale 1).
    Ebay,
    /// ACM Digital Library (150k records at scale 1).
    Acm,
    /// DBLP (500k records at scale 1).
    Dblp,
    /// Internet Movie Database (400k records at scale 1).
    Imdb,
}

impl Preset {
    /// All four presets, in the paper's order.
    pub const ALL: [Preset; 4] = [Preset::Ebay, Preset::Acm, Preset::Dblp, Preset::Imdb];

    /// Dataset label as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Ebay => "eBay",
            Preset::Acm => "ACM Digital Library",
            Preset::Dblp => "DBLP",
            Preset::Imdb => "IMDB",
        }
    }

    /// Paper record count at scale 1.
    pub fn base_records(self) -> usize {
        match self {
            Preset::Ebay => 20_000,
            Preset::Acm => 150_000,
            Preset::Dblp => 500_000,
            Preset::Imdb => 400_000,
        }
    }

    /// Paper-reported distinct attribute-value count (Table 2), for the
    /// paper-vs-ours comparison printed by the Table 2 harness.
    pub fn paper_distinct_values(self) -> usize {
        match self {
            Preset::Ebay => 22_950,
            Preset::Acm => 370_416,
            Preset::Dblp => 860_293,
            Preset::Imdb => 1_225_895,
        }
    }

    /// The generative model at the given scale.
    pub fn model(self, scale: f64) -> DomainModel {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let s = |base: usize| ((base as f64 * scale).round() as usize).max(8);
        match self {
            // Auction listings cluster hard: a seller lists many items in the
            // same category, from the same location, at similar prices. The
            // strong grouping reproduces the attribute-value dependency that
            // §3.3 observes in real data ("many authors often publish papers
            // together") and that the MMMI experiments (Figure 4) rely on.
            Preset::Ebay => DomainModel {
                name: "eBay".into(),
                attrs: vec![
                    // Categories are global hubs (a handful of categories
                    // span much of the site) — the structure the greedy
                    // link-based crawler exploits in Figure 3.
                    AttrGen::grouped("Categories", s(2_500), 1.15, 1, 1, 4, 0.35),
                    // Sellers and locations cluster hard within communities —
                    // the §3.3 attribute-value dependency behind Figure 4.
                    AttrGen::grouped("Seller", s(14_000), 0.85, 1, 1, 8, 0.95),
                    AttrGen::grouped("Location", s(5_500), 0.95, 1, 1, 10, 0.85),
                    AttrGen::grouped("Price", s(1_000), 0.9, 1, 1, 4, 0.6),
                ],
                communities: s(600),
                community_exponent: 0.8,
            },
            Preset::Acm => DomainModel {
                name: "ACM Digital Library".into(),
                attrs: vec![
                    AttrGen::unique("Title"),
                    AttrGen::categorical("Conference", s(2_000), 1.0).optional(),
                    AttrGen::categorical("Journal", s(800), 1.0).optional(),
                    AttrGen::grouped("Author", s(300_000), 0.8, 1, 4, 10, 0.65),
                    AttrGen::grouped("Subject keywords", s(12_000), 1.0, 1, 4, 12, 0.4),
                ],
                communities: s(6_000),
                community_exponent: 0.85,
            },
            Preset::Dblp => DomainModel {
                name: "DBLP".into(),
                attrs: vec![
                    AttrGen::unique("Title"),
                    AttrGen::categorical("Conference", s(4_000), 1.0).optional(),
                    AttrGen::categorical("Journal", s(1_500), 1.0).optional(),
                    AttrGen::grouped("Author", s(550_000), 0.8, 1, 4, 10, 0.65),
                    AttrGen::categorical("Volume", s(600), 0.9),
                ],
                communities: s(20_000),
                community_exponent: 0.85,
            },
            Preset::Imdb => DomainModel {
                name: "IMDB".into(),
                attrs: vec![
                    AttrGen::grouped("Actor", s(900_000), 0.75, 1, 5, 20, 0.6),
                    AttrGen::grouped("Actress", s(500_000), 0.75, 0, 3, 20, 0.6),
                    AttrGen::grouped("Director", s(200_000), 0.8, 1, 1, 5, 0.5),
                    AttrGen::categorical("Editor", s(100_000), 0.8).optional(),
                    AttrGen::grouped("Producer", s(150_000), 0.8, 0, 2, 5, 0.4),
                    AttrGen::categorical("Costumer", s(60_000), 0.8).optional(),
                    AttrGen::categorical("Composer", s(50_000), 0.85).optional(),
                    AttrGen::categorical("Photographer", s(70_000), 0.8).optional(),
                    AttrGen::categorical("Language", 150.max(s(150)), 1.1),
                    AttrGen::categorical("Company", s(80_000), 0.9).optional(),
                    AttrGen::categorical("Release Location", 300.max(s(300)), 1.0),
                    AttrGen::year("Year", 1920, 2005),
                ],
                communities: s(15_000),
                community_exponent: 0.85,
            },
        }
    }

    /// Generates the dataset at `scale` with the given seed.
    pub fn table(self, scale: f64, seed: u64) -> UniversalTable {
        let records = ((self.base_records() as f64 * scale).round() as usize).max(16);
        self.model(scale).generate(records, seed)
    }

    /// The generative model for an out-of-core run at `scale` records.
    ///
    /// Record count grows past the paper's sizes but value pools (and
    /// communities) grow only as the **square root** of the record
    /// multiplier: vocabulary — which stays resident in the interner even
    /// under the paged backend — stays sublinear while the record mass,
    /// which lives in disk segments, carries the bulk. That matches real
    /// sources, where distinct attribute values grow far slower than
    /// records, and is what makes a bounded-RSS crawl of 100M records an
    /// honest claim.
    ///
    /// `Unique` attributes (ACM/DBLP titles) still mint one value per
    /// record and therefore one resident interner entry each; prefer the
    /// [`Preset::Imdb`] / [`Preset::Ebay`] presets — which have none — when
    /// the point is bounded memory.
    pub fn big_model(self, scale: BigScale) -> DomainModel {
        let mult = (scale.records() as f64 / self.base_records() as f64).sqrt();
        let grow = |base: usize| ((base as f64 * mult).round() as usize).max(8);
        let mut model = self.model(1.0);
        model.name = format!("{} {}", model.name, scale.label());
        model.communities = grow(model.communities);
        for attr in &mut model.attrs {
            if let AttrKind::Categorical { pool_size, .. } = &mut attr.kind {
                *pool_size = grow(*pool_size);
            }
        }
        model
    }

    /// Streams the out-of-core dataset record by record, never holding more
    /// than one record in memory. `emit` gets `(record_number, fields)`; the
    /// fields buffer is reused across calls. Deterministic in
    /// `(preset, scale, seed)`.
    pub fn stream_big<F>(self, scale: BigScale, seed: u64, emit: F)
    where
        F: FnMut(usize, &[(AttrId, String)]),
    {
        self.big_model(scale).generate_with(scale.records(), seed, emit)
    }
}

/// Out-of-core record-count scales: sources far larger than a resident
/// [`UniversalTable`] should hold, generated to disk via
/// [`Preset::stream_big`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BigScale {
    /// Ten million records.
    M10,
    /// Fifty million records.
    M50,
    /// One hundred million records.
    M100,
}

impl BigScale {
    /// All scales, ascending.
    pub const ALL: [BigScale; 3] = [BigScale::M10, BigScale::M50, BigScale::M100];

    /// The record count at this scale.
    pub fn records(self) -> usize {
        match self {
            BigScale::M10 => 10_000_000,
            BigScale::M50 => 50_000_000,
            BigScale::M100 => 100_000_000,
        }
    }

    /// Short label for file names and logs.
    pub fn label(self) -> &'static str {
        match self {
            BigScale::M10 => "10M",
            BigScale::M50 => "50M",
            BigScale::M100 => "100M",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::components::Connectivity;

    #[test]
    fn all_presets_generate_at_small_scale() {
        for p in Preset::ALL {
            let t = p.table(0.01, 1);
            assert!(t.num_records() > 0, "{} empty", p.name());
            assert!(t.num_distinct_values() > 0);
        }
    }

    #[test]
    fn record_counts_scale() {
        let t = Preset::Ebay.table(0.1, 1);
        assert_eq!(t.num_records(), 2_000);
        let t = Preset::Dblp.table(0.01, 1);
        assert_eq!(t.num_records(), 5_000);
    }

    #[test]
    fn presets_are_well_connected_like_the_paper() {
        // Section 5: "99% of all the records are connected".
        for p in [Preset::Ebay, Preset::Acm] {
            let t = p.table(0.05, 3);
            let c = Connectivity::analyze(&t);
            assert!(
                c.largest_component_coverage() > 0.99,
                "{} coverage {}",
                p.name(),
                c.largest_component_coverage()
            );
        }
    }

    #[test]
    fn distinct_value_ratio_roughly_matches_table2() {
        // Table 2 ratio for eBay: 22,950 / 20,000 ≈ 1.15 values per record.
        // At small scale we accept a generous band; the Table 2 harness
        // reports exact realized numbers.
        let t = Preset::Ebay.table(0.1, 7);
        let ratio = t.num_distinct_values() as f64 / t.num_records() as f64;
        assert!(ratio > 0.4 && ratio < 3.0, "eBay ratio {ratio}");
        // DBLP ratio: 860,293 / 500,000 ≈ 1.7.
        let t = Preset::Dblp.table(0.02, 7);
        let ratio = t.num_distinct_values() as f64 / t.num_records() as f64;
        assert!(ratio > 0.8 && ratio < 3.5, "DBLP ratio {ratio}");
    }

    #[test]
    fn imdb_year_is_result_only() {
        let t = Preset::Imdb.table(0.005, 1);
        let year = t.schema().attr_by_name("Year").unwrap();
        assert!(!t.schema().attr(year).queriable);
        // Exactly the 11 Table 2 attributes are queriable.
        assert_eq!(t.schema().queriable_attrs().len(), 11);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = Preset::Ebay.model(0.0);
    }

    #[test]
    fn big_models_scale_pools_sublinearly() {
        let base = Preset::Imdb.model(1.0);
        let big = Preset::Imdb.big_model(BigScale::M100);
        // 100M / 400k = 250x records, sqrt = ~15.8x pools.
        let base_pool = |m: &DomainModel, i: usize| match m.attrs[i].kind {
            AttrKind::Categorical { pool_size, .. } => pool_size,
            _ => panic!("expected categorical"),
        };
        let ratio = base_pool(&big, 0) as f64 / base_pool(&base, 0) as f64;
        assert!((15.0..17.0).contains(&ratio), "pool ratio {ratio}");
        assert!(big.communities > base.communities);
        assert!(big.name.contains("100M"));
        // Schema is unchanged: the paged and resident servers present the
        // same interface regardless of scale.
        assert_eq!(big.schema(), base.schema());
    }

    #[test]
    fn big_scales_enumerate() {
        assert_eq!(BigScale::M10.records(), 10_000_000);
        assert_eq!(BigScale::M50.records(), 50_000_000);
        assert_eq!(BigScale::M100.records(), 100_000_000);
        assert_eq!(BigScale::ALL.len(), 3);
        assert_eq!(BigScale::M50.label(), "50M");
    }

    #[test]
    fn stream_big_is_deterministic_prefixwise() {
        // stream_big at a given seed must emit the same records every run;
        // spot-check by hashing the first few records twice. (The full-size
        // streams are exercised by BENCH-9, not unit tests.)
        let mut first: Vec<String> = Vec::new();
        let model = Preset::Ebay.big_model(BigScale::M10);
        model.generate_with(50, 21, |_, fields| {
            first.push(format!("{fields:?}"));
        });
        let mut second: Vec<String> = Vec::new();
        model.generate_with(50, 21, |_, fields| {
            second.push(format!("{fields:?}"));
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 50);
    }
}
