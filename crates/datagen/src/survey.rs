//! The interface-capability survey behind the paper's Table 1.
//!
//! The paper manually examined 480 web sources across 11 domains (5 from the
//! UIUC repository, 6 from Bizrate.com with the top 25 stores each) and
//! reported, per domain, the percentage accepting keyword search (K.W.) and
//! the percentage fitting the simplified single-attribute query model
//! (S.Q.M.). That is an observational study of the live 2005 web; we model it
//! as a generative interface-capability distribution calibrated to the
//! paper's observed rates and *sample* sources from it, so the whole
//! classify-source → decide-crawlability pipeline is executable code.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibrated capability rates for one product domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainSurveySpec {
    /// Product domain ("Book", "DVD", …).
    pub domain: &'static str,
    /// Which repository the paper drew the sources from.
    pub repository: &'static str,
    /// Number of sources examined.
    pub num_sources: usize,
    /// Paper-reported fraction accepting keyword search.
    pub p_keyword: f64,
    /// Paper-reported fraction fitting the simplified query model.
    pub p_single_attr: f64,
}

/// The eleven domains of Table 1 with the paper's observed rates.
///
/// The UIUC repository contributed 5 domains and Bizrate 6 × 25 = 150
/// sources; the remaining 330 sources are split evenly across the UIUC
/// domains.
pub fn paper_table1() -> Vec<DomainSurveySpec> {
    let uiuc = |domain, kw, sqm| DomainSurveySpec {
        domain,
        repository: "UIUC",
        num_sources: 66,
        p_keyword: kw,
        p_single_attr: sqm,
    };
    let bizrate = |domain, kw, sqm| DomainSurveySpec {
        domain,
        repository: "Bizrate",
        num_sources: 25,
        p_keyword: kw,
        p_single_attr: sqm,
    };
    vec![
        uiuc("Book", 0.82, 1.00),
        uiuc("Job", 0.98, 0.96),
        uiuc("Movie", 0.63, 1.00),
        uiuc("Car", 0.14, 0.58),
        uiuc("Music", 0.65, 1.00),
        bizrate("DVD", 0.78, 0.96),
        bizrate("Electronic", 0.96, 0.96),
        bizrate("Computer", 1.00, 1.00),
        bizrate("Games", 0.91, 0.96),
        bizrate("Appliance", 1.00, 1.00),
        bizrate("Jewellery", 0.96, 1.00),
    ]
}

/// A simulated source's interface capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceCapabilities {
    /// Accepts keyword search over its transactional data.
    pub keyword: bool,
    /// Accepts single attribute-value structured queries.
    pub single_attr: bool,
}

impl SourceCapabilities {
    /// Whether a single-value crawler (this paper's model) can crawl the
    /// source at all.
    pub fn crawlable(self) -> bool {
        self.keyword || self.single_attr
    }
}

/// Observed rates after sampling one domain's sources.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyOutcome {
    /// The sampled domain spec.
    pub spec: DomainSurveySpec,
    /// Observed keyword-search fraction.
    pub observed_keyword: f64,
    /// Observed single-attribute fraction.
    pub observed_single_attr: f64,
    /// Observed fraction of sources crawlable by a single-value crawler.
    pub observed_crawlable: f64,
}

/// Samples each source's capabilities and tallies the observed rates.
pub fn run_survey(specs: &[DomainSurveySpec], seed: u64) -> Vec<SurveyOutcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    specs
        .iter()
        .map(|spec| {
            let mut kw = 0usize;
            let mut sqm = 0usize;
            let mut crawlable = 0usize;
            for _ in 0..spec.num_sources {
                let caps = SourceCapabilities {
                    keyword: rng.gen::<f64>() < spec.p_keyword,
                    single_attr: rng.gen::<f64>() < spec.p_single_attr,
                };
                kw += usize::from(caps.keyword);
                sqm += usize::from(caps.single_attr);
                crawlable += usize::from(caps.crawlable());
            }
            let n = spec.num_sources as f64;
            SurveyOutcome {
                spec: *spec,
                observed_keyword: kw as f64 / n,
                observed_single_attr: sqm as f64 / n,
                observed_crawlable: crawlable as f64 / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_domains_and_480_sources() {
        let specs = paper_table1();
        assert_eq!(specs.len(), 11);
        let total: usize = specs.iter().map(|s| s.num_sources).sum();
        assert_eq!(total, 480);
    }

    #[test]
    fn survey_is_deterministic() {
        let specs = paper_table1();
        let a = run_survey(&specs, 9);
        let b = run_survey(&specs, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_rates_near_calibration() {
        let specs = paper_table1();
        let out = run_survey(&specs, 2006);
        for o in &out {
            assert!(
                (o.observed_keyword - o.spec.p_keyword).abs() < 0.22,
                "{}: observed kw {} vs {}",
                o.spec.domain,
                o.observed_keyword,
                o.spec.p_keyword
            );
            assert!(
                (o.observed_single_attr - o.spec.p_single_attr).abs() < 0.22,
                "{}: observed sqm {} vs {}",
                o.spec.domain,
                o.observed_single_attr,
                o.spec.p_single_attr
            );
        }
    }

    #[test]
    fn crawlable_is_union_of_capabilities() {
        assert!(SourceCapabilities { keyword: true, single_attr: false }.crawlable());
        assert!(SourceCapabilities { keyword: false, single_attr: true }.crawlable());
        assert!(!SourceCapabilities { keyword: false, single_attr: false }.crawlable());
    }

    #[test]
    fn crawlable_rate_at_least_max_of_rates() {
        let specs = paper_table1();
        for o in run_survey(&specs, 5) {
            assert!(o.observed_crawlable >= o.observed_keyword.max(o.observed_single_attr) - 1e-12);
        }
    }

    #[test]
    fn certain_capabilities_are_certain() {
        // Computer and Appliance are 100%/100% in the paper: every sampled
        // source must be crawlable regardless of seed.
        let specs: Vec<_> = paper_table1().into_iter().filter(|s| s.p_keyword >= 1.0).collect();
        for seed in 0..5 {
            for o in run_survey(&specs, seed) {
                assert_eq!(o.observed_crawlable, 1.0, "{}", o.spec.domain);
            }
        }
    }
}
