//! Synthetic dataset generators standing in for the paper's real data.
//!
//! The paper evaluates on four real datasets (eBay auctions, ACM Digital
//! Library, DBLP, IMDB) and a real crawl of Amazon's DVD catalogue. None of
//! those dumps are redistributable, so this crate implements *generative
//! domain models* that reproduce the properties the paper's algorithms
//! actually exploit:
//!
//! * **power-law value popularity** (Figure 2: AVG degree distributions are
//!   "very close to power-law") via Zipf-sampled value pools,
//! * **attribute-value dependency** (Section 3.3: "many authors often publish
//!   papers together") via latent record communities that concentrate
//!   co-occurrence,
//! * **domain overlap** (Section 4: IMDB and Amazon DVD share a domain) via
//!   paired sampling from one hidden model,
//! * the paper-matched **interface schemas** of Table 2.
//!
//! Modules:
//! * [`domain`] — the generic generative model ([`domain::DomainModel`]) and record
//!   sampler,
//! * [`presets`] — eBay / ACM / DBLP / IMDB presets at scalable sizes,
//! * [`paired`] — target + domain-sample generation for the Amazon-DVD
//!   experiments (Figures 5–6),
//! * [`survey`] — the interface-capability model behind Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod loader;
pub mod paired;
pub mod presets;
pub mod survey;

pub use domain::{AttrGen, AttrKind, DomainModel};
pub use paired::{PairedDataset, PairedSpec};
pub use presets::{BigScale, Preset};
pub use survey::{DomainSurveySpec, SurveyOutcome};
