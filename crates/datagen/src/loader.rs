//! CSV import/export for universal tables.
//!
//! Lets a downstream user feed *their own* structured data to the crawler
//! and simulator instead of the generated presets. The dialect is RFC-4180
//! quoting plus two header conventions:
//!
//! * a trailing `*` on a header name marks the attribute **result-only**
//!   (displayed in result pages, not queriable — Definition 2.2's `A_r∖A_q`),
//! * a trailing `+` marks it **multi-valued**; its cells are split on `;`
//!   (the paper concatenates multi-valued attributes like `Authors` into one
//!   column — this is that column's inverse).
//!
//! ```text
//! Title,Author+,Year*
//! "Paper, the first",smith;jones,2004
//! Second paper,lee,2005
//! ```

use dwc_model::{AttrId, AttrSpec, Schema, UniversalTable};

/// Errors while parsing a CSV table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input has no header row.
    MissingHeader,
    /// A quoted field never closes.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// A data row has more fields than the header.
    TooManyFields {
        /// 1-based row number (header = 1).
        row: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::TooManyFields { row } => {
                write!(f, "row {row} has more fields than the header")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits CSV text into rows of fields (RFC-4180 quoting: `"` wraps fields,
/// `""` escapes a quote, newlines allowed inside quotes).
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_start_line = 1usize;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_start_line = line;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\r' => {}
            '\n' => {
                line += 1;
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_start_line });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Quotes a field when needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains(';') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parses a CSV document into a universal table (see module docs for the
/// header conventions). Empty cells contribute no value.
pub fn load_csv(text: &str) -> Result<UniversalTable, CsvError> {
    let rows = parse_rows(text)?;
    let Some(header) = rows.first() else { return Err(CsvError::MissingHeader) };
    if header.is_empty() || header.iter().all(|h| h.is_empty()) {
        return Err(CsvError::MissingHeader);
    }
    let mut specs = Vec::with_capacity(header.len());
    let mut multi = Vec::with_capacity(header.len());
    for raw in header {
        let (name, queriable, is_multi) = match raw.as_str() {
            s if s.ends_with('*') => (&s[..s.len() - 1], false, false),
            s if s.ends_with('+') => (&s[..s.len() - 1], true, true),
            s => (s, true, false),
        };
        specs.push(AttrSpec { name: name.to_owned(), queriable, multi_valued: is_multi });
        multi.push(is_multi);
    }
    let mut table = UniversalTable::new(Schema::new(specs));
    for (ri, row) in rows.iter().enumerate().skip(1) {
        if row.len() > header.len() {
            return Err(CsvError::TooManyFields { row: ri + 1 });
        }
        if row.iter().all(|c| c.is_empty()) {
            continue;
        }
        let mut fields: Vec<(AttrId, &str)> = Vec::new();
        for (ci, cell) in row.iter().enumerate() {
            if cell.is_empty() {
                continue;
            }
            let attr = AttrId(ci as u16);
            if multi[ci] {
                fields.extend(cell.split(';').filter(|p| !p.is_empty()).map(|p| (attr, p)));
            } else {
                fields.push((attr, cell.as_str()));
            }
        }
        table.push_record_strs(fields);
    }
    Ok(table)
}

/// Serializes a universal table back to the CSV dialect. Multi-valued cells
/// are joined on `;`; the header carries the `*`/`+` markers so the result
/// re-loads with the identical schema.
pub fn to_csv(table: &UniversalTable) -> String {
    let schema = table.schema();
    let mut out = String::new();
    let header: Vec<String> = schema
        .iter()
        .map(|(_, spec)| {
            let suffix = if spec.multi_valued {
                "+"
            } else if !spec.queriable {
                "*"
            } else {
                ""
            };
            format!("{}{}", quote(&spec.name), suffix)
        })
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, rec) in table.iter() {
        let mut cells: Vec<Vec<&str>> = vec![Vec::new(); schema.len()];
        for &v in rec.values() {
            let attr = table.interner().attr_of(v);
            cells[attr.0 as usize].push(table.interner().value_str(v));
        }
        let row: Vec<String> = cells
            .iter()
            .map(|vals| {
                if vals.len() <= 1 {
                    vals.first().map(|s| quote(s)).unwrap_or_default()
                } else {
                    quote(&vals.join(";"))
                }
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "Title,Author+,Year*\n\"Paper, the first\",smith;jones,2004\nSecond paper,lee,2005\n";

    #[test]
    fn loads_schema_conventions() {
        let t = load_csv(SAMPLE).unwrap();
        assert_eq!(t.num_records(), 2);
        let s = t.schema();
        assert!(s.attr(AttrId(0)).queriable);
        assert!(s.attr(AttrId(1)).multi_valued);
        assert!(!s.attr(AttrId(2)).queriable, "Year* is result-only");
        assert_eq!(s.attr(AttrId(0)).name, "Title");
    }

    #[test]
    fn quoted_commas_and_multi_values() {
        let t = load_csv(SAMPLE).unwrap();
        assert!(t.interner().get(AttrId(0), "Paper, the first").is_some());
        assert!(t.interner().get(AttrId(1), "smith").is_some());
        assert!(t.interner().get(AttrId(1), "jones").is_some());
        let rec0 = t.record(dwc_model::RecordId(0));
        assert_eq!(rec0.len(), 4, "title + 2 authors + year");
    }

    #[test]
    fn roundtrip_preserves_content() {
        let t = load_csv(SAMPLE).unwrap();
        let csv = to_csv(&t);
        let t2 = load_csv(&csv).unwrap();
        assert_eq!(t2.num_records(), t.num_records());
        assert_eq!(t2.schema(), t.schema());
        for (id, rec) in t.iter() {
            let strs: Vec<(u16, &str)> = rec
                .values()
                .iter()
                .map(|&v| (t.interner().attr_of(v).0, t.interner().value_str(v)))
                .collect();
            let rec2 = t2.record(id);
            let strs2: Vec<(u16, &str)> = rec2
                .values()
                .iter()
                .map(|&v| (t2.interner().attr_of(v).0, t2.interner().value_str(v)))
                .collect();
            let (mut a, mut b) = (strs.clone(), strs2.clone());
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn escaped_quotes_and_embedded_newlines() {
        let csv = "A\n\"he said \"\"hi\"\"\"\n\"line1\nline2\"\n";
        let t = load_csv(csv).unwrap();
        assert!(t.interner().get(AttrId(0), "he said \"hi\"").is_some());
        assert!(t.interner().get(AttrId(0), "line1\nline2").is_some());
        // And back out again.
        let t2 = load_csv(&to_csv(&t)).unwrap();
        assert!(t2.interner().get(AttrId(0), "he said \"hi\"").is_some());
    }

    #[test]
    fn empty_cells_and_rows_skipped() {
        let csv = "A,B\nx,\n,\n,y\n";
        let t = load_csv(csv).unwrap();
        assert_eq!(t.num_records(), 2, "the all-empty row is skipped");
        assert_eq!(t.record(dwc_model::RecordId(0)).len(), 1);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(load_csv("").unwrap_err(), CsvError::MissingHeader);
        assert!(matches!(load_csv("A\n\"oops"), Err(CsvError::UnterminatedQuote { .. })));
        assert_eq!(load_csv("A\nx,y\n").unwrap_err(), CsvError::TooManyFields { row: 2 });
    }

    #[test]
    fn generated_preset_roundtrips_through_csv() {
        let t = crate::presets::Preset::Ebay.table(0.002, 3);
        let csv = to_csv(&t);
        let t2 = load_csv(&csv).unwrap();
        assert_eq!(t2.num_records(), t.num_records());
        assert_eq!(t2.num_distinct_values(), t.num_distinct_values());
    }
}
