//! CSV import/export for universal tables.
//!
//! Lets a downstream user feed *their own* structured data to the crawler
//! and simulator instead of the generated presets. The dialect is RFC-4180
//! quoting plus two header conventions:
//!
//! * a trailing `*` on a header name marks the attribute **result-only**
//!   (displayed in result pages, not queriable — Definition 2.2's `A_r∖A_q`),
//! * a trailing `+` marks it **multi-valued**; its cells are split on `;`
//!   (the paper concatenates multi-valued attributes like `Authors` into one
//!   column — this is that column's inverse).
//!
//! ```text
//! Title,Author+,Year*
//! "Paper, the first",smith;jones,2004
//! Second paper,lee,2005
//! ```

use dwc_model::{AttrId, AttrSpec, Schema, UniversalTable};

/// Errors while parsing a CSV table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input has no header row.
    MissingHeader,
    /// A quoted field never closes.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// A data row has more fields than the header.
    TooManyFields {
        /// 1-based row number (header = 1).
        row: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::TooManyFields { row } => {
                write!(f, "row {row} has more fields than the header")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Streaming CSV row parser (RFC-4180 quoting: `"` wraps fields, `""`
/// escapes a quote, newlines allowed inside quotes). Yields one row at a
/// time so the loader never materializes the whole document as rows — a
/// multi-gigabyte export costs one row of memory, not two copies of the
/// file.
struct CsvRows<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    finished: bool,
}

impl<'a> CsvRows<'a> {
    fn new(text: &'a str) -> Self {
        CsvRows { chars: text.chars().peekable(), line: 1, finished: false }
    }
}

impl Iterator for CsvRows<'_> {
    type Item = Result<Vec<String>, CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let mut row: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut quote_start_line = self.line;
        let mut any = false;
        while let Some(c) = self.chars.next() {
            any = true;
            if in_quotes {
                match c {
                    '"' => {
                        if self.chars.peek() == Some(&'"') {
                            self.chars.next();
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    '\n' => {
                        self.line += 1;
                        field.push('\n');
                    }
                    _ => field.push(c),
                }
                continue;
            }
            match c {
                '"' => {
                    in_quotes = true;
                    quote_start_line = self.line;
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    self.line += 1;
                    row.push(field);
                    return Some(Ok(row));
                }
                _ => field.push(c),
            }
        }
        self.finished = true;
        if in_quotes {
            return Some(Err(CsvError::UnterminatedQuote { line: quote_start_line }));
        }
        if any && (!field.is_empty() || !row.is_empty()) {
            row.push(field);
            return Some(Ok(row));
        }
        None
    }
}

/// Quotes a field when needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains(';') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parses a CSV document into a universal table (see module docs for the
/// header conventions). Empty cells contribute no value.
pub fn load_csv(text: &str) -> Result<UniversalTable, CsvError> {
    let mut rows = CsvRows::new(text);
    let Some(header) = rows.next().transpose()? else { return Err(CsvError::MissingHeader) };
    if header.is_empty() || header.iter().all(|h| h.is_empty()) {
        return Err(CsvError::MissingHeader);
    }
    let mut specs = Vec::with_capacity(header.len());
    let mut multi = Vec::with_capacity(header.len());
    for raw in &header {
        let (name, queriable, is_multi) = match raw.as_str() {
            s if s.ends_with('*') => (&s[..s.len() - 1], false, false),
            s if s.ends_with('+') => (&s[..s.len() - 1], true, true),
            s => (s, true, false),
        };
        specs.push(AttrSpec { name: name.to_owned(), queriable, multi_valued: is_multi });
        multi.push(is_multi);
    }
    let mut table = UniversalTable::new(Schema::new(specs));
    for (ri, row) in rows.enumerate() {
        let row = row?;
        // The header was row 1; `ri` counts data rows from 0.
        if row.len() > header.len() {
            return Err(CsvError::TooManyFields { row: ri + 2 });
        }
        if row.iter().all(|c| c.is_empty()) {
            continue;
        }
        let mut fields: Vec<(AttrId, &str)> = Vec::new();
        for (ci, cell) in row.iter().enumerate() {
            if cell.is_empty() {
                continue;
            }
            let attr = AttrId(ci as u16);
            if multi[ci] {
                fields.extend(cell.split(';').filter(|p| !p.is_empty()).map(|p| (attr, p)));
            } else {
                fields.push((attr, cell.as_str()));
            }
        }
        table.push_record_strs(fields);
    }
    Ok(table)
}

/// Streaming CSV emitter: the header goes out at construction, then one row
/// per [`CsvWriter::write_record`] call. This is the generate-to-disk
/// complement of the streaming generators — 100M records flow straight from
/// the sampler through this writer to a file without a table in between.
#[derive(Debug)]
pub struct CsvWriter<W: std::io::Write> {
    out: W,
    /// Scratch row, bucketed by attribute, reused across records.
    cells: Vec<Vec<String>>,
}

impl<W: std::io::Write> CsvWriter<W> {
    /// Writes the header row (with the `*`/`+` markers, so the output
    /// re-loads with the identical schema) and returns the writer.
    pub fn new(mut out: W, schema: &Schema) -> std::io::Result<Self> {
        for (i, (_, spec)) in schema.iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            let suffix = if spec.multi_valued {
                "+"
            } else if !spec.queriable {
                "*"
            } else {
                ""
            };
            write!(out, "{}{}", quote(&spec.name), suffix)?;
        }
        out.write_all(b"\n")?;
        Ok(CsvWriter { out, cells: vec![Vec::new(); schema.len()] })
    }

    /// Writes one record row. Fields may arrive in any order; multi-valued
    /// cells are joined on `;`.
    pub fn write_record<'a, I>(&mut self, fields: I) -> std::io::Result<()>
    where
        I: IntoIterator<Item = (AttrId, &'a str)>,
    {
        for cell in &mut self.cells {
            cell.clear();
        }
        for (attr, s) in fields {
            self.cells[attr.0 as usize].push(s.to_owned());
        }
        for (i, vals) in self.cells.iter().enumerate() {
            if i > 0 {
                self.out.write_all(b",")?;
            }
            match vals.as_slice() {
                [] => {}
                [one] => self.out.write_all(quote(one).as_bytes())?,
                many => self.out.write_all(quote(&many.join(";")).as_bytes())?,
            }
        }
        self.out.write_all(b"\n")?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Serializes a universal table back to the CSV dialect. Multi-valued cells
/// are joined on `;`; the header carries the `*`/`+` markers so the result
/// re-loads with the identical schema. Streams through [`CsvWriter`] — the
/// only full-document buffer is the returned `String` itself.
pub fn to_csv(table: &UniversalTable) -> String {
    let mut writer =
        CsvWriter::new(Vec::new(), table.schema()).expect("writing to a Vec cannot fail");
    for (_, rec) in table.iter() {
        let fields = rec
            .values()
            .iter()
            .map(|&v| (table.interner().attr_of(v), table.interner().value_str(v)));
        writer.write_record(fields).expect("writing to a Vec cannot fail");
    }
    String::from_utf8(writer.finish().expect("writing to a Vec cannot fail"))
        .expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "Title,Author+,Year*\n\"Paper, the first\",smith;jones,2004\nSecond paper,lee,2005\n";

    #[test]
    fn loads_schema_conventions() {
        let t = load_csv(SAMPLE).unwrap();
        assert_eq!(t.num_records(), 2);
        let s = t.schema();
        assert!(s.attr(AttrId(0)).queriable);
        assert!(s.attr(AttrId(1)).multi_valued);
        assert!(!s.attr(AttrId(2)).queriable, "Year* is result-only");
        assert_eq!(s.attr(AttrId(0)).name, "Title");
    }

    #[test]
    fn quoted_commas_and_multi_values() {
        let t = load_csv(SAMPLE).unwrap();
        assert!(t.interner().get(AttrId(0), "Paper, the first").is_some());
        assert!(t.interner().get(AttrId(1), "smith").is_some());
        assert!(t.interner().get(AttrId(1), "jones").is_some());
        let rec0 = t.record(dwc_model::RecordId(0));
        assert_eq!(rec0.len(), 4, "title + 2 authors + year");
    }

    #[test]
    fn roundtrip_preserves_content() {
        let t = load_csv(SAMPLE).unwrap();
        let csv = to_csv(&t);
        let t2 = load_csv(&csv).unwrap();
        assert_eq!(t2.num_records(), t.num_records());
        assert_eq!(t2.schema(), t.schema());
        for (id, rec) in t.iter() {
            let strs: Vec<(u16, &str)> = rec
                .values()
                .iter()
                .map(|&v| (t.interner().attr_of(v).0, t.interner().value_str(v)))
                .collect();
            let rec2 = t2.record(id);
            let strs2: Vec<(u16, &str)> = rec2
                .values()
                .iter()
                .map(|&v| (t2.interner().attr_of(v).0, t2.interner().value_str(v)))
                .collect();
            let (mut a, mut b) = (strs.clone(), strs2.clone());
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn escaped_quotes_and_embedded_newlines() {
        let csv = "A\n\"he said \"\"hi\"\"\"\n\"line1\nline2\"\n";
        let t = load_csv(csv).unwrap();
        assert!(t.interner().get(AttrId(0), "he said \"hi\"").is_some());
        assert!(t.interner().get(AttrId(0), "line1\nline2").is_some());
        // And back out again.
        let t2 = load_csv(&to_csv(&t)).unwrap();
        assert!(t2.interner().get(AttrId(0), "he said \"hi\"").is_some());
    }

    #[test]
    fn empty_cells_and_rows_skipped() {
        let csv = "A,B\nx,\n,\n,y\n";
        let t = load_csv(csv).unwrap();
        assert_eq!(t.num_records(), 2, "the all-empty row is skipped");
        assert_eq!(t.record(dwc_model::RecordId(0)).len(), 1);
    }

    #[test]
    fn errors_reported() {
        assert_eq!(load_csv("").unwrap_err(), CsvError::MissingHeader);
        assert!(matches!(load_csv("A\n\"oops"), Err(CsvError::UnterminatedQuote { .. })));
        assert_eq!(load_csv("A\nx,y\n").unwrap_err(), CsvError::TooManyFields { row: 2 });
    }

    #[test]
    fn streamed_generation_writes_loadable_csv() {
        // generate_with → CsvWriter → load_csv must equal generate():
        // the generate-to-disk path loses nothing.
        let model = crate::presets::Preset::Ebay.model(0.002);
        let resident = model.generate(40, 5);
        let mut writer = CsvWriter::new(Vec::new(), &model.schema()).unwrap();
        model.generate_with(40, 5, |_, fields| {
            writer.write_record(fields.iter().map(|(a, s)| (*a, s.as_str()))).unwrap();
        });
        let csv = String::from_utf8(writer.finish().unwrap()).unwrap();
        let loaded = load_csv(&csv).unwrap();
        assert_eq!(loaded.num_records(), resident.num_records());
        assert_eq!(loaded.num_distinct_values(), resident.num_distinct_values());
        assert_eq!(loaded.schema(), &model.schema());
    }

    #[test]
    fn generated_preset_roundtrips_through_csv() {
        let t = crate::presets::Preset::Ebay.table(0.002, 3);
        let csv = to_csv(&t);
        let t2 = load_csv(&csv).unwrap();
        assert_eq!(t2.num_records(), t.num_records());
        assert_eq!(t2.num_distinct_values(), t.num_distinct_values());
    }
}
