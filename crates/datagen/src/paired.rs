//! Paired target / domain-sample generation for the domain-knowledge
//! experiments (paper Figures 5 and 6).
//!
//! Section 4 of the paper crawls the Amazon DVD database using a domain
//! statistics table built from IMDB — two sources from the same movie domain.
//! Here both are drawn from one hidden [`crate::domain::DomainModel`]:
//!
//! * the **sample** ("IMDB") is the full master generation;
//! * the **target** ("Amazon DVD") re-draws most of its records from the
//!   master (shared attribute values, similar distribution) and generates the
//!   rest fresh from the model — fresh records carry values the domain table
//!   has never seen, exercising the Δ_DM smoothing of equation 4.3.
//!
//! The paper's two domain tables are nested year subsets of IMDB — post-1960
//! (DM I, 270k records) and post-1980 (DM II, 190k records) — reproduced by
//! [`subset_by_min_year`].

use crate::domain::record_year;
use crate::presets::Preset;
use dwc_model::{AttrId, UniversalTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a paired generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedSpec {
    /// Scale factor: 1.0 gives the paper's sizes (sample 400k, target ≈35k).
    pub scale: f64,
    /// Fraction of target records copied from the master (the rest are fresh
    /// draws from the hidden model). The paper's Amazon/IMDB overlap is high;
    /// 0.8 is the default.
    pub overlap: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PairedSpec {
    fn default() -> Self {
        PairedSpec { scale: 1.0, overlap: 0.8, seed: 0x1CDE_2006 }
    }
}

/// A generated (sample, target) pair from one hidden domain model.
#[derive(Debug, Clone)]
pub struct PairedDataset {
    /// The domain sample source ("IMDB") used to build domain tables.
    pub sample: UniversalTable,
    /// The crawl target ("Amazon DVD").
    pub target: UniversalTable,
}

impl PairedDataset {
    /// Size of the target at scale 1 (the paper estimates the Amazon DVD
    /// database at just under 37,000 records).
    pub const BASE_TARGET_RECORDS: usize = 35_000;

    /// Generates the pair.
    pub fn generate(spec: PairedSpec) -> Self {
        assert!(spec.scale > 0.0 && spec.scale <= 1.0, "scale must be in (0, 1]");
        assert!((0.0..=1.0).contains(&spec.overlap), "overlap must be a probability");
        let model = Preset::Imdb.model(spec.scale);
        let n_sample = ((Preset::Imdb.base_records() as f64 * spec.scale).round() as usize).max(64);
        let n_target = ((Self::BASE_TARGET_RECORDS as f64 * spec.scale).round() as usize).max(16);
        let sample = model.generate(n_sample, spec.seed);
        // Fresh records come from the same hidden model but a different
        // stream, so some of their values fall outside the sample.
        let fresh_pool = model.generate(n_target, spec.seed.wrapping_add(0x9E37_79B9));
        let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(1));
        let mut target = UniversalTable::new(model.schema());
        let mut fresh_cursor = 0usize;
        for _ in 0..n_target {
            let source_rec = if rng.gen::<f64>() < spec.overlap {
                let i = rng.gen_range(0..n_sample);
                (&sample, dwc_model::RecordId(i as u32))
            } else {
                let i = fresh_cursor.min(fresh_pool.num_records() - 1);
                fresh_cursor += 1;
                (&fresh_pool, dwc_model::RecordId(i as u32))
            };
            let (src_table, rid) = source_rec;
            let fields: Vec<(AttrId, &str)> = src_table
                .record(rid)
                .values()
                .iter()
                .map(|&v| (src_table.interner().attr_of(v), src_table.interner().value_str(v)))
                .collect();
            target.push_record_strs(fields);
        }
        PairedDataset { sample, target }
    }
}

/// Builds the sub-table of `table` containing only the records whose `Year`
/// attribute value is `≥ min_year` — the construction behind DM(I) (post-1960)
/// and DM(II) (post-1980).
///
/// # Panics
/// Panics if the table has no `Year` attribute.
pub fn subset_by_min_year(table: &UniversalTable, min_year: u32) -> UniversalTable {
    let year_attr =
        table.schema().attr_by_name("Year").expect("subset_by_min_year requires a Year attribute");
    let mut out = UniversalTable::new(table.schema().clone());
    for (_, rec) in table.iter() {
        match record_year(table, rec, year_attr) {
            Some(y) if y >= min_year => {
                let fields: Vec<(AttrId, &str)> = rec
                    .values()
                    .iter()
                    .map(|&v| (table.interner().attr_of(v), table.interner().value_str(v)))
                    .collect();
                out.push_record_strs(fields);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pair() -> PairedDataset {
        PairedDataset::generate(PairedSpec { scale: 0.01, overlap: 0.8, seed: 42 })
    }

    #[test]
    fn sizes_scale() {
        let p = small_pair();
        assert_eq!(p.sample.num_records(), 4_000);
        assert_eq!(p.target.num_records(), 350);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_pair();
        let b = small_pair();
        assert_eq!(a.target.num_distinct_values(), b.target.num_distinct_values());
        for (id, r) in a.target.iter() {
            let ra: Vec<&str> =
                r.values().iter().map(|&v| a.target.interner().value_str(v)).collect();
            let rb: Vec<&str> = b
                .target
                .record(id)
                .values()
                .iter()
                .map(|&v| b.target.interner().value_str(v))
                .collect();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn target_values_mostly_present_in_sample() {
        let p = small_pair();
        let mut hits = 0usize;
        let mut total = 0usize;
        for (_, rec) in p.target.iter() {
            for &v in rec.values() {
                total += 1;
                let attr = p.target.interner().attr_of(v);
                let s = p.target.interner().value_str(v);
                if p.sample.interner().get(attr, s).is_some() {
                    hits += 1;
                }
            }
        }
        let hit_rate = hits as f64 / total as f64;
        assert!(hit_rate > 0.75, "domain hit rate {hit_rate} too low for overlap 0.8");
        assert!(hit_rate < 1.0, "some fresh values must be absent from the sample");
    }

    #[test]
    fn year_subsets_nest_and_shrink() {
        let p = small_pair();
        let dm1 = subset_by_min_year(&p.sample, 1960);
        let dm2 = subset_by_min_year(&p.sample, 1980);
        assert!(dm1.num_records() > dm2.num_records());
        assert!(dm1.num_records() < p.sample.num_records());
        // Paper proportions: post-1960 ≈ 2/3, post-1980 ≈ 1/2 of all records.
        let f1 = dm1.num_records() as f64 / p.sample.num_records() as f64;
        let f2 = dm2.num_records() as f64 / p.sample.num_records() as f64;
        assert!(f1 > 0.6 && f1 < 0.9, "post-1960 fraction {f1}");
        assert!(f2 > 0.35 && f2 < 0.65, "post-1980 fraction {f2}");
    }

    #[test]
    fn subset_preserves_schema() {
        let p = small_pair();
        let dm = subset_by_min_year(&p.sample, 1980);
        assert_eq!(dm.schema(), p.sample.schema());
        let year_attr = dm.schema().attr_by_name("Year").unwrap();
        for (_, rec) in dm.iter() {
            let y = record_year(&dm, rec, year_attr).unwrap();
            assert!(y >= 1980);
        }
    }

    #[test]
    #[should_panic(expected = "Year attribute")]
    fn subset_requires_year_attribute() {
        let t = dwc_model::fixtures::figure1_table();
        let _ = subset_by_min_year(&t, 1980);
    }
}
