//! Query interface specifications and query forms.
//!
//! Definition 2.2 of the paper models a source's interface as the set of
//! queriable attributes; the Table 1 case study additionally distinguishes
//! sources that accept keyword search (K.W.) from those that accept
//! single-attribute structured queries (S.Q.M.). [`InterfaceSpec`] carries
//! those capabilities plus the cost-model knobs: page size `k`
//! (Definition 2.3), the per-query result cap (Section 5.4 / Figure 6), and
//! whether the first result page reports the total match count (the §3.4
//! abortion heuristics rely on it).

use dwc_model::{AttrId, Schema, ValueId};

/// Capabilities and cost parameters of a source's query interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceSpec {
    /// Maximum records per result page (`k` in Definition 2.3).
    pub page_size: usize,
    /// Per-query cap on accessible results (`None` = unlimited). Amazon's
    /// Web Service capped at 3200; Figure 6 studies caps of 10 and 50.
    pub result_cap: Option<usize>,
    /// Whether the first page reports the total number of matches
    /// ("most Web sources report the number of total query results in the
    /// first return page", §3.4).
    pub reports_total: bool,
    /// Whether a keyword box searching all columns is available (K.W.).
    pub keyword_search: bool,
    /// Attributes accepting structured single-value equality queries (`A_q`).
    pub queriable_attrs: Vec<AttrId>,
    /// Minimum number of equality predicates a structured query must carry.
    /// `1` is the paper's simplified query model; "highly structured and
    /// restrictive" sources (the paper names airfare and hotel sites; Table 1
    /// shows the Car domain) demand `≥ 2`. Keyword queries are unaffected.
    pub min_query_attrs: usize,
    /// Names of *all* attributes of the source, indexed by `AttrId`. Form
    /// field labels are part of what a real interface shows, so publishing
    /// them here lets a crawler phrase `ByString`/`Conjunctive` queries
    /// without any back-door view of the underlying table.
    pub attr_names: Vec<String>,
}

impl InterfaceSpec {
    /// A permissive interface: every attribute of `schema` marked queriable
    /// is exposed, keyword search is on, totals are reported, no result cap.
    pub fn permissive(schema: &Schema, page_size: usize) -> Self {
        InterfaceSpec {
            page_size,
            result_cap: None,
            reports_total: true,
            keyword_search: true,
            queriable_attrs: schema.queriable_attrs(),
            min_query_attrs: 1,
            attr_names: schema.iter().map(|(_, a)| a.name.clone()).collect(),
        }
    }

    /// The form-field name of attribute `attr`.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attr_names[attr.0 as usize]
    }

    /// Returns a copy demanding at least `n` equality predicates per
    /// structured query (a restrictive multi-attribute form). Disables the
    /// keyword box, which such forms rarely offer.
    pub fn requiring_attrs(mut self, n: usize) -> Self {
        assert!(n >= 1, "a form requires at least one field");
        self.min_query_attrs = n;
        if n > 1 {
            self.keyword_search = false;
        }
        self
    }

    /// Returns a copy with the given result cap.
    pub fn with_result_cap(mut self, cap: usize) -> Self {
        self.result_cap = Some(cap);
        self
    }

    /// Returns a copy that hides total match counts.
    pub fn without_totals(mut self) -> Self {
        self.reports_total = false;
        self
    }

    /// Whether `attr` may be queried through this interface.
    pub fn is_queriable(&self, attr: AttrId) -> bool {
        self.queriable_attrs.contains(&attr)
    }

    /// Number of accessible results for a query matching `total` records.
    pub fn accessible(&self, total: usize) -> usize {
        match self.result_cap {
            Some(cap) => total.min(cap),
            None => total,
        }
    }

    /// Number of result pages (communication rounds to exhaust the query):
    /// `⌈accessible / k⌉` per Definition 2.3.
    pub fn pages_for(&self, total: usize) -> usize {
        self.accessible(total).div_ceil(self.page_size)
    }
}

/// A query submitted through the interface — always a single attribute value,
/// per the simplified query model of Section 2.2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// Fast path: an already-interned value id (in-process experiments).
    Value(ValueId),
    /// Structured form fill: attribute name + value string, resolved by the
    /// server against its own schema and interner.
    ByString {
        /// Attribute (form field) name.
        attr: String,
        /// The value typed into the field.
        value: String,
    },
    /// Keyword search: the string is matched against every column ("throw
    /// attribute values into the target query box and rely on the end site's
    /// query processing", Section 2.2).
    Keyword(String),
    /// Conjunction of equality predicates (multi-attribute form fill): a
    /// record matches when it carries *every* listed `(attribute, value)`
    /// pair. This is the query class the paper defers to future work and
    /// that restrictive sources (airfare, hotels, cars) demand.
    Conjunctive(Vec<(String, String)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_schema;

    #[test]
    fn permissive_exposes_all_queriable() {
        let spec = InterfaceSpec::permissive(&figure1_schema(), 10);
        assert_eq!(spec.queriable_attrs.len(), 3);
        assert!(spec.is_queriable(AttrId(0)));
        assert!(spec.keyword_search);
        assert!(spec.reports_total);
    }

    #[test]
    fn accessible_respects_cap() {
        let spec = InterfaceSpec::permissive(&figure1_schema(), 10).with_result_cap(50);
        assert_eq!(spec.accessible(20), 20);
        assert_eq!(spec.accessible(500), 50);
    }

    #[test]
    fn pages_for_matches_cost_model() {
        let spec = InterfaceSpec::permissive(&figure1_schema(), 10);
        // The paper's example: 95 matches, 10 per page → 10 rounds.
        assert_eq!(spec.pages_for(95), 10);
        assert_eq!(spec.pages_for(0), 0);
        assert_eq!(spec.pages_for(10), 1);
        assert_eq!(spec.pages_for(11), 2);
    }

    #[test]
    fn pages_for_with_cap() {
        let spec = InterfaceSpec::permissive(&figure1_schema(), 10).with_result_cap(25);
        assert_eq!(spec.pages_for(1000), 3, "only 25 accessible → 3 pages");
    }

    #[test]
    fn builder_style_modifiers() {
        let spec = InterfaceSpec::permissive(&figure1_schema(), 10).without_totals();
        assert!(!spec.reports_total);
    }
}
