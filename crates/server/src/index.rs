//! Inverted index from attribute values to record ids.
//!
//! The server's query-answering hot path: `ValueId → sorted postings list` of
//! the records containing that value. Built once from the universal table in
//! two counting passes (no per-posting allocation).

use dwc_model::{RecordId, UniversalTable, ValueId};

/// Inverted index: postings per distinct attribute value.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    offsets: Vec<u32>,
    postings: Vec<u32>,
}

impl InvertedIndex {
    /// Builds the index over all records of the table.
    pub fn build(table: &UniversalTable) -> Self {
        let n = table.num_distinct_values();
        let mut counts = vec![0u32; n + 1];
        for (_, rec) in table.iter() {
            for &v in rec.values() {
                counts[v.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut postings = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        let mut cursor = offsets.clone();
        for (rid, rec) in table.iter() {
            for &v in rec.values() {
                let c = &mut cursor[v.index()];
                postings[*c as usize] = rid.0;
                *c += 1;
            }
        }
        // Record ids are visited in ascending order, so each postings list is
        // already sorted.
        InvertedIndex { offsets, postings }
    }

    /// Sorted record ids containing `v`.
    #[inline]
    pub fn postings(&self, v: ValueId) -> &[u32] {
        match self.offsets.get(v.index()..=v.index() + 1) {
            Some([s, e]) => &self.postings[*s as usize..*e as usize],
            _ => &[],
        }
    }

    /// Number of records matching `v` (`num(q_i, DB)` in Definition 2.3).
    #[inline]
    pub fn match_count(&self, v: ValueId) -> usize {
        self.postings(v).len()
    }

    /// Intersection of several postings lists as sorted record ids (used for
    /// conjunctive multi-attribute queries). An empty input intersects to
    /// nothing.
    pub fn intersect(&self, values: &[ValueId]) -> Vec<RecordId> {
        match values {
            [] => Vec::new(),
            [v] => self.postings(*v).iter().map(|&r| RecordId(r)).collect(),
            [first, rest @ ..] => {
                // Start from the shortest list for early exit.
                let mut lists: Vec<&[u32]> = Vec::with_capacity(values.len());
                lists.push(self.postings(*first));
                for v in rest {
                    lists.push(self.postings(*v));
                }
                lists.sort_by_key(|l| l.len());
                let mut acc: Vec<u32> = lists[0].to_vec();
                for l in &lists[1..] {
                    if acc.is_empty() {
                        break;
                    }
                    let mut out = Vec::with_capacity(acc.len().min(l.len()));
                    let (mut i, mut j) = (0, 0);
                    while i < acc.len() && j < l.len() {
                        match acc[i].cmp(&l[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                out.push(acc[i]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    acc = out;
                }
                acc.into_iter().map(RecordId).collect()
            }
        }
    }

    /// Union of several postings lists as sorted record ids (used for keyword
    /// queries that hit the same string under multiple attributes).
    pub fn union(&self, values: &[ValueId]) -> Vec<RecordId> {
        match values {
            [] => Vec::new(),
            [v] => self.postings(*v).iter().map(|&r| RecordId(r)).collect(),
            _ => {
                let mut all: Vec<u32> =
                    values.iter().flat_map(|&v| self.postings(v).iter().copied()).collect();
                all.sort_unstable();
                all.dedup();
                all.into_iter().map(RecordId).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;

    #[test]
    fn postings_match_table_scan() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        for v in t.interner().iter_ids() {
            assert_eq!(idx.match_count(v), t.count_matches(v), "value {v}");
        }
    }

    #[test]
    fn postings_sorted() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        for v in t.interner().iter_ids() {
            let p = idx.postings(v);
            assert!(p.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn figure1_a2_matches_three_records() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        assert_eq!(idx.postings(a2), &[1, 2, 3]);
    }

    #[test]
    fn union_dedups_across_lists() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        // a2 → {1,2,3}, c2 → {2,3,4}; union {1,2,3,4}.
        let u = idx.union(&[a2, c2]);
        assert_eq!(u, vec![RecordId(1), RecordId(2), RecordId(3), RecordId(4)]);
    }

    #[test]
    fn intersect_narrows() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        // a2 → {1,2,3}, c2 → {2,3,4}; intersection {2,3}.
        assert_eq!(idx.intersect(&[a2, c2]), vec![RecordId(2), RecordId(3)]);
        assert_eq!(idx.intersect(&[a2]), vec![RecordId(1), RecordId(2), RecordId(3)]);
        assert!(idx.intersect(&[]).is_empty());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a1 = t.interner().get(AttrId(0), "a1").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        assert!(idx.intersect(&[a1, c2]).is_empty());
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        assert!(idx.union(&[]).is_empty());
    }

    #[test]
    fn out_of_range_value_has_no_postings() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.match_count(ValueId(10_000)), 0);
    }
}
