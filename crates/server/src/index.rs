//! Inverted index from attribute values to record ids.
//!
//! The server's query-answering hot path: `ValueId → sorted postings list` of
//! the records containing that value. Built once from the universal table in
//! two counting passes (no per-posting allocation).

use dwc_model::{RecordId, UniversalTable, ValueId};

/// Inverted index: postings per distinct attribute value.
///
/// Both columns are sealed `Box<[u32]>`s: the index never grows after
/// `build`, so it carries no `Vec` growth slack — `heap_bytes` is exactly
/// 4 bytes per offset entry plus 4 per posting.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    offsets: Box<[u32]>,
    postings: Box<[u32]>,
}

impl InvertedIndex {
    /// Builds the index over all records of the table.
    pub fn build(table: &UniversalTable) -> Self {
        let n = table.num_distinct_values();
        let mut counts = vec![0u32; n + 1];
        for (_, rec) in table.iter() {
            for &v in rec.values() {
                counts[v.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut postings = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        let mut cursor = offsets.clone();
        for (rid, rec) in table.iter() {
            for &v in rec.values() {
                let c = &mut cursor[v.index()];
                postings[*c as usize] = rid.0;
                *c += 1;
            }
        }
        // Record ids are visited in ascending order, so each postings list is
        // already sorted. Seal both columns into boxed slices: the exact-size
        // allocations shed whatever capacity slack the build vectors carried.
        InvertedIndex { offsets: offsets.into_boxed_slice(), postings: postings.into_boxed_slice() }
    }

    /// Heap bytes held by the index: exactly `4 × (offsets + postings)` —
    /// boxed slices have no capacity beyond their length.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.len() + self.postings.len()) * std::mem::size_of::<u32>()
    }

    /// Sorted record ids containing `v`.
    #[inline]
    pub fn postings(&self, v: ValueId) -> &[u32] {
        match self.offsets.get(v.index()..=v.index() + 1) {
            Some([s, e]) => &self.postings[*s as usize..*e as usize],
            _ => &[],
        }
    }

    /// Number of records matching `v` (`num(q_i, DB)` in Definition 2.3).
    #[inline]
    pub fn match_count(&self, v: ValueId) -> usize {
        self.postings(v).len()
    }

    /// Intersection of several postings lists as sorted record ids (used for
    /// conjunctive multi-attribute queries). An empty input intersects to
    /// nothing.
    ///
    /// The two shortest lists are intersected straight out of the index (no
    /// upfront copy of the shortest list), and each pairwise step switches to
    /// galloping search when the longer side is ≥[`GALLOP_SKEW`]× the shorter
    /// — the common shape for conjunctions of one rare and one popular value.
    pub fn intersect(&self, values: &[ValueId]) -> Vec<RecordId> {
        match values {
            [] => Vec::new(),
            [v] => self.postings(*v).iter().map(|&r| RecordId(r)).collect(),
            [first, rest @ ..] => {
                // Start from the shortest list for early exit.
                let mut lists: Vec<&[u32]> = Vec::with_capacity(values.len());
                lists.push(self.postings(*first));
                for v in rest {
                    lists.push(self.postings(*v));
                }
                lists.sort_by_key(|l| l.len());
                let mut acc = Vec::with_capacity(lists[0].len());
                intersect_sorted(lists[0], lists[1], &mut acc);
                for l in &lists[2..] {
                    if acc.is_empty() {
                        break;
                    }
                    let mut out = Vec::with_capacity(acc.len().min(l.len()));
                    intersect_sorted(&acc, l, &mut out);
                    acc = out;
                }
                acc.into_iter().map(RecordId).collect()
            }
        }
    }

    /// Skew ratio at which pairwise intersection abandons the linear merge
    /// for galloping search through the longer list.
    pub const GALLOP_SKEW: usize = 8;

    /// Union of several postings lists as sorted record ids (used for keyword
    /// queries that hit the same string under multiple attributes).
    pub fn union(&self, values: &[ValueId]) -> Vec<RecordId> {
        match values {
            [] => Vec::new(),
            [v] => self.postings(*v).iter().map(|&r| RecordId(r)).collect(),
            _ => {
                let mut all: Vec<u32> =
                    values.iter().flat_map(|&v| self.postings(v).iter().copied()).collect();
                all.sort_unstable();
                all.dedup();
                all.into_iter().map(RecordId).collect()
            }
        }
    }
}

/// Intersects two sorted, duplicate-free `u32` slices into `out`.
///
/// Balanced inputs use the classic two-cursor linear merge; when one side is
/// ≥[`InvertedIndex::GALLOP_SKEW`]× longer, each element of the short side is
/// located in the long side by exponential (galloping) probe + binary search,
/// turning the cost from `O(n + m)` into `O(n log m)`.
fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() || large.is_empty() {
        return;
    }
    if large.len() >= InvertedIndex::GALLOP_SKEW * small.len() {
        let mut lo = 0usize;
        for &x in small {
            let rest = &large[lo..];
            if rest.is_empty() {
                break;
            }
            // Double the probe until it lands at or past `x`, then binary
            // search the bracketed prefix for the lower bound.
            let mut win = 1usize;
            while win < rest.len() && rest[win] < x {
                win = win.saturating_mul(2);
            }
            let end = (win + 1).min(rest.len());
            let idx = rest[..end].partition_point(|&y| y < x);
            if idx < rest.len() && rest[idx] == x {
                out.push(x);
                lo += idx + 1;
            } else {
                lo += idx;
            }
        }
    } else {
        let (mut i, mut j) = (0, 0);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;

    #[test]
    fn postings_match_table_scan() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        for v in t.interner().iter_ids() {
            assert_eq!(idx.match_count(v), t.count_matches(v), "value {v}");
        }
    }

    #[test]
    fn postings_sorted() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        for v in t.interner().iter_ids() {
            let p = idx.postings(v);
            assert!(p.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn figure1_a2_matches_three_records() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        assert_eq!(idx.postings(a2), &[1, 2, 3]);
    }

    #[test]
    fn union_dedups_across_lists() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        // a2 → {1,2,3}, c2 → {2,3,4}; union {1,2,3,4}.
        let u = idx.union(&[a2, c2]);
        assert_eq!(u, vec![RecordId(1), RecordId(2), RecordId(3), RecordId(4)]);
    }

    #[test]
    fn intersect_narrows() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        // a2 → {1,2,3}, c2 → {2,3,4}; intersection {2,3}.
        assert_eq!(idx.intersect(&[a2, c2]), vec![RecordId(2), RecordId(3)]);
        assert_eq!(idx.intersect(&[a2]), vec![RecordId(1), RecordId(2), RecordId(3)]);
        assert!(idx.intersect(&[]).is_empty());
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        let a1 = t.interner().get(AttrId(0), "a1").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        assert!(idx.intersect(&[a1, c2]).is_empty());
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        assert!(idx.union(&[]).is_empty());
    }

    /// Naive reference intersection for differential checks.
    fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn galloping_agrees_with_linear_merge_on_skewed_lists() {
        // Long side 0,3,6,…,2997 (1000 elems); short side is 5 elems — skew
        // 200× forces the galloping path in both argument orders.
        let large: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let small: Vec<u32> = vec![0, 7, 600, 1500, 2997];
        let expect = naive_intersect(&small, &large);
        assert_eq!(expect, vec![0, 600, 1500, 2997], "fixture sanity");
        for (a, b) in [(&small, &large), (&large, &small)] {
            let mut out = Vec::new();
            intersect_sorted(a, b, &mut out);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn galloping_handles_boundary_positions() {
        let large: Vec<u32> = (100..200).collect();
        // Probes before the start, at both ends, past the end, and between.
        for small in [
            vec![0, 1, 2],
            vec![100],
            vec![199],
            vec![200, 300],
            vec![99, 100, 199, 200],
            vec![150],
        ] {
            let mut out = Vec::new();
            intersect_sorted(&small, &large, &mut out);
            assert_eq!(out, naive_intersect(&small, &large), "small = {small:?}");
        }
    }

    #[test]
    fn skewed_conjunction_through_the_index() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        // 400 records all share A=common; C=rare appears on 3 of them —
        // exactly the rare∧popular shape galloping is for.
        let schema = Schema::new(vec![AttrSpec::queriable("A"), AttrSpec::queriable("C")]);
        let mut t = UniversalTable::new(schema);
        for i in 0..400u32 {
            let c = if i % 150 == 7 { "rare".to_string() } else { format!("c{i}") };
            t.push_record_strs([(AttrId(0), "common"), (AttrId(1), c.as_str())]);
        }
        let idx = InvertedIndex::build(&t);
        let common = t.interner().get(AttrId(0), "common").unwrap();
        let rare = t.interner().get(AttrId(1), "rare").unwrap();
        assert!(idx.match_count(common) >= InvertedIndex::GALLOP_SKEW * idx.match_count(rare));
        let got = idx.intersect(&[common, rare]);
        assert_eq!(got, vec![RecordId(7), RecordId(157), RecordId(307)]);
        assert_eq!(idx.intersect(&[rare, common]), got, "order-insensitive");
    }

    #[test]
    fn three_way_intersection_with_mixed_skew() {
        let a: Vec<u32> = (0..2000).collect();
        let b: Vec<u32> = (0..2000).filter(|x| x % 2 == 0).collect();
        let c: Vec<u32> = vec![3, 4, 10, 11, 1998];
        let mut ab = Vec::new();
        intersect_sorted(&a, &b, &mut ab);
        let mut abc = Vec::new();
        intersect_sorted(&ab, &c, &mut abc);
        assert_eq!(abc, vec![4, 10, 1998]);
    }

    #[test]
    fn sealed_index_sheds_growth_slack() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        let schema = Schema::new(vec![AttrSpec::queriable("A"), AttrSpec::queriable("B")]);
        let mut t = UniversalTable::new(schema);
        for i in 0..700u32 {
            t.push_record_strs([
                (AttrId(0), format!("a{}", i % 23)),
                (AttrId(1), format!("b{}", i % 101)),
            ]);
        }
        // "Before": the obvious growable representation — one Vec per value,
        // postings pushed one sighting at a time with amortized doubling.
        let mut naive: Vec<Vec<u32>> = vec![Vec::new(); t.num_distinct_values()];
        for (rid, rec) in t.iter() {
            for &v in rec.values() {
                naive[v.index()].push(rid.0);
            }
        }
        let total_postings: usize = naive.iter().map(Vec::len).sum();
        let naive_bytes: usize =
            naive.iter().map(|l| l.capacity() * 4 + std::mem::size_of::<Vec<u32>>()).sum();
        // "After": the sealed index. Its footprint is exact — one u32 per
        // posting plus the offsets column, zero capacity slack.
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.heap_bytes(), (t.num_distinct_values() + 1 + total_postings) * 4);
        assert!(
            idx.heap_bytes() < naive_bytes,
            "sealed {} bytes must undercut growable {} bytes",
            idx.heap_bytes(),
            naive_bytes
        );
        // Same postings, of course.
        for v in t.interner().iter_ids() {
            assert_eq!(idx.postings(v), naive[v.index()].as_slice());
        }
    }

    #[test]
    fn out_of_range_value_has_no_postings() {
        let t = figure1_table();
        let idx = InvertedIndex::build(&t);
        assert_eq!(idx.match_count(ValueId(10_000)), 0);
    }
}
