//! XML wire format for result pages.
//!
//! The paper crawls Amazon through its Web Service, whose "returned query
//! results are in the format of XML documents, which eliminates the possible
//! accuracy problems of extracting structured records from Web pages"
//! (Section 5). This module renders a [`ResultPage`] the way such a service
//! would; the crawler's result extractor (`dwc-core::extract`) parses it back.
//!
//! Format:
//!
//! ```xml
//! <results page="0" more="true" total="95">
//!   <record key="42">
//!     <field attr="Actor">Hanks, Tom</field>
//!   </record>
//! </results>
//! ```
//!
//! Only the five XML-mandated character escapes are applied; the format is
//! deliberately minimal but round-trip exact.

use crate::server::ResultPage;
use dwc_model::{Schema, UniversalTable, ValueInterner};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Escapes text content / attribute values.
pub fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_escaped(&mut out, s);
    out
}

/// Appends `s` to `out` with the five XML-mandated escapes applied — the
/// allocation-free building block behind [`escape_xml`] and the `*_into`
/// renderers.
pub fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Unescapes the five XML entities; unknown entities are left verbatim.
pub fn unescape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let mapped =
            [("&amp;", '&'), ("&lt;", '<'), ("&gt;", '>'), ("&quot;", '"'), ("&apos;", '\'')]
                .iter()
                .find(|(ent, _)| rest.starts_with(ent));
        match mapped {
            Some((ent, ch)) => {
                out.push(*ch);
                rest = &rest[ent.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Borrowing flavor of [`unescape_xml`]: returns the input slice untouched
/// when it contains no `&` (the overwhelmingly common case on the wire hot
/// path) and only allocates when an entity actually needs resolving.
pub fn unescape_xml_cow(s: &str) -> Cow<'_, str> {
    if s.contains('&') {
        Cow::Owned(unescape_xml(s))
    } else {
        Cow::Borrowed(s)
    }
}

/// Serializes a result page to the XML wire format, resolving value ids to
/// attribute names and value strings through the server's table.
pub fn page_to_xml(page: &ResultPage, table: &UniversalTable) -> String {
    let mut out = String::with_capacity(64 + page.records.len() * 128);
    page_to_xml_into(page, table, &mut out);
    out
}

/// Renders a result page into a caller-provided buffer (appending), so a
/// server loop can reuse one allocation across pages.
pub fn page_to_xml_into(page: &ResultPage, table: &UniversalTable, out: &mut String) {
    page_to_xml_parts(page, table.interner(), table.schema(), out);
}

/// Renders through an interner + schema pair directly — rendering only ever
/// needs those two, so backends without a resident `UniversalTable` (the
/// paged segment store) share this exact code path and produce identical
/// bytes.
pub fn page_to_xml_parts(
    page: &ResultPage,
    interner: &ValueInterner,
    schema: &Schema,
    out: &mut String,
) {
    out.push_str("<results page=\"");
    let _ = write!(out, "{}", page.page_index);
    out.push_str("\" more=\"");
    out.push_str(if page.has_more { "true" } else { "false" });
    out.push('"');
    if let Some(total) = page.total_matches {
        let _ = write!(out, " total=\"{total}\"");
    }
    out.push_str(">\n");
    for rec in &page.records {
        let _ = writeln!(out, "  <record key=\"{}\">", rec.key);
        for &v in &rec.values {
            let attr = interner.attr_of(v);
            let name = &schema.attr(attr).name;
            out.push_str("    <field attr=\"");
            push_escaped(out, name);
            out.push_str("\">");
            push_escaped(out, interner.value_str(v));
            out.push_str("</field>\n");
        }
        out.push_str("  </record>\n");
    }
    out.push_str("</results>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::{InterfaceSpec, Query};
    use crate::server::WebDbServer;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;

    #[test]
    fn escape_roundtrip() {
        let nasty = r#"Tom & Jerry <"quoted"> 'n stuff"#;
        assert_eq!(unescape_xml(&escape_xml(nasty)), nasty);
    }

    #[test]
    fn unescape_leaves_unknown_entities() {
        assert_eq!(unescape_xml("a&nbsp;b"), "a&nbsp;b");
        assert_eq!(unescape_xml("trailing &"), "trailing &");
    }

    #[test]
    fn cow_unescape_borrows_when_no_entity_is_present() {
        assert!(matches!(unescape_xml_cow("Hanks, Tom"), Cow::Borrowed(_)));
        assert!(matches!(unescape_xml_cow(""), Cow::Borrowed(_)));
        let owned = unescape_xml_cow("a&amp;b");
        assert!(matches!(owned, Cow::Owned(_)));
        assert_eq!(owned, "a&b");
        // Unknown entities still force the owned path but stay verbatim.
        assert_eq!(unescape_xml_cow("a&nbsp;b"), "a&nbsp;b");
    }

    #[test]
    fn page_serialization_contains_fields() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec);
        let a2 = s.table().interner().get(AttrId(0), "a2").unwrap();
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        let xml = page_to_xml(&page, s.table());
        assert!(xml.starts_with("<results page=\"0\" more=\"false\" total=\"3\">"));
        assert_eq!(xml.matches("<record key=").count(), 3);
        assert!(xml.contains("<field attr=\"A\">a2</field>"));
        assert!(xml.contains("<field attr=\"C\">c1</field>"));
    }

    #[test]
    fn special_characters_are_escaped_in_output() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        let schema = Schema::new(vec![AttrSpec::queriable("T&C")]);
        let mut t = UniversalTable::new(schema);
        t.push_record_strs([(AttrId(0), "a<b>\"c\"")]);
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec);
        let q = Query::ByString { attr: "T&C".into(), value: "a<b>\"c\"".into() };
        let page = s.query_page(&q, 0).unwrap();
        let xml = page_to_xml(&page, s.table());
        assert!(xml.contains("attr=\"T&amp;C\""));
        assert!(xml.contains(">a&lt;b&gt;&quot;c&quot;</field>"));
        assert!(!xml.contains(">a<b>"));
    }
}
