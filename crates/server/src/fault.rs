//! Deterministic transient-fault injection.
//!
//! A production hidden-web crawler faces throttling, timeouts and 5xx
//! responses. The paper's cost model only counts communication rounds, so a
//! failed round still costs one round. [`FaultPolicy`] lets tests and
//! benchmarks inject failures deterministically (no randomness → reproducible
//! assertions) and verify the crawler's retry logic leaves the harvested
//! database unchanged.

/// Deterministic schedule of transient failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Fail every `n`-th request (1-based). `None` disables injection.
    pub fail_every: Option<u64>,
    /// Maximum number of failures to inject (`None` = unbounded).
    pub max_faults: Option<u64>,
}

impl FaultPolicy {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail every `n`-th request.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPolicy { fail_every: Some(n), max_faults: None }
    }

    /// Caps the total number of injected faults.
    pub fn up_to(mut self, max: u64) -> Self {
        self.max_faults = Some(max);
        self
    }

    /// Whether request number `request_no` (1-based) should fail, given that
    /// `faults_so_far` have already been injected.
    pub fn should_fail(&self, request_no: u64, faults_so_far: u64) -> bool {
        let Some(n) = self.fail_every else { return false };
        if let Some(max) = self.max_faults {
            if faults_so_far >= max {
                return false;
            }
        }
        request_no.is_multiple_of(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let p = FaultPolicy::none();
        assert!((1..100).all(|i| !p.should_fail(i, 0)));
    }

    #[test]
    fn every_third_fails() {
        let p = FaultPolicy::every(3);
        let fails: Vec<u64> = (1..=9).filter(|&i| p.should_fail(i, 0)).collect();
        assert_eq!(fails, vec![3, 6, 9]);
    }

    #[test]
    fn max_faults_caps_injection() {
        let p = FaultPolicy::every(2).up_to(2);
        assert!(p.should_fail(2, 0));
        assert!(p.should_fail(4, 1));
        assert!(!p.should_fail(6, 2), "budget exhausted");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = FaultPolicy::every(0);
    }
}
