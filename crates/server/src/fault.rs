//! Deterministic transient-fault injection.
//!
//! A production hidden-web crawler faces throttling, timeouts and 5xx
//! responses. The paper's cost model only counts communication rounds, so a
//! failed round still costs one round. [`FaultPolicy`] lets tests and
//! benchmarks inject failures deterministically (no randomness → reproducible
//! assertions) and verify the crawler's retry logic leaves the harvested
//! database unchanged.

use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic schedule of transient failures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Fail every `n`-th request (1-based). `None` disables injection.
    pub fail_every: Option<u64>,
    /// Maximum number of failures to inject (`None` = unbounded).
    pub max_faults: Option<u64>,
}

impl FaultPolicy {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail every `n`-th request.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "fault period must be positive");
        FaultPolicy { fail_every: Some(n), max_faults: None }
    }

    /// Caps the total number of injected faults.
    pub fn up_to(mut self, max: u64) -> Self {
        self.max_faults = Some(max);
        self
    }

    /// Whether request number `request_no` (1-based) should fail, given that
    /// `faults_so_far` have already been injected.
    pub fn should_fail(&self, request_no: u64, faults_so_far: u64) -> bool {
        let Some(n) = self.fail_every else { return false };
        if let Some(max) = self.max_faults {
            if faults_so_far >= max {
                return false;
            }
        }
        request_no.is_multiple_of(n)
    }
}

/// Thread-safe fault-injection ledger.
///
/// [`FaultPolicy`] is a pure schedule; `FaultState` holds the mutable side —
/// how many faults have actually been injected — behind an atomic so a shared
/// server can decide fault outcomes from `&self`. The `max_faults` budget is
/// claimed with a compare-and-swap loop, so even under concurrent probing the
/// cap is exact: never one fault more than allowed.
#[derive(Debug, Default)]
pub struct FaultState {
    injected: AtomicU64,
}

impl FaultState {
    /// A fresh ledger with zero injected faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Zeroes the ledger (between experiment runs).
    pub fn reset(&self) {
        self.injected.store(0, Ordering::Relaxed);
    }

    /// Decides whether request number `request_no` (1-based) fails under
    /// `policy`, atomically claiming one unit of the fault budget when it
    /// does. Returns `true` exactly when the caller must report a transient
    /// failure.
    pub fn try_inject(&self, policy: &FaultPolicy, request_no: u64) -> bool {
        let Some(n) = policy.fail_every else { return false };
        if !request_no.is_multiple_of(n) {
            return false;
        }
        match policy.max_faults {
            None => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                true
            }
            Some(max) => self
                .injected
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| (f < max).then_some(f + 1))
                .is_ok(),
        }
    }
}

impl Clone for FaultState {
    fn clone(&self) -> Self {
        FaultState { injected: AtomicU64::new(self.injected()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let p = FaultPolicy::none();
        assert!((1..100).all(|i| !p.should_fail(i, 0)));
    }

    #[test]
    fn every_third_fails() {
        let p = FaultPolicy::every(3);
        let fails: Vec<u64> = (1..=9).filter(|&i| p.should_fail(i, 0)).collect();
        assert_eq!(fails, vec![3, 6, 9]);
    }

    #[test]
    fn max_faults_caps_injection() {
        let p = FaultPolicy::every(2).up_to(2);
        assert!(p.should_fail(2, 0));
        assert!(p.should_fail(4, 1));
        assert!(!p.should_fail(6, 2), "budget exhausted");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = FaultPolicy::every(0);
    }

    #[test]
    fn state_tracks_and_caps_injection() {
        let p = FaultPolicy::every(2).up_to(2);
        let s = FaultState::new();
        assert!(!s.try_inject(&p, 1));
        assert!(s.try_inject(&p, 2));
        assert!(s.try_inject(&p, 4));
        assert!(!s.try_inject(&p, 6), "budget exhausted");
        assert_eq!(s.injected(), 2);
        s.reset();
        assert_eq!(s.injected(), 0);
        assert!(s.try_inject(&p, 2), "budget refreshed after reset");
    }

    #[test]
    fn state_cap_is_exact_under_contention() {
        let p = FaultPolicy::every(1).up_to(100);
        let s = FaultState::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let (s, p) = (&s, &p);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        s.try_inject(p, t * 1000 + i + 1);
                    }
                });
            }
        });
        assert_eq!(s.injected(), 100, "CAS loop must never overshoot the cap");
    }
}
