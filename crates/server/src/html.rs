//! HTML result-page rendering.
//!
//! Result pages "may be in the form of HTML Web pages or as XML documents"
//! (paper §1). This module renders a [`ResultPage`] the way a 2005-era
//! product site would: a summary line with the total match count, one
//! repeated `item` block per record (the "repeated patterns from multiple
//! template-generated result pages" that extraction work like Arasu &
//! Garcia-Molina exploits), and a next-page marker.
//!
//! ```html
//! <html><body>
//! <div id="summary">page 0 of results — 95 matches</div>
//! <div class="item" id="item-42">
//!   <span class="f" title="Actor">Hanks, Tom</span>
//! </div>
//! <a id="next" href="?page=1">more</a>
//! </body></html>
//! ```

use crate::server::ResultPage;
use crate::wire::push_escaped;
use dwc_model::{Schema, UniversalTable, ValueInterner};
use std::fmt::Write as _;

/// Renders a result page as a template-generated HTML document.
pub fn page_to_html(page: &ResultPage, table: &UniversalTable) -> String {
    let mut out = String::with_capacity(128 + page.records.len() * 160);
    page_to_html_into(page, table, &mut out);
    out
}

/// Renders a result page into a caller-provided buffer (appending), escaping
/// field names and values in place instead of through per-field temporaries.
pub fn page_to_html_into(page: &ResultPage, table: &UniversalTable, out: &mut String) {
    page_to_html_parts(page, table.interner(), table.schema(), out);
}

/// Renders through an interner + schema pair directly (see
/// [`crate::wire::page_to_xml_parts`]): the paged backend renders identical
/// bytes through this same function.
pub fn page_to_html_parts(
    page: &ResultPage,
    interner: &ValueInterner,
    schema: &Schema,
    out: &mut String,
) {
    out.push_str("<html><body>\n<div id=\"summary\">page ");
    let _ = write!(out, "{}", page.page_index);
    out.push_str(" of results");
    if let Some(total) = page.total_matches {
        let _ = write!(out, " — {total} matches");
    }
    out.push_str("</div>\n");
    for rec in &page.records {
        let _ = writeln!(out, "<div class=\"item\" id=\"item-{}\">", rec.key);
        for &v in &rec.values {
            let attr = interner.attr_of(v);
            let name = &schema.attr(attr).name;
            out.push_str("  <span class=\"f\" title=\"");
            push_escaped(out, name);
            out.push_str("\">");
            push_escaped(out, interner.value_str(v));
            out.push_str("</span>\n");
        }
        out.push_str("</div>\n");
    }
    if page.has_more {
        let _ = writeln!(out, "<a id=\"next\" href=\"?page={}\">more</a>", page.page_index + 1);
    }
    out.push_str("</body></html>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::{InterfaceSpec, Query};
    use crate::server::WebDbServer;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;

    #[test]
    fn html_structure_and_counts() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 2);
        let s = WebDbServer::new(t, spec);
        let a2 = s.table().interner().get(AttrId(0), "a2").unwrap();
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        let html = page_to_html(&page, s.table());
        assert!(html.contains("page 0 of results — 3 matches"));
        assert_eq!(html.matches("<div class=\"item\"").count(), 2);
        assert!(html.contains("<span class=\"f\" title=\"A\">a2</span>"));
        assert!(html.contains("id=\"next\""), "page 0 of 2 has a next link");
        let page1 = s.query_page(&Query::Value(a2), 1).unwrap();
        let html1 = page_to_html(&page1, s.table());
        assert!(!html1.contains("id=\"next\""), "last page has no next link");
    }

    #[test]
    fn html_escapes_markup_in_values() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        let schema = Schema::new(vec![AttrSpec::queriable("T")]);
        let mut t = UniversalTable::new(schema);
        t.push_record_strs([(AttrId(0), "<script>alert(1)</script>")]);
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec);
        let q = Query::ByString { attr: "T".into(), value: "<script>alert(1)</script>".into() };
        let page = s.query_page(&q, 0).unwrap();
        let html = page_to_html(&page, s.table());
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn totals_omitted_when_not_reported() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10).without_totals();
        let s = WebDbServer::new(t, spec);
        let a2 = s.table().interner().get(AttrId(0), "a2").unwrap();
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        let html = page_to_html(&page, s.table());
        assert!(!html.contains("matches"));
    }
}
