//! Simulated structured web-database server.
//!
//! The paper's controlled experiments (Section 5) run "server programs that
//! mimic Web server behaviour on top of the database server". This crate is
//! that substrate: an in-memory web database which
//!
//! * answers **single attribute-value queries** and **keyword queries**
//!   (the simplified query model of Section 2.2),
//! * returns results in **pages of `k` records** (Definition 2.3's cost model:
//!   one *communication round* per page request),
//! * optionally reports the **total match count** on the first page (the
//!   §3.4 abortion heuristics depend on this),
//! * enforces a **result cap** per query (Amazon's limit of 3200, and the
//!   tighter 10/50 limits of Figure 6),
//! * can serialize pages to an XML-ish **wire format** (Amazon Web Service
//!   returns XML documents), and
//! * can inject deterministic **transient faults** for crawler-hardening
//!   tests.
//!
//! The server counts every page request; the crawler never sees anything the
//! real interface would not expose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod fault;
pub mod html;
pub mod index;
pub mod interface;
pub mod server;
pub mod wire;

pub use cache::{PageCache, RenderFormat, RenderedPage};
pub use error::ServerError;
pub use fault::{FaultPolicy, FaultState};
pub use index::InvertedIndex;
pub use interface::{InterfaceSpec, Query};
pub use server::{PageRecord, ResultPage, WebDbServer};
