//! Rendered-page cache for shared-source fleets.
//!
//! Rendering a [`crate::server::ResultPage`] to its wire form is the server's
//! dominant CPU cost, and overlapping fleet workers crawling one shared
//! source re-request the same `(query, page_index)` pages constantly (their
//! frontiers overlap by construction — they grow from the same attribute
//! value graph). The cache memoizes the rendered text behind `&self` so any
//! worker's render is reusable by every other worker.
//!
//! Two deliberate properties:
//!
//! - **Billing is unaffected.** A cache hit skips the resolve + paginate +
//!   render work, *not* the communication round — Definition 2.3 charges per
//!   page request regardless of how cheaply the server can answer it. The
//!   cache changes wall-clock cost only.
//! - **Epoch invalidation.** [`crate::server::WebDbServer::set_interface`]
//!   bumps the cache epoch instead of walking entries; stale entries are
//!   simply ignored on lookup and recycled by LRU eviction.
//!
//! Entries are keyed by a 64-bit fingerprint of `(format, query, page_index)`
//! so a lookup never clones the query; the stored key is compared on hit, and
//! a fingerprint collision between different keys just degrades to a miss.

use crate::interface::Query;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which wire representation a cached entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenderFormat {
    /// The XML web-service format (`crate::wire`).
    Xml,
    /// The template-generated HTML format (`crate::html`).
    Html,
}

/// A rendered page handed out by the server: shared text plus whether it was
/// served from cache (surfaced to crawlers as a `PageCacheHit` event).
#[derive(Debug, Clone)]
pub struct RenderedPage {
    text: Arc<str>,
    cache_hit: bool,
}

impl RenderedPage {
    pub(crate) fn new(text: Arc<str>, cache_hit: bool) -> Self {
        RenderedPage { text, cache_hit }
    }

    /// The rendered document.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Clones out the shared buffer (no copy of the text itself).
    pub fn shared(&self) -> Arc<str> {
        Arc::clone(&self.text)
    }

    /// Whether this render was reused from the page cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }
}

/// Default number of rendered pages a server keeps (small on purpose: the
/// win comes from *concurrent* overlap, not long history).
pub const DEFAULT_PAGE_CACHE_CAPACITY: usize = 256;

#[derive(Debug)]
struct Entry {
    format: RenderFormat,
    query: Query,
    page_index: usize,
    text: Arc<str>,
    epoch: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    /// Monotonic use counter driving LRU eviction.
    tick: u64,
}

/// A small LRU cache of rendered result pages keyed by
/// `(format, query, page_index)`, with epoch invalidation.
///
/// All methods take `&self`; the map sits behind a `Mutex` (held only for a
/// probe or an insert — never across a render) and the epoch/hit counters are
/// atomics so readers of the stats never contend.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<Inner>,
}

impl PageCache {
    /// A cache holding at most `capacity` rendered pages; `capacity == 0`
    /// disables caching entirely (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        PageCache {
            capacity,
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks up a rendered page, counting the hit or miss. Entries from an
    /// older epoch are treated as absent (and evicted on contact).
    pub fn get(&self, format: RenderFormat, query: &Query, page_index: usize) -> Option<Arc<str>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let fp = fingerprint(format, query, page_index);
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut inner = self.inner.lock().expect("page cache poisoned");
        // Probe first, mutate after, so the map borrow is released between.
        let probe = match inner.entries.get(&fp) {
            Some(e)
                if e.epoch == epoch
                    && e.format == format
                    && e.page_index == page_index
                    && e.query == *query =>
            {
                Some(Arc::clone(&e.text))
            }
            Some(_) => {
                // Stale epoch or fingerprint collision: drop it so the slot
                // is free for the fresh render.
                inner.entries.remove(&fp);
                None
            }
            None => None,
        };
        match probe {
            Some(text) => {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(e) = inner.entries.get_mut(&fp) {
                    e.last_used = tick;
                }
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(text)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly rendered page, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, format: RenderFormat, query: &Query, page_index: usize, text: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        let fp = fingerprint(format, query, page_index);
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut inner = self.inner.lock().expect("page cache poisoned");
        if inner.entries.len() >= self.capacity && !inner.entries.contains_key(&fp) {
            // O(capacity) scan is fine at this size; prefer evicting a
            // stale-epoch entry outright, else the least recently used.
            let victim =
                inner.entries.iter().find(|(_, e)| e.epoch != epoch).map(|(&k, _)| k).or_else(
                    || inner.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(&k, _)| k),
                );
            if let Some(victim) = victim {
                inner.entries.remove(&victim);
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            fp,
            Entry { format, query: query.clone(), page_index, text, epoch, last_used: tick },
        );
    }

    /// Invalidates every current entry in O(1) — called when the interface
    /// (and therefore pagination/caps) changes under the cache.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (including lookups while disabled).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of entries currently stored (live and stale).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("page cache poisoned").entries.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Cloning a cache yields an empty one with the same capacity: cached text
/// and hit statistics belong to one server instance's traffic.
impl Clone for PageCache {
    fn clone(&self) -> Self {
        PageCache::new(self.capacity)
    }
}

impl Default for PageCache {
    fn default() -> Self {
        PageCache::new(DEFAULT_PAGE_CACHE_CAPACITY)
    }
}

fn fingerprint(format: RenderFormat, query: &Query, page_index: usize) -> u64 {
    let mut h = DefaultHasher::new();
    format.hash(&mut h);
    query.hash(&mut h);
    page_index.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Query {
        Query::Keyword(s.to_string())
    }

    fn text(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let c = PageCache::new(8);
        assert!(c.get(RenderFormat::Xml, &q("a"), 0).is_none());
        c.insert(RenderFormat::Xml, &q("a"), 0, text("<page a>"));
        let got = c.get(RenderFormat::Xml, &q("a"), 0).expect("hit");
        assert_eq!(&*got, "<page a>");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn key_distinguishes_format_query_and_page() {
        let c = PageCache::new(8);
        c.insert(RenderFormat::Xml, &q("a"), 0, text("xml"));
        assert!(c.get(RenderFormat::Html, &q("a"), 0).is_none());
        assert!(c.get(RenderFormat::Xml, &q("b"), 0).is_none());
        assert!(c.get(RenderFormat::Xml, &q("a"), 1).is_none());
        assert!(c.get(RenderFormat::Xml, &q("a"), 0).is_some());
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let c = PageCache::new(8);
        c.insert(RenderFormat::Xml, &q("a"), 0, text("old"));
        c.bump_epoch();
        assert!(c.get(RenderFormat::Xml, &q("a"), 0).is_none(), "stale epoch must miss");
        c.insert(RenderFormat::Xml, &q("a"), 0, text("new"));
        assert_eq!(&*c.get(RenderFormat::Xml, &q("a"), 0).unwrap(), "new");
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let c = PageCache::new(2);
        c.insert(RenderFormat::Xml, &q("a"), 0, text("a"));
        c.insert(RenderFormat::Xml, &q("b"), 0, text("b"));
        assert!(c.get(RenderFormat::Xml, &q("a"), 0).is_some(), "touch a");
        c.insert(RenderFormat::Xml, &q("c"), 0, text("c"));
        assert!(c.len() <= 2);
        assert!(c.get(RenderFormat::Xml, &q("a"), 0).is_some(), "a was recently used");
        assert!(c.get(RenderFormat::Xml, &q("b"), 0).is_none(), "b was the LRU victim");
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = PageCache::new(0);
        c.insert(RenderFormat::Xml, &q("a"), 0, text("a"));
        assert!(c.get(RenderFormat::Xml, &q("a"), 0).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn clone_starts_empty() {
        let c = PageCache::new(4);
        c.insert(RenderFormat::Xml, &q("a"), 0, text("a"));
        let c2 = c.clone();
        assert_eq!(c2.len(), 0);
        assert_eq!(c2.capacity(), 4);
    }
}
