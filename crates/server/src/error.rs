//! Server-side error type.

use std::fmt;

/// Errors a query interface can return to the crawler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The query names an attribute that is not part of the interface schema
    /// `A_q` (Definition 2.2) — e.g. trying to query a result-only attribute.
    NotQueriable {
        /// The offending attribute name.
        attr: String,
    },
    /// The query referenced an attribute name the source does not have.
    UnknownAttribute {
        /// The offending attribute name.
        attr: String,
    },
    /// The interface does not support keyword search and a keyword query was
    /// sent.
    KeywordUnsupported,
    /// The form demands more equality predicates than the query carries
    /// (restrictive multi-attribute interfaces, §2.2's airfare/hotel class).
    TooFewPredicates {
        /// Predicates the form requires.
        required: usize,
        /// Predicates the query carried.
        got: usize,
    },
    /// A transient failure (timeout, throttling, 5xx). The round still counts
    /// — the crawler paid the round-trip — and a retry may succeed.
    Transient,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::NotQueriable { attr } => {
                write!(f, "attribute {attr:?} is not queriable through this interface")
            }
            ServerError::UnknownAttribute { attr } => {
                write!(f, "unknown attribute {attr:?}")
            }
            ServerError::KeywordUnsupported => {
                write!(f, "this interface does not support keyword search")
            }
            ServerError::TooFewPredicates { required, got } => {
                write!(f, "this form requires at least {required} filled fields, got {got}")
            }
            ServerError::Transient => write!(f, "transient server failure"),
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServerError::NotQueriable { attr: "Price".into() };
        assert!(e.to_string().contains("Price"));
        assert!(ServerError::Transient.to_string().contains("transient"));
    }
}
