//! The simulated web-database server.
//!
//! Answers single attribute-value and keyword queries with paginated result
//! pages, counting every page request as one communication round
//! (Definition 2.3). Result ordering is deterministic (record-id order), the
//! per-query result cap truncates deep pagination (Section 5.4), and the
//! total match count is reported when the interface says so (Section 3.4).

use crate::cache::{PageCache, RenderFormat, RenderedPage};
use crate::error::ServerError;
use crate::fault::{FaultPolicy, FaultState};
use crate::index::InvertedIndex;
use crate::interface::{InterfaceSpec, Query};
use dwc_model::{RecordId, Schema, UniversalTable, ValueId, ValueInterner};
use dwc_store::SegmentTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A record as it appears in a result page: the source-assigned stable key
/// (like an Amazon ASIN) plus the record's attribute values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRecord {
    /// Stable source-assigned record key; identical across queries, so the
    /// crawler can deduplicate.
    pub key: u64,
    /// The record's attribute-value ids (sorted, unique).
    pub values: Vec<ValueId>,
}

/// One result page returned for `(query, page_index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultPage {
    /// Zero-based index of this page.
    pub page_index: usize,
    /// Total number of matching records in the backend — reported only when
    /// the interface advertises totals. Note this is the *true* total, which
    /// may exceed what pagination will ever return under a result cap (the
    /// Yahoo!-Autos example of Section 5.4).
    pub total_matches: Option<usize>,
    /// The records on this page (at most `k`).
    pub records: Vec<PageRecord>,
    /// Whether further pages are accessible after this one.
    pub has_more: bool,
}

/// Where a server's records and postings live.
///
/// `Resident` is the original fully in-RAM backend (a `UniversalTable` plus
/// a sealed [`InvertedIndex`]); `Paged` serves the same query semantics from
/// a [`SegmentTable`], whose record and postings columns live in fixed-size
/// pages behind a sized buffer pool. Because both backends intern values in
/// record-insertion order and keep postings sorted by ascending record id,
/// every page — and therefore every crawl report — is bit-identical between
/// them.
#[derive(Debug, Clone)]
enum Backend {
    Resident { table: UniversalTable, index: InvertedIndex },
    Paged(Arc<SegmentTable>),
}

impl Backend {
    fn interner(&self) -> &ValueInterner {
        match self {
            Backend::Resident { table, .. } => table.interner(),
            Backend::Paged(st) => st.interner(),
        }
    }

    fn schema(&self) -> &Schema {
        match self {
            Backend::Resident { table, .. } => table.schema(),
            Backend::Paged(st) => st.schema(),
        }
    }

    fn num_distinct_values(&self) -> usize {
        match self {
            Backend::Resident { table, .. } => table.num_distinct_values(),
            Backend::Paged(st) => st.num_distinct_values(),
        }
    }
}

/// An in-memory structured web database behind a query interface.
///
/// All request/fault accounting lives in atomics, so a single server can be
/// probed concurrently through `&self` — share one instance between crawler
/// workers as `Arc<WebDbServer>` and every page request lands in the same
/// global round counter (Definition 2.3 bills the *source*, not the worker).
///
/// Records and postings come from a [`Backend`]: fully resident
/// ([`WebDbServer::new`]) or served from paged segments
/// ([`WebDbServer::paged`]). The interface, fault policy, billing, and page
/// cache are backend-independent.
#[derive(Debug)]
pub struct WebDbServer {
    backend: Backend,
    interface: InterfaceSpec,
    fault: FaultPolicy,
    requests: AtomicU64,
    faults: FaultState,
    cache: PageCache,
}

impl Clone for WebDbServer {
    fn clone(&self) -> Self {
        WebDbServer {
            backend: self.backend.clone(),
            interface: self.interface.clone(),
            fault: self.fault.clone(),
            requests: AtomicU64::new(self.rounds_used()),
            faults: self.faults.clone(),
            // A clone serves its own traffic: it starts with a cold cache.
            cache: self.cache.clone(),
        }
    }
}

impl WebDbServer {
    /// Builds a server over `table` with the given interface.
    pub fn new(table: UniversalTable, interface: InterfaceSpec) -> Self {
        let index = InvertedIndex::build(&table);
        WebDbServer {
            backend: Backend::Resident { table, index },
            interface,
            fault: FaultPolicy::none(),
            requests: AtomicU64::new(0),
            faults: FaultState::new(),
            cache: PageCache::default(),
        }
    }

    /// Builds a server whose records and postings are served out-of-core
    /// from a [`SegmentTable`]. Query semantics, billing, and rendered bytes
    /// are identical to the resident backend.
    pub fn paged(table: Arc<SegmentTable>, interface: InterfaceSpec) -> Self {
        WebDbServer {
            backend: Backend::Paged(table),
            interface,
            fault: FaultPolicy::none(),
            requests: AtomicU64::new(0),
            faults: FaultState::new(),
            cache: PageCache::default(),
        }
    }

    /// Enables deterministic transient-fault injection.
    pub fn with_faults(mut self, fault: FaultPolicy) -> Self {
        self.fault = fault;
        self
    }

    /// Sizes the rendered-page cache (`0` disables it).
    pub fn with_page_cache(mut self, capacity: usize) -> Self {
        self.cache = PageCache::new(capacity);
        self
    }

    /// The rendered-page cache (hit/miss statistics for harnesses).
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// The backing table (test/analysis access — a real crawler has no such
    /// view; experiment harnesses use it to compute true coverage).
    ///
    /// # Panics
    ///
    /// Panics on a paged backend, which has no resident `UniversalTable`;
    /// harness code that supports both backends should go through
    /// [`WebDbServer::interner`] / [`WebDbServer::schema`] /
    /// [`WebDbServer::oracle_match_count`] instead.
    pub fn table(&self) -> &UniversalTable {
        match &self.backend {
            Backend::Resident { table, .. } => table,
            Backend::Paged(_) => {
                panic!("WebDbServer::table() requires the resident backend")
            }
        }
    }

    /// The paged segment table, when this server uses the paged backend.
    pub fn segment_table(&self) -> Option<&Arc<SegmentTable>> {
        match &self.backend {
            Backend::Resident { .. } => None,
            Backend::Paged(st) => Some(st),
        }
    }

    /// The value interner (backend-independent: both backends keep it
    /// resident).
    pub fn interner(&self) -> &ValueInterner {
        self.backend.interner()
    }

    /// The schema (backend-independent).
    pub fn schema(&self) -> &Schema {
        self.backend.schema()
    }

    /// The interface specification.
    pub fn interface(&self) -> &InterfaceSpec {
        &self.interface
    }

    /// Replaces the interface (used by the Figure 6 result-cap sweeps).
    /// Bumps the page-cache epoch: pagination and caps may have changed, so
    /// every cached render is invalid.
    pub fn set_interface(&mut self, interface: InterfaceSpec) {
        self.interface = interface;
        self.cache.bump_epoch();
    }

    /// Total page requests served so far — the crawl's communication cost.
    pub fn rounds_used(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of transient faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.injected()
    }

    /// Resets the communication-round counter (between experiment runs).
    pub fn reset_rounds(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.faults.reset();
    }

    /// Number of records that match `query` (oracle helper for tests and
    /// harnesses; not part of the crawler-visible interface).
    pub fn oracle_match_count(&self, query: &Query) -> usize {
        let resolved = match self.resolve(query) {
            Ok(r) => r,
            Err(_) => return 0,
        };
        match (&self.backend, resolved) {
            (_, Resolved::None) => 0,
            (Backend::Resident { index, .. }, Resolved::Single(v)) => index.match_count(v),
            (Backend::Resident { index, .. }, Resolved::Many(vs)) => index.union(&vs).len(),
            (Backend::Resident { index, .. }, Resolved::All(vs)) => index.intersect(&vs).len(),
            (Backend::Paged(st), Resolved::Single(v)) => st.match_count(v),
            (Backend::Paged(st), Resolved::Many(vs)) => st.union(&vs).len(),
            (Backend::Paged(st), Resolved::All(vs)) => st.intersect(&vs).len(),
        }
    }

    /// Serves one result page. Every call — including failed ones — costs one
    /// communication round. Takes `&self`: concurrent callers each get their
    /// own request number from the shared atomic counter.
    pub fn query_page(&self, query: &Query, page_index: usize) -> Result<ResultPage, ServerError> {
        self.bill()?;
        self.compute_page(query, page_index)
    }

    /// Serves one page already rendered to its wire form, reusing the page
    /// cache: overlapping requests from fleet workers sharing this source
    /// skip the resolve + paginate + render work entirely. The communication
    /// round (and any injected fault) is billed exactly as in
    /// [`WebDbServer::query_page`] — a cache hit is cheaper, not free.
    pub fn rendered_page(
        &self,
        query: &Query,
        page_index: usize,
        format: RenderFormat,
    ) -> Result<RenderedPage, ServerError> {
        self.bill()?;
        if let Some(text) = self.cache.get(format, query, page_index) {
            return Ok(RenderedPage::new(text, true));
        }
        let page = self.compute_page(query, page_index)?;
        let mut buf = String::with_capacity(128 + page.records.len() * 160);
        let (interner, schema) = (self.backend.interner(), self.backend.schema());
        match format {
            RenderFormat::Xml => crate::wire::page_to_xml_parts(&page, interner, schema, &mut buf),
            RenderFormat::Html => {
                crate::html::page_to_html_parts(&page, interner, schema, &mut buf)
            }
        }
        let text: Arc<str> = Arc::from(buf);
        self.cache.insert(format, query, page_index, Arc::clone(&text));
        Ok(RenderedPage::new(text, false))
    }

    /// Charges one communication round and rolls the fault dice — the
    /// billable prefix shared by every page entry point.
    fn bill(&self) -> Result<(), ServerError> {
        let request_no = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.faults.try_inject(&self.fault, request_no) {
            return Err(ServerError::Transient);
        }
        Ok(())
    }

    /// Resolves, paginates, and materializes one result page (no billing).
    fn compute_page(&self, query: &Query, page_index: usize) -> Result<ResultPage, ServerError> {
        let resolved = self.resolve(query)?;
        match &self.backend {
            Backend::Resident { table, index } => {
                self.compute_page_resident(table, index, resolved, page_index)
            }
            Backend::Paged(st) => Ok(self.compute_page_paged(st, resolved, page_index)),
        }
    }

    fn compute_page_resident(
        &self,
        table: &UniversalTable,
        index: &InvertedIndex,
        resolved: Resolved,
        page_index: usize,
    ) -> Result<ResultPage, ServerError> {
        let matches: MatchList<'_> = match resolved {
            Resolved::None => MatchList::Empty,
            Resolved::Single(v) => MatchList::Postings(index.postings(v)),
            Resolved::Many(vs) => MatchList::Owned(index.union(&vs)),
            Resolved::All(vs) => MatchList::Owned(index.intersect(&vs)),
        };
        let total = matches.len();
        let accessible = self.interface.accessible(total);
        let k = self.interface.page_size;
        let start = (page_index * k).min(accessible);
        let end = ((page_index + 1) * k).min(accessible);
        let records = matches
            .slice(start, end)
            .map(|rid| PageRecord {
                key: u64::from(rid.0),
                values: table.record(rid).values().to_vec(),
            })
            .collect();
        Ok(ResultPage {
            page_index,
            total_matches: self.interface.reports_total.then_some(total),
            records,
            has_more: end < accessible,
        })
    }

    /// The paged twin of [`WebDbServer::compute_page_resident`]. Single-value
    /// queries — the crawl hot path — read only the postings pages their
    /// slice covers ([`SegmentTable::postings_slice_into`]); union and
    /// intersection queries materialize their match list first, exactly as
    /// the resident backend does.
    fn compute_page_paged(
        &self,
        st: &SegmentTable,
        resolved: Resolved,
        page_index: usize,
    ) -> ResultPage {
        enum Paged {
            Lazy(ValueId, usize),
            Owned(Vec<u32>),
        }
        let list = match resolved {
            Resolved::None => Paged::Owned(Vec::new()),
            Resolved::Single(v) => Paged::Lazy(v, st.match_count(v)),
            Resolved::Many(vs) => Paged::Owned(st.union(&vs)),
            Resolved::All(vs) => Paged::Owned(st.intersect(&vs)),
        };
        let total = match &list {
            Paged::Lazy(_, t) => *t,
            Paged::Owned(rids) => rids.len(),
        };
        let accessible = self.interface.accessible(total);
        let k = self.interface.page_size;
        let start = (page_index * k).min(accessible);
        let end = ((page_index + 1) * k).min(accessible);
        let mut rids = Vec::with_capacity(end - start);
        match &list {
            Paged::Lazy(v, _) => st.postings_slice_into(*v, start, end, &mut rids),
            Paged::Owned(all) => rids.extend_from_slice(&all[start..end]),
        }
        let records = rids
            .into_iter()
            .map(|rid| PageRecord { key: u64::from(rid), values: st.record_values(rid) })
            .collect();
        ResultPage {
            page_index,
            total_matches: self.interface.reports_total.then_some(total),
            records,
            has_more: end < accessible,
        }
    }

    fn resolve(&self, query: &Query) -> Result<Resolved, ServerError> {
        match query {
            Query::Value(v) => {
                self.check_arity(1)?;
                if v.index() >= self.backend.num_distinct_values() {
                    return Ok(Resolved::None);
                }
                let attr = self.backend.interner().attr_of(*v);
                if !self.interface.is_queriable(attr) {
                    return Err(ServerError::NotQueriable {
                        attr: self.backend.schema().attr(attr).name.clone(),
                    });
                }
                Ok(Resolved::Single(*v))
            }
            Query::ByString { attr, value } => {
                self.check_arity(1)?;
                Ok(match self.resolve_pair(attr, value)? {
                    Some(v) => Resolved::Single(v),
                    None => Resolved::None,
                })
            }
            Query::Conjunctive(pairs) => {
                self.check_arity(pairs.len())?;
                let mut values = Vec::with_capacity(pairs.len());
                for (attr, value) in pairs {
                    match self.resolve_pair(attr, value)? {
                        Some(v) => values.push(v),
                        // One unmatched predicate empties the conjunction.
                        None => return Ok(Resolved::None),
                    }
                }
                Ok(match values.len() {
                    0 => Resolved::None,
                    1 => Resolved::Single(values[0]),
                    _ => Resolved::All(values),
                })
            }
            Query::Keyword(s) => {
                if !self.interface.keyword_search {
                    return Err(ServerError::KeywordUnsupported);
                }
                let vs = self.backend.interner().get_keyword(s);
                Ok(match vs.len() {
                    0 => Resolved::None,
                    1 => Resolved::Single(vs[0]),
                    _ => Resolved::Many(vs),
                })
            }
        }
    }
}

impl WebDbServer {
    /// Structured queries must carry at least the form's required number of
    /// predicates.
    fn check_arity(&self, got: usize) -> Result<(), ServerError> {
        let required = self.interface.min_query_attrs;
        if got < required {
            return Err(ServerError::TooFewPredicates { required, got });
        }
        Ok(())
    }

    /// Resolves one `(attribute name, value string)` predicate, enforcing
    /// queriability. `Ok(None)` means the value simply does not occur.
    fn resolve_pair(&self, attr: &str, value: &str) -> Result<Option<ValueId>, ServerError> {
        let attr_id = self
            .backend
            .schema()
            .attr_by_name(attr)
            .ok_or_else(|| ServerError::UnknownAttribute { attr: attr.to_owned() })?;
        if !self.interface.is_queriable(attr_id) {
            return Err(ServerError::NotQueriable { attr: attr.to_owned() });
        }
        Ok(self.backend.interner().get(attr_id, value))
    }
}

enum Resolved {
    None,
    Single(ValueId),
    Many(Vec<ValueId>),
    All(Vec<ValueId>),
}

enum MatchList<'a> {
    Empty,
    Postings(&'a [u32]),
    Owned(Vec<RecordId>),
}

impl MatchList<'_> {
    fn len(&self) -> usize {
        match self {
            MatchList::Empty => 0,
            MatchList::Postings(p) => p.len(),
            MatchList::Owned(v) => v.len(),
        }
    }

    fn slice(&self, start: usize, end: usize) -> Box<dyn Iterator<Item = RecordId> + '_> {
        match self {
            MatchList::Empty => Box::new(std::iter::empty()),
            MatchList::Postings(p) => Box::new(p[start..end].iter().map(|&r| RecordId(r))),
            MatchList::Owned(v) => Box::new(v[start..end].iter().copied()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;

    fn figure1_server(page_size: usize) -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), page_size);
        WebDbServer::new(t, spec)
    }

    fn val(s: &WebDbServer, attr: u16, v: &str) -> ValueId {
        s.table().interner().get(AttrId(attr), v).unwrap()
    }

    #[test]
    fn example_2_1_crawl_steps() {
        // Example 2.1 of the paper: query a2 first and see records 1,2,3.
        let s = figure1_server(10);
        let a2 = val(&s, 0, "a2");
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        assert_eq!(page.total_matches, Some(3));
        assert_eq!(page.records.len(), 3);
        assert!(!page.has_more);
        assert_eq!(s.rounds_used(), 1);
    }

    #[test]
    fn pagination_partitions_results() {
        let s = figure1_server(2);
        let c2 = val(&s, 2, "c2");
        let p0 = s.query_page(&Query::Value(c2), 0).unwrap();
        assert_eq!(p0.records.len(), 2);
        assert!(p0.has_more);
        let p1 = s.query_page(&Query::Value(c2), 1).unwrap();
        assert_eq!(p1.records.len(), 1);
        assert!(!p1.has_more);
        // No key appears twice across pages.
        let mut keys: Vec<u64> = p0.records.iter().chain(&p1.records).map(|r| r.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 3);
        assert_eq!(s.rounds_used(), 2);
    }

    #[test]
    fn result_cap_truncates_pagination_but_not_total() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 1).with_result_cap(2);
        let s = WebDbServer::new(t, spec);
        let c2 = val(&s, 2, "c2");
        let p0 = s.query_page(&Query::Value(c2), 0).unwrap();
        assert_eq!(p0.total_matches, Some(3), "true total still reported");
        assert!(p0.has_more);
        let p1 = s.query_page(&Query::Value(c2), 1).unwrap();
        assert!(!p1.has_more, "cap of 2 reached");
        let p2 = s.query_page(&Query::Value(c2), 2).unwrap();
        assert!(p2.records.is_empty(), "beyond the cap nothing is accessible");
    }

    #[test]
    fn totals_hidden_when_interface_says_so() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10).without_totals();
        let s = WebDbServer::new(t, spec);
        let a2 = val(&s, 0, "a2");
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        assert_eq!(page.total_matches, None);
    }

    #[test]
    fn by_string_query_resolves() {
        let s = figure1_server(10);
        let q = Query::ByString { attr: "A".into(), value: "a2".into() };
        let page = s.query_page(&q, 0).unwrap();
        assert_eq!(page.records.len(), 3);
    }

    #[test]
    fn by_string_no_match_is_empty_not_error() {
        let s = figure1_server(10);
        let q = Query::ByString { attr: "A".into(), value: "zz".into() };
        let page = s.query_page(&q, 0).unwrap();
        assert!(page.records.is_empty());
        assert_eq!(page.total_matches, Some(0));
        assert!(!page.has_more);
    }

    #[test]
    fn unknown_attribute_is_error() {
        let s = figure1_server(10);
        let q = Query::ByString { attr: "Nope".into(), value: "x".into() };
        assert_eq!(s.query_page(&q, 0), Err(ServerError::UnknownAttribute { attr: "Nope".into() }));
        assert_eq!(s.rounds_used(), 1, "a failed request still costs a round");
    }

    #[test]
    fn non_queriable_attribute_is_rejected() {
        let t = figure1_table();
        let mut spec = InterfaceSpec::permissive(t.schema(), 10);
        spec.queriable_attrs.retain(|&a| a != AttrId(0));
        let s = WebDbServer::new(t, spec);
        let a2 = val(&s, 0, "a2");
        assert!(matches!(
            s.query_page(&Query::Value(a2), 0),
            Err(ServerError::NotQueriable { .. })
        ));
    }

    #[test]
    fn keyword_query_works_and_can_be_disabled() {
        let s = figure1_server(10);
        let page = s.query_page(&Query::Keyword("a2".into()), 0).unwrap();
        assert_eq!(page.records.len(), 3);
        let t = figure1_table();
        let mut spec = InterfaceSpec::permissive(t.schema(), 10);
        spec.keyword_search = false;
        let s2 = WebDbServer::new(t, spec);
        assert_eq!(
            s2.query_page(&Query::Keyword("a2".into()), 0),
            Err(ServerError::KeywordUnsupported)
        );
    }

    #[test]
    fn unknown_value_id_yields_empty() {
        let s = figure1_server(10);
        let page = s.query_page(&Query::Value(ValueId(9999)), 0).unwrap();
        assert!(page.records.is_empty());
        assert_eq!(page.total_matches, Some(0));
    }

    #[test]
    fn fault_injection_costs_rounds_and_recovers() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(2));
        let a2 = val(&s, 0, "a2");
        let q = Query::Value(a2);
        assert!(s.query_page(&q, 0).is_ok()); // request 1
        assert_eq!(s.query_page(&q, 0), Err(ServerError::Transient)); // request 2
        assert!(s.query_page(&q, 0).is_ok()); // request 3: retry succeeds
        assert_eq!(s.rounds_used(), 3);
    }

    #[test]
    fn conjunctive_query_intersects() {
        let s = figure1_server(10);
        // a2 ∧ c2 matches records 2 and 3 only.
        let q = Query::Conjunctive(vec![("A".into(), "a2".into()), ("C".into(), "c2".into())]);
        let page = s.query_page(&q, 0).unwrap();
        assert_eq!(page.total_matches, Some(2));
        let keys: Vec<u64> = page.records.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![2, 3]);
    }

    #[test]
    fn conjunctive_with_unmatched_predicate_is_empty() {
        let s = figure1_server(10);
        let q = Query::Conjunctive(vec![
            ("A".into(), "a2".into()),
            ("C".into(), "does-not-exist".into()),
        ]);
        let page = s.query_page(&q, 0).unwrap();
        assert_eq!(page.total_matches, Some(0));
        assert!(page.records.is_empty());
    }

    #[test]
    fn restrictive_form_rejects_single_predicates() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10).requiring_attrs(2);
        assert!(!spec.keyword_search, "restrictive forms drop the keyword box");
        let s = WebDbServer::new(t, spec);
        let single = Query::ByString { attr: "A".into(), value: "a2".into() };
        assert_eq!(
            s.query_page(&single, 0),
            Err(ServerError::TooFewPredicates { required: 2, got: 1 })
        );
        let pair = Query::Conjunctive(vec![("A".into(), "a2".into()), ("B".into(), "b2".into())]);
        let page = s.query_page(&pair, 0).unwrap();
        assert_eq!(page.total_matches, Some(2), "a2 ∧ b2 matches records 1 and 2");
    }

    #[test]
    fn conjunctive_of_three_predicates() {
        let s = figure1_server(10);
        let q = Query::Conjunctive(vec![
            ("A".into(), "a2".into()),
            ("B".into(), "b2".into()),
            ("C".into(), "c1".into()),
        ]);
        let page = s.query_page(&q, 0).unwrap();
        assert_eq!(page.total_matches, Some(1));
        assert_eq!(page.records[0].key, 1);
    }

    #[test]
    fn oracle_match_count_agrees_with_pages() {
        let s = figure1_server(2);
        let c2 = val(&s, 2, "c2");
        let q = Query::Value(c2);
        assert_eq!(s.oracle_match_count(&q), 3);
        let p0 = s.query_page(&q, 0).unwrap();
        assert_eq!(p0.total_matches, Some(3));
    }

    #[test]
    fn rendered_pages_are_cached_but_still_billed() {
        let s = figure1_server(10);
        let a2 = val(&s, 0, "a2");
        let q = Query::Value(a2);
        let r1 = s.rendered_page(&q, 0, RenderFormat::Xml).unwrap();
        assert!(!r1.cache_hit(), "first render is a miss");
        let r2 = s.rendered_page(&q, 0, RenderFormat::Xml).unwrap();
        assert!(r2.cache_hit(), "identical request is served from cache");
        assert_eq!(r1.text(), r2.text());
        assert_eq!(s.rounds_used(), 2, "a cache hit is cheaper, not free");
        assert_eq!(s.page_cache().hits(), 1);
        // The cached XML matches a fresh render of the same page.
        let page = s.query_page(&q, 0).unwrap();
        assert_eq!(r1.text(), crate::wire::page_to_xml(&page, s.table()));
        // Formats are cached independently.
        let html = s.rendered_page(&q, 0, RenderFormat::Html).unwrap();
        assert!(!html.cache_hit());
        assert_ne!(html.text(), r1.text());
    }

    #[test]
    fn interface_swap_invalidates_rendered_cache() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let mut s = WebDbServer::new(t, spec.clone());
        let a2 = val(&s, 0, "a2");
        let q = Query::Value(a2);
        let before = s.rendered_page(&q, 0, RenderFormat::Xml).unwrap();
        s.set_interface(spec.with_result_cap(1));
        let after = s.rendered_page(&q, 0, RenderFormat::Xml).unwrap();
        assert!(!after.cache_hit(), "epoch bump must force a re-render");
        assert_ne!(before.text(), after.text(), "the cap changed the page");
    }

    #[test]
    fn fault_injection_applies_before_the_cache() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(2));
        let a2 = val(&s, 0, "a2");
        let q = Query::Value(a2);
        assert!(s.rendered_page(&q, 0, RenderFormat::Xml).is_ok()); // request 1
                                                                    // Request 2 faults even though the page is cached.
        assert!(matches!(s.rendered_page(&q, 0, RenderFormat::Xml), Err(ServerError::Transient)));
        assert!(s.rendered_page(&q, 0, RenderFormat::Xml).unwrap().cache_hit());
    }

    #[test]
    fn paged_backend_serves_identical_pages() {
        use dwc_store::MemPager;
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 2).with_result_cap(4);
        let st = SegmentTable::from_table(&t, Box::new(MemPager::new(128)), 4096).unwrap();
        let resident = WebDbServer::new(t, spec.clone());
        let paged = WebDbServer::paged(Arc::new(st), spec);
        assert!(paged.segment_table().is_some());
        let queries = vec![
            Query::ByString { attr: "A".into(), value: "a2".into() },
            Query::ByString { attr: "C".into(), value: "c2".into() },
            Query::ByString { attr: "A".into(), value: "missing".into() },
            Query::Keyword("a2".into()),
            Query::Conjunctive(vec![("A".into(), "a2".into()), ("C".into(), "c2".into())]),
            Query::Value(ValueId(9999)),
        ];
        for q in &queries {
            assert_eq!(
                resident.oracle_match_count(q),
                paged.oracle_match_count(q),
                "oracle for {q:?}"
            );
            for page in 0..3 {
                assert_eq!(
                    resident.query_page(q, page),
                    paged.query_page(q, page),
                    "structured page {page} of {q:?}"
                );
                for format in [RenderFormat::Xml, RenderFormat::Html] {
                    let r = resident.rendered_page(q, page, format).unwrap();
                    let p = paged.rendered_page(q, page, format).unwrap();
                    assert_eq!(r.text(), p.text(), "{format:?} page {page} of {q:?}");
                }
            }
        }
        // Error paths route through the same interface checks.
        let bad = Query::ByString { attr: "Nope".into(), value: "x".into() };
        assert_eq!(resident.query_page(&bad, 0), paged.query_page(&bad, 0));
    }

    #[test]
    #[should_panic(expected = "resident backend")]
    fn table_accessor_panics_on_paged_backend() {
        use dwc_store::MemPager;
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 2);
        let st = SegmentTable::from_table(&t, Box::new(MemPager::new(128)), 4096).unwrap();
        let paged = WebDbServer::paged(Arc::new(st), spec);
        let _ = paged.table();
    }

    #[test]
    fn reset_rounds_zeroes_counter() {
        let s = figure1_server(10);
        let a2 = val(&s, 0, "a2");
        s.query_page(&Query::Value(a2), 0).unwrap();
        assert_eq!(s.rounds_used(), 1);
        s.reset_rounds();
        assert_eq!(s.rounds_used(), 0);
    }
}
