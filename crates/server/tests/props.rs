//! Property tests for the server's query semantics: conjunctive queries
//! intersect, keyword queries union, pagination respects caps.

use dwc_model::{AttrId, AttrSpec, Schema, UniversalTable};
use dwc_server::{InterfaceSpec, Query, WebDbServer};
use proptest::prelude::*;

fn table_from(records: &[Vec<(u16, u8)>]) -> UniversalTable {
    let schema = Schema::new(vec![
        AttrSpec::queriable("A"),
        AttrSpec::queriable("B"),
        AttrSpec::queriable("C"),
    ]);
    let mut t = UniversalTable::new(schema);
    for rec in records {
        let fields: Vec<(AttrId, String)> =
            rec.iter().map(|&(a, v)| (AttrId(a % 3), format!("v{v}"))).collect();
        t.push_record_strs(fields.iter().map(|(a, s)| (*a, s.as_str())));
    }
    t
}

fn record_strategy() -> impl Strategy<Value = Vec<(u16, u8)>> {
    prop::collection::vec((0u16..3, 0u8..10), 1..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A conjunctive query's result is exactly the intersection of its
    /// single-predicate results.
    #[test]
    fn conjunctive_equals_intersection(
        records in prop::collection::vec(record_strategy(), 1..30),
        a_val in 0u8..10,
        b_val in 0u8..10,
    ) {
        let t = table_from(&records);
        let server = WebDbServer::new(t, InterfaceSpec::permissive(&Schema::new(vec![
            AttrSpec::queriable("A"), AttrSpec::queriable("B"), AttrSpec::queriable("C"),
        ]), 100));
        let single = |server: &WebDbServer, attr: &str, v: u8| -> Vec<u64> {
            let q = Query::ByString { attr: attr.into(), value: format!("v{v}") };
            server.query_page(&q, 0).unwrap().records.iter().map(|r| r.key).collect()
        };
        let sa = single(&server, "A", a_val);
        let sb = single(&server, "B", b_val);
        let conj = Query::Conjunctive(vec![
            ("A".into(), format!("v{a_val}")),
            ("B".into(), format!("v{b_val}")),
        ]);
        let got: Vec<u64> =
            server.query_page(&conj, 0).unwrap().records.iter().map(|r| r.key).collect();
        let expected: Vec<u64> = sa.iter().copied().filter(|k| sb.contains(k)).collect();
        prop_assert_eq!(got, expected);
    }

    /// A keyword query's result is the union of the same string queried
    /// through every attribute's form field.
    #[test]
    fn keyword_equals_union(
        records in prop::collection::vec(record_strategy(), 1..30),
        val in 0u8..10,
    ) {
        let t = table_from(&records);
        let server = WebDbServer::new(t, InterfaceSpec::permissive(&Schema::new(vec![
            AttrSpec::queriable("A"), AttrSpec::queriable("B"), AttrSpec::queriable("C"),
        ]), 100));
        let mut expected: Vec<u64> = Vec::new();
        for attr in ["A", "B", "C"] {
            let q = Query::ByString { attr: attr.into(), value: format!("v{val}") };
            expected.extend(server.query_page(&q, 0).unwrap().records.iter().map(|r| r.key));
        }
        expected.sort_unstable();
        expected.dedup();
        let kw = Query::Keyword(format!("v{val}"));
        let mut got: Vec<u64> =
            server.query_page(&kw, 0).unwrap().records.iter().map(|r| r.key).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Under any result cap, the accessible records are a prefix of the
    /// uncapped result and pagination totals never change.
    #[test]
    fn caps_take_prefixes(
        records in prop::collection::vec(record_strategy(), 1..40),
        val in 0u8..10,
        cap in 1usize..20,
    ) {
        let schema = Schema::new(vec![
            AttrSpec::queriable("A"), AttrSpec::queriable("B"), AttrSpec::queriable("C"),
        ]);
        let collect = |server: &mut WebDbServer| -> (Option<usize>, Vec<u64>) {
            let q = Query::ByString { attr: "A".into(), value: format!("v{val}") };
            let mut keys = Vec::new();
            let mut page = 0;
            let mut total = None;
            loop {
                let p = server.query_page(&q, page).unwrap();
                total = p.total_matches.or(total);
                keys.extend(p.records.iter().map(|r| r.key));
                if !p.has_more {
                    break;
                }
                page += 1;
            }
            (total, keys)
        };
        let t = table_from(&records);
        let mut uncapped = WebDbServer::new(t.clone(), InterfaceSpec::permissive(&schema, 3));
        let (total_u, keys_u) = collect(&mut uncapped);
        let mut capped =
            WebDbServer::new(t, InterfaceSpec::permissive(&schema, 3).with_result_cap(cap));
        let (total_c, keys_c) = collect(&mut capped);
        prop_assert_eq!(total_u, total_c, "reported totals are cap-independent");
        prop_assert!(keys_c.len() <= cap);
        prop_assert_eq!(&keys_u[..keys_c.len()], &keys_c[..], "capped result is a prefix");
    }
}
