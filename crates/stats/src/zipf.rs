//! Zipf (power-law) sampling over a finite rank range.
//!
//! The paper's Figure 2 observes that attribute-value graphs of real web
//! databases (DBLP, IMDB, ACM DL) have degree distributions "very close to
//! power-law". The dataset generators therefore draw attribute-value
//! popularity from a Zipf distribution: rank `r ∈ [1, n]` is selected with
//! probability proportional to `r^{-s}`.
//!
//! Sampling uses inversion on the precomputed CDF (binary search), which is
//! `O(log n)` per draw and exact. The table costs `O(n)` memory, which is fine
//! for the value-pool sizes used here (≤ a few million).

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s > 0`.
///
/// Rank 1 is the most popular outcome. Use [`Zipf::sample`] to draw ranks.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalized, then normalized) distribution over ranks.
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Builds the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, s }
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent `s` the distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of drawing `rank` (1-based).
    ///
    /// Returns `0.0` for ranks outside `1..=n`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cdf.len() {
            return 0.0;
        }
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }

    /// Draws a 1-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index whose CDF value is >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("CDF is finite")) {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    /// Draws a 0-based index (convenience for indexing value pools).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample(rng) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_monotone_decreasing() {
        let z = Zipf::new(50, 0.9);
        for r in 1..50 {
            assert!(z.pmf(r) > z.pmf(r + 1), "pmf must decrease with rank");
        }
    }

    #[test]
    fn pmf_out_of_range_is_zero() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(11), 0.0);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(17, 1.3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=17).contains(&r));
        }
    }

    #[test]
    fn rank_one_dominates_empirically() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        let draws = 50_000;
        for _ in 0..draws {
            let r = z.sample(&mut rng);
            if r <= 3 {
                counts[r - 1] += 1;
            }
        }
        // p(1) ≈ 0.133 for n=1000, s=1; rank 1 must clearly beat rank 2, 2 beat 3.
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        let p1 = counts[0] as f64 / draws as f64;
        assert!((p1 - z.pmf(1)).abs() < 0.02, "empirical {p1} vs pmf {}", z.pmf(1));
    }

    #[test]
    fn single_rank_always_returns_one() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn bad_exponent_panics() {
        let _ = Zipf::new(10, 0.0);
    }
}
