//! Descriptive statistics: mean, variance, standard deviation, quantiles.

/// Arithmetic mean of a sample. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n−1 denominator) sample variance. Returns `0.0` when fewer than
/// two observations are available.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`sample_variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Quantile by linear interpolation between closest ranks.
///
/// `q` must lie in `[0, 1]`; the input need not be sorted (a sorted copy is
/// made internally). Returns `None` for an empty slice or an out-of-range `q`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn variance_known_value() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum of squared devs 32,
        // unbiased variance 32/7.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let v = sample_variance(&xs);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(sample_variance(&[3.0]), 0.0);
    }

    #[test]
    fn std_dev_is_sqrt_of_variance() {
        let xs = [1.0, 3.0, 5.0];
        assert!((std_dev(&xs) - sample_variance(&xs).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(3.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
    }
}
