//! Ordinary least-squares line fitting.
//!
//! Used to fit the log–log degree distributions of attribute-value graphs
//! (paper Figure 2): a power law `freq ∝ degree^{-α}` appears as a straight
//! line with slope `-α` in log–log space.

/// Result of a least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
}

/// Fits a straight line to the paired observations by ordinary least squares.
///
/// Returns `None` when fewer than two points are given, the lengths differ, or
/// all `x` values coincide (vertical line).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0 // all ys equal: the horizontal line is a perfect fit
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LineFit { slope, intercept, r_squared })
}

/// Fits `log10(y) ≈ slope·log10(x) + intercept`, skipping non-positive points.
///
/// This is the Figure 2 transformation; the returned slope is `-α` for a power
/// law with exponent `α`. Returns `None` when fewer than two positive points
/// survive the filter.
pub fn log_log_fit(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    let mut lx = Vec::with_capacity(xs.len());
    let mut ly = Vec::with_capacity(ys.len());
    for (&x, &y) in xs.iter().zip(ys) {
        if x > 0.0 && y > 0.0 {
            lx.push(x.log10());
            ly.push(y.log10());
        }
    }
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable_r2() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| 3.0 * x + if x % 2.0 == 0.0 { 0.5 } else { -0.5 }).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
    }

    #[test]
    fn mismatched_lengths_is_none() {
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn vertical_line_is_none() {
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn horizontal_line_has_r2_one() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn log_log_recovers_power_law_exponent() {
        // y = 100 * x^{-2}
        let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 * x.powf(-2.0)).collect();
        let fit = log_log_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-9, "slope {}", fit.slope);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn log_log_skips_nonpositive_points() {
        let xs = [0.0, 1.0, 10.0, 100.0];
        let ys = [5.0, 1.0, 0.1, 0.01];
        let fit = log_log_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 1.0).abs() < 1e-9);
    }
}
