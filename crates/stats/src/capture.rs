//! Capture–recapture ("overlap analysis") database-size estimation.
//!
//! The paper (Section 5, citing Lawrence & Giles) estimates the size of the
//! Amazon DVD database from six independent crawls: every pair of crawls
//! yields a Lincoln–Petersen estimate `|A|·|B| / |A∩B|`, producing
//! `C(6,2) = 15` estimates that feed a t-test.

/// Lincoln–Petersen estimator of population size from two independent
/// samples: `N̂ = |A|·|B| / |A∩B|`.
///
/// Returns `None` when the samples do not overlap (the estimator is
/// undefined) or either sample is empty.
pub fn lincoln_petersen(size_a: usize, size_b: usize, overlap: usize) -> Option<f64> {
    if overlap == 0 || size_a == 0 || size_b == 0 {
        return None;
    }
    Some(size_a as f64 * size_b as f64 / overlap as f64)
}

/// All pairwise Lincoln–Petersen estimates over a family of samples.
///
/// Each sample is a *sorted, deduplicated* slice of record identifiers.
/// Non-overlapping pairs are skipped, matching the paper's procedure (an
/// estimate simply cannot be formed for them). For `n` samples, at most
/// `n·(n−1)/2` estimates are returned.
///
/// # Panics
/// Panics (in debug builds) if a sample is not strictly sorted.
pub fn pairwise_estimates(samples: &[Vec<u32>]) -> Vec<f64> {
    for s in samples {
        debug_assert!(s.windows(2).all(|w| w[0] < w[1]), "samples must be sorted and deduplicated");
    }
    let mut out = Vec::with_capacity(samples.len() * samples.len().saturating_sub(1) / 2);
    for i in 0..samples.len() {
        for j in (i + 1)..samples.len() {
            let overlap = sorted_intersection_size(&samples[i], &samples[j]);
            if let Some(est) = lincoln_petersen(samples[i].len(), samples[j].len(), overlap) {
                out.push(est);
            }
        }
    }
    out
}

/// Size of the intersection of two sorted, deduplicated id lists (linear merge).
pub fn sorted_intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_exact_when_samples_are_whole_population() {
        // Both samples are the full population of 100: estimate is exact.
        assert_eq!(lincoln_petersen(100, 100, 100), Some(100.0));
    }

    #[test]
    fn lp_half_overlap() {
        // |A|=50, |B|=40, overlap 20 → 100.
        assert_eq!(lincoln_petersen(50, 40, 20), Some(100.0));
    }

    #[test]
    fn lp_undefined_without_overlap() {
        assert_eq!(lincoln_petersen(10, 10, 0), None);
        assert_eq!(lincoln_petersen(0, 10, 0), None);
    }

    #[test]
    fn intersection_size_basic() {
        assert_eq!(sorted_intersection_size(&[1, 3, 5, 7], &[3, 4, 5, 6, 7]), 3);
        assert_eq!(sorted_intersection_size(&[], &[1, 2]), 0);
        assert_eq!(sorted_intersection_size(&[1, 2], &[3, 4]), 0);
    }

    #[test]
    fn pairwise_counts_and_values() {
        let samples = vec![
            vec![0, 1, 2, 3, 4], // 5 ids
            vec![2, 3, 4, 5, 6], // 5 ids, overlap 3 → 25/3
            vec![100, 101],      // disjoint from both → skipped
        ];
        let ests = pairwise_estimates(&samples);
        assert_eq!(ests.len(), 1);
        assert!((ests[0] - 25.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_full_family() {
        // Three identical samples of a 4-element population: 3 estimates of 4.
        let s = vec![vec![1, 2, 3, 4]; 3];
        let ests = pairwise_estimates(&s);
        assert_eq!(ests, vec![4.0, 4.0, 4.0]);
    }
}
