//! Statistical substrate for the deep-web crawling reproduction.
//!
//! Everything the paper's evaluation needs that would normally come from a
//! statistics package is implemented here from first principles:
//!
//! * [`zipf`] — power-law (Zipf) sampling used by the dataset generators, since
//!   Figure 2 of the paper shows database graphs follow power-law degree
//!   distributions.
//! * [`descriptive`] — means, variances, quantiles.
//! * [`regression`] — least-squares line fits for the log–log degree plots.
//! * [`ttest`] — Student-t machinery (log-gamma, regularized incomplete beta)
//!   for the Amazon-size hypothesis test in Section 5 of the paper.
//! * [`capture`] — Lincoln–Petersen capture–recapture ("overlap analysis",
//!   Lawrence & Giles) database-size estimation.
//! * [`mod@pmi`] — pointwise mutual information used by the MMMI query-selection
//!   policy (Definition 3.1 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod descriptive;
pub mod pmi;
pub mod regression;
pub mod ttest;
pub mod zipf;

pub use capture::{lincoln_petersen, pairwise_estimates};
pub use descriptive::{mean, sample_variance, std_dev};
pub use pmi::pmi;
pub use regression::{linear_fit, LineFit};
pub use ttest::{one_sample_upper_bound, t_cdf, TTest};
pub use zipf::Zipf;
