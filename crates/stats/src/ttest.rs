//! Student-t machinery: log-gamma, regularized incomplete beta, the t
//! cumulative distribution, one-sample t-tests and one-sided confidence
//! bounds.
//!
//! Section 5 of the paper estimates the Amazon DVD database size by running
//! six independent crawls, forming the 15 pairwise capture–recapture
//! estimates, and applying a t-test to conclude "with 90% confidence, the
//! Amazon DVD product database contains less than 37,000 data records". The
//! [`one_sample_upper_bound`] function reproduces exactly that computation.

use crate::descriptive::{mean, sample_variance};

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~15 significant digits for positive arguments, which is far
/// more than the t-tests here require.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction, as in Numerical Recipes.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires positive shape parameters");
    assert!((0.0..=1.0).contains(&x), "incomplete_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry relation so the continued fraction converges fast.
    // Both branches are computed directly (no recursion) so that x exactly at
    // the switch-over threshold cannot loop.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction helper for [`incomplete_beta`] (modified Lentz method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Inverse CDF (quantile) of Student's t via bisection on [`t_cdf`].
///
/// `p` must lie strictly inside `(0, 1)`.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
    assert!(df > 0.0, "degrees of freedom must be positive");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket the root; t quantiles for sane p are well within ±1e5.
    let (mut lo, mut hi) = (-1e6, 1e6);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Result of a one-sample t-test of `H0: μ = mu0`.
#[derive(Debug, Clone, Copy)]
pub struct TTest {
    /// The t statistic `(x̄ − μ0)·√n / s`.
    pub t_statistic: f64,
    /// Degrees of freedom, `n − 1`.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Sample mean.
    pub sample_mean: f64,
    /// Sample standard deviation.
    pub sample_std: f64,
}

/// One-sample, two-sided Student t-test of the null hypothesis `μ = mu0`.
///
/// Returns `None` when fewer than two observations are available or the
/// sample variance is zero.
pub fn one_sample_ttest(xs: &[f64], mu0: f64) -> Option<TTest> {
    if xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let m = mean(xs);
    let var = sample_variance(xs);
    if var == 0.0 {
        return None;
    }
    let s = var.sqrt();
    let t = (m - mu0) * n.sqrt() / s;
    let df = n - 1.0;
    let p = 2.0 * (1.0 - t_cdf(t.abs(), df));
    Some(TTest { t_statistic: t, df, p_value: p, sample_mean: m, sample_std: s })
}

/// One-sided upper confidence bound for the population mean:
/// `x̄ + t_{conf, n−1} · s / √n`.
///
/// With `confidence = 0.90` and the 15 pairwise size estimates, this is the
/// computation behind the paper's "< 37,000 records with 90% confidence"
/// claim. Returns `None` with fewer than two observations.
pub fn one_sample_upper_bound(xs: &[f64], confidence: f64) -> Option<f64> {
    if xs.len() < 2 || !(0.0..1.0).contains(&confidence) {
        return None;
    }
    let n = xs.len() as f64;
    let m = mean(xs);
    let s = sample_variance(xs).sqrt();
    if s == 0.0 {
        return Some(m);
    }
    let t = t_quantile(confidence, n - 1.0);
    Some(m + t * s / n.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.37, 0.5, 0.92] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.7, 1.3, 0.6), (4.0, 4.0, 0.25)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "symmetry failed for ({a},{b},{x})");
        }
    }

    #[test]
    fn t_cdf_symmetry_and_median() {
        assert!((t_cdf(0.0, 5.0) - 0.5).abs() < 1e-15);
        for &t in &[0.5, 1.0, 2.3] {
            let up = t_cdf(t, 7.0);
            let dn = t_cdf(-t, 7.0);
            assert!((up + dn - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_known_quantiles() {
        // Standard tables: t_{0.95, 5} = 2.015, t_{0.975, 10} = 2.228,
        // t_{0.90, 14} = 1.345.
        assert!((t_cdf(2.015, 5.0) - 0.95).abs() < 2e-3);
        assert!((t_cdf(2.228, 10.0) - 0.975).abs() < 2e-3);
        assert!((t_cdf(1.345, 14.0) - 0.90).abs() < 2e-3);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &(p, df) in &[(0.9, 14.0), (0.95, 5.0), (0.1, 3.0), (0.5, 9.0)] {
            let q = t_quantile(p, df);
            assert!((t_cdf(q, df) - p).abs() < 1e-9, "p={p}, df={df}");
        }
    }

    #[test]
    fn t_quantile_matches_tables() {
        assert!((t_quantile(0.90, 14.0) - 1.345).abs() < 2e-3);
        assert!((t_quantile(0.95, 5.0) - 2.015).abs() < 2e-3);
    }

    #[test]
    fn ttest_detects_shifted_mean() {
        let xs = [5.1, 4.9, 5.2, 5.0, 5.1, 4.8, 5.0, 5.2];
        let t = one_sample_ttest(&xs, 4.0).unwrap();
        assert!(t.p_value < 1e-6, "strongly shifted mean must reject H0");
        let t2 = one_sample_ttest(&xs, 5.0).unwrap();
        assert!(t2.p_value > 0.1, "true mean must not be rejected");
    }

    #[test]
    fn ttest_degenerate_inputs() {
        assert!(one_sample_ttest(&[1.0], 0.0).is_none());
        assert!(one_sample_ttest(&[2.0, 2.0, 2.0], 0.0).is_none());
    }

    #[test]
    fn upper_bound_covers_mean() {
        let xs = [30_000.0, 32_000.0, 35_000.0, 31_000.0, 33_000.0, 36_000.0];
        let ub = one_sample_upper_bound(&xs, 0.90).unwrap();
        let m = mean(&xs);
        assert!(ub > m, "upper bound must exceed the sample mean");
        // Hand computation: mean 32833.33, s ≈ 2316.61, n=6, t_{0.9,5} ≈ 1.476
        // → ub ≈ 34229.
        assert!((ub - 34_229.0).abs() < 20.0, "ub = {ub}");
    }

    #[test]
    fn upper_bound_tightens_with_lower_confidence() {
        let xs = [10.0, 12.0, 11.0, 13.0, 9.0];
        let ub90 = one_sample_upper_bound(&xs, 0.90).unwrap();
        let ub50 = one_sample_upper_bound(&xs, 0.50).unwrap();
        assert!(ub90 > ub50);
    }
}
