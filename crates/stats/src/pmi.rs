//! Pointwise mutual information between attribute values.
//!
//! Definition 3.1 of the paper scores the dependency between a candidate query
//! `q_i` and a past query `q_j` as
//!
//! ```text
//! ln  P(q_i, q_j | DB_local) / ( P(q_i | DB_local) · P(q_j | DB_local) )
//! ```
//!
//! computed from record co-occurrence counts in the locally harvested
//! database. The MMMI policy takes the *maximum* of this over all issued
//! queries and prefers candidates with the smallest maximum (min–max).

/// Pointwise mutual information from raw counts.
///
/// * `co` — number of records where both values occur,
/// * `a`, `b` — numbers of records where each value occurs,
/// * `n` — total number of records.
///
/// Returns `ln( (co/n) / ((a/n)·(b/n)) ) = ln( co·n / (a·b) )`.
/// Returns `f64::NEG_INFINITY` when the pair never co-occurs (independent or
/// anti-correlated beyond observation), and `None` for inconsistent counts
/// (zero marginals with nonzero co-occurrence, or `n == 0`).
pub fn pmi(co: usize, a: usize, b: usize, n: usize) -> Option<f64> {
    if n == 0 || co > a || co > b || a > n || b > n {
        return None;
    }
    if a == 0 || b == 0 {
        return None;
    }
    if co == 0 {
        return Some(f64::NEG_INFINITY);
    }
    Some(((co as f64 * n as f64) / (a as f64 * b as f64)).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_values_have_zero_pmi() {
        // P(a)=0.5, P(b)=0.5, P(ab)=0.25 over n=100.
        let v = pmi(25, 50, 50, 100).unwrap();
        assert!(v.abs() < 1e-12);
    }

    #[test]
    fn perfectly_correlated_values_positive() {
        // a and b always co-occur: P(ab)=P(a)=P(b)=0.1 → ln(10) > 0.
        let v = pmi(10, 10, 10, 100).unwrap();
        assert!((v - 10f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn never_cooccurring_is_neg_infinity() {
        assert_eq!(pmi(0, 10, 10, 100), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn symmetric_in_arguments() {
        assert_eq!(pmi(5, 20, 30, 100), pmi(5, 30, 20, 100));
    }

    #[test]
    fn inconsistent_counts_rejected() {
        assert_eq!(pmi(5, 3, 10, 100), None); // co > a
        assert_eq!(pmi(0, 0, 10, 100), None); // zero marginal
        assert_eq!(pmi(0, 1, 1, 0), None); // empty database
        assert_eq!(pmi(1, 200, 10, 100), None); // a > n
    }

    #[test]
    fn anti_correlated_is_negative() {
        // P(a)=P(b)=0.5 but they co-occur in only 5% of records.
        let v = pmi(5, 50, 50, 100).unwrap();
        assert!(v < 0.0);
    }
}
