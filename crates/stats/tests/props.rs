//! Property tests for the statistical substrate.

use dwc_stats::ttest::{incomplete_beta, one_sample_ttest, t_cdf, t_quantile};
use dwc_stats::{lincoln_petersen, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The t CDF is a CDF: bounded in [0,1], non-decreasing in t, symmetric
    /// around 0.
    #[test]
    fn t_cdf_is_a_cdf(t1 in -50.0f64..50.0, t2 in -50.0f64..50.0, df in 1.0f64..100.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let (c_lo, c_hi) = (t_cdf(lo, df), t_cdf(hi, df));
        prop_assert!((0.0..=1.0).contains(&c_lo));
        prop_assert!((0.0..=1.0).contains(&c_hi));
        prop_assert!(c_lo <= c_hi + 1e-12, "monotone: F({lo})={c_lo} vs F({hi})={c_hi}");
        prop_assert!((t_cdf(t1, df) + t_cdf(-t1, df) - 1.0).abs() < 1e-9, "symmetry");
    }

    /// The quantile function inverts the CDF across the usable range.
    #[test]
    fn t_quantile_inverts(p in 0.01f64..0.99, df in 1.0f64..60.0) {
        let q = t_quantile(p, df);
        prop_assert!((t_cdf(q, df) - p).abs() < 1e-7);
    }

    /// Incomplete beta stays within [0,1] and is monotone in x.
    #[test]
    fn incomplete_beta_bounded_monotone(
        a in 0.1f64..20.0,
        b in 0.1f64..20.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let (i_lo, i_hi) = (incomplete_beta(a, b, lo), incomplete_beta(a, b, hi));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&i_lo));
        prop_assert!(i_lo <= i_hi + 1e-9);
    }

    /// Zipf: pmf sums to 1; every sample lands in range; pmf is decreasing.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..2000, s in 0.2f64..2.5, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
        }
        for r in 1..n.min(50) {
            prop_assert!(z.pmf(r) >= z.pmf(r + 1));
        }
    }

    /// Lincoln–Petersen never estimates below the larger sample, and is
    /// exact when one sample is contained in the other of full size.
    #[test]
    fn lincoln_petersen_lower_bound(a in 1usize..10_000, b in 1usize..10_000) {
        let overlap = a.min(b);
        let est = lincoln_petersen(a, b, overlap).unwrap();
        prop_assert!(est + 1e-9 >= a.max(b) as f64);
    }

    /// A one-sample t-test of data against its own mean never rejects
    /// violently: |t| small, p large.
    #[test]
    fn ttest_against_own_mean_is_calm(xs in prop::collection::vec(-100.0f64..100.0, 3..40)) {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        if let Some(t) = one_sample_ttest(&xs, mean) {
            prop_assert!(t.t_statistic.abs() < 1e-6);
            prop_assert!(t.p_value > 0.99);
        }
    }
}
