//! Property tests for the data-model substrate.

use dwc_model::components::UnionFind;
use dwc_model::{AttrId, Record, ValueId, ValueInterner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interning arbitrary strings (any unicode) round-trips exactly, and
    /// repeated interning is idempotent.
    #[test]
    fn interner_roundtrips_arbitrary_strings(
        strings in prop::collection::vec(any::<String>(), 1..30),
        attrs in prop::collection::vec(0u16..4, 1..30),
    ) {
        let mut it = ValueInterner::new();
        let mut ids = Vec::new();
        for (s, a) in strings.iter().zip(attrs.iter().cycle()) {
            ids.push((it.intern(AttrId(*a), s), AttrId(*a), s.clone()));
        }
        for (id, attr, s) in &ids {
            prop_assert_eq!(it.value_str(*id), s.as_str());
            prop_assert_eq!(it.attr_of(*id), *attr);
            prop_assert_eq!(it.intern(*attr, s), *id, "idempotent");
            prop_assert_eq!(it.get(*attr, s), Some(*id));
        }
    }

    /// Distinct (attr, string) pairs always get distinct ids.
    #[test]
    fn interner_ids_injective(pairs in prop::collection::btree_set((0u16..4, ".{0,12}"), 1..50)) {
        let mut it = ValueInterner::new();
        let ids: Vec<ValueId> =
            pairs.iter().map(|(a, s)| it.intern(AttrId(*a), s)).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pairs.len());
    }

    /// Record construction sorts, dedups, and is idempotent.
    #[test]
    fn record_normalization(ids in prop::collection::vec(0u32..64, 0..24)) {
        let rec = Record::new(ids.iter().map(|&i| ValueId(i)).collect());
        let vals = rec.values();
        prop_assert!(vals.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        for &i in &ids {
            prop_assert!(rec.contains(ValueId(i)));
        }
        let again = Record::new(vals.to_vec());
        prop_assert_eq!(again.values(), vals);
    }

    /// Union–find maintains an equivalence relation: reflexive, symmetric
    /// (trivially), transitive through arbitrary union sequences.
    #[test]
    fn union_find_equivalence(unions in prop::collection::vec((0u32..40, 0u32..40), 0..80)) {
        let mut uf = UnionFind::new(40);
        // Reference: naive set partition.
        let mut labels: Vec<u32> = (0..40).collect();
        for &(a, b) in &unions {
            uf.union(a, b);
            let (la, lb) = (labels[a as usize], labels[b as usize]);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for i in 0..40u32 {
            for j in 0..40u32 {
                prop_assert_eq!(
                    uf.connected(i, j),
                    labels[i as usize] == labels[j as usize],
                    "pair ({}, {})", i, j
                );
            }
        }
    }
}
