//! The attribute-value graph (AVG) of Definition 2.1, in CSR form.
//!
//! One vertex per distinct attribute value; an undirected edge `(v_i, v_j)`
//! iff the two values co-occur in at least one record. Each record therefore
//! induces a clique, and a value shared by two records "bridges" their
//! cliques.
//!
//! Construction is a two-pass counting sort into a CSR layout followed by a
//! per-vertex sort + dedup — `O(Σ_r |r|²)` work, no per-edge allocation.

use crate::interner::ValueId;
use crate::table::UniversalTable;

/// Compressed-sparse-row adjacency of an attribute-value graph.
#[derive(Debug, Clone)]
pub struct AvGraph {
    /// `offsets[v] .. offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-vertex sorted and deduplicated neighbor lists.
    neighbors: Vec<u32>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl AvGraph {
    /// Builds the AVG of a universal table.
    pub fn from_table(table: &UniversalTable) -> Self {
        let n = table.num_distinct_values();
        // Pass 1: count raw (pre-dedup) neighbor entries per vertex.
        let mut counts = vec![0u32; n + 1];
        for (_, rec) in table.iter() {
            let k = rec.values().len() as u32;
            if k < 2 {
                continue;
            }
            for &v in rec.values() {
                counts[v.index() + 1] += k - 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        // Pass 2: scatter neighbor entries.
        let mut neighbors = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        let mut cursor = offsets.clone();
        for (_, rec) in table.iter() {
            let vals = rec.values();
            if vals.len() < 2 {
                continue;
            }
            for (i, &v) in vals.iter().enumerate() {
                let c = &mut cursor[v.index()];
                for (j, &w) in vals.iter().enumerate() {
                    if i != j {
                        neighbors[*c as usize] = w.0;
                        *c += 1;
                    }
                }
            }
        }
        // Pass 3: sort + dedup each vertex's list in place, compacting.
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(offsets.len());
        new_offsets.push(0u32);
        let mut num_edge_endpoints = 0usize;
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            neighbors[start..end].sort_unstable();
            // Dedup into the compacted prefix of `neighbors`.
            let mut prev: Option<u32> = None;
            let mut kept = 0usize;
            for k in start..end {
                let x = neighbors[k];
                if prev != Some(x) {
                    neighbors[write + kept] = x;
                    kept += 1;
                    prev = Some(x);
                }
            }
            write += kept;
            num_edge_endpoints += kept;
            new_offsets.push(write as u32);
        }
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        AvGraph { offsets: new_offsets, neighbors, num_edges: num_edge_endpoints / 2 }
    }

    /// Number of vertices (distinct attribute values).
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The neighbors of `v` (sorted ascending, unique, excludes `v`).
    #[inline]
    pub fn neighbors(&self, v: ValueId) -> &[u32] {
        let (s, e) = (self.offsets[v.index()] as usize, self.offsets[v.index() + 1] as usize);
        &self.neighbors[s..e]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: ValueId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Whether `(a, b)` is an edge.
    pub fn has_edge(&self, a: ValueId, b: ValueId) -> bool {
        self.neighbors(a).binary_search(&b.0).is_ok()
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.num_vertices() as u32).map(ValueId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_table;
    use crate::interner::AttrId;

    fn vid(t: &UniversalTable, attr: u16, s: &str) -> ValueId {
        t.interner().get(AttrId(attr), s).expect("fixture value")
    }

    #[test]
    fn figure1_graph_shape() {
        let t = figure1_table();
        let g = AvGraph::from_table(&t);
        assert_eq!(g.num_vertices(), 9);
        // Figure 1's drawn graph: edges =
        // a1-b1, a1-c1, b1-c1 (record 0 clique)
        // a2-b2, a2-c1, b2-c1 (record 1)
        // a2-c2, b2-c2 (record 2 adds)
        // a2-b3, b3-c2 (record 3 adds)
        // a3-b4, a3-c2, b4-c2 (record 4)
        assert_eq!(g.num_edges(), 13);
    }

    #[test]
    fn degrees_match_figure1() {
        let t = figure1_table();
        let g = AvGraph::from_table(&t);
        // a2 co-occurs with b2, c1, c2, b3.
        assert_eq!(g.degree(vid(&t, 0, "a2")), 4);
        // c2 co-occurs with a2, b2, b3, a3, b4.
        assert_eq!(g.degree(vid(&t, 2, "c2")), 5);
        // b1 only with a1 and c1.
        assert_eq!(g.degree(vid(&t, 1, "b1")), 2);
    }

    #[test]
    fn edges_iff_cooccurrence() {
        let t = figure1_table();
        let g = AvGraph::from_table(&t);
        assert!(g.has_edge(vid(&t, 0, "a2"), vid(&t, 1, "b2")));
        assert!(g.has_edge(vid(&t, 1, "b2"), vid(&t, 2, "c2")));
        // a1 and c2 never co-occur.
        assert!(!g.has_edge(vid(&t, 0, "a1"), vid(&t, 2, "c2")));
        // A vertex is never its own neighbor.
        for v in g.vertices() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let t = figure1_table();
        let g = AvGraph::from_table(&t);
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                assert!(g.has_edge(ValueId(w), v), "edge {v}->{w} must be symmetric");
            }
        }
    }

    #[test]
    fn neighbor_lists_sorted_unique() {
        let t = figure1_table();
        let g = AvGraph::from_table(&t);
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        }
    }

    #[test]
    fn empty_table_empty_graph() {
        let t = UniversalTable::new(crate::fixtures::figure1_schema());
        let g = AvGraph::from_table(&t);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn singleton_records_have_no_edges() {
        let mut t = UniversalTable::new(crate::fixtures::figure1_schema());
        t.push_record_strs([(AttrId(0), "x")]);
        t.push_record_strs([(AttrId(0), "y")]);
        let g = AvGraph::from_table(&t);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_records_do_not_duplicate_edges() {
        let mut t = UniversalTable::new(crate::fixtures::figure1_schema());
        for _ in 0..3 {
            t.push_record_strs([(AttrId(0), "x"), (AttrId(1), "y")]);
        }
        let g = AvGraph::from_table(&t);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(vid(&t, 0, "x")), 1);
    }
}
