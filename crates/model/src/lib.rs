//! Data model for structured web databases and their attribute-value graphs.
//!
//! Section 2 of the paper models a structured web database as a single
//! relational table `DB` with records over a set of attributes, and derives
//! from it the **attribute-value graph** (AVG, Definition 2.1): one vertex per
//! distinct attribute value, an edge whenever two values co-occur in a record
//! (so each record induces a clique). Query-based crawling is then graph
//! traversal, and optimal query selection is a Weighted Minimum Dominating Set
//! problem (Definition 2.4).
//!
//! This crate provides:
//!
//! * [`interner`] — attribute-qualified value interning ([`ValueId`]s),
//! * [`schema`] — attribute metadata and interface schemas (Definition 2.2),
//! * [`table`] — the universal table ([`UniversalTable`]) with its distinct
//!   attribute value (DAV) set,
//! * [`graph`] — the AVG in CSR form ([`AvGraph`]),
//! * [`components`] — connectivity analysis ("well connected" check, data
//!   islands),
//! * [`degree`] — degree distributions and power-law fits (paper Figure 2),
//! * [`domset`] — greedy and exact weighted dominating set solvers
//!   (Definition 2.4's optimal-crawl characterization),
//! * [`packed`] — packed value encoding: offset-indexed list arenas shared
//!   by the resident crawler state and the out-of-core segment layer, plus
//!   the interner's prehashed spill image.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod degree;
pub mod domset;
pub mod fixtures;
pub mod graph;
pub mod interner;
pub mod packed;
pub mod schema;
pub mod table;

pub use graph::AvGraph;
pub use interner::{value_hash, AttrId, ValueId, ValueInterner};
pub use packed::{PackedError, PackedLists};
pub use schema::{AttrSpec, Schema};
pub use table::{Record, RecordId, UniversalTable};
