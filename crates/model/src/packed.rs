//! Packed value encoding: offset-indexed list arenas.
//!
//! The crawler's local database and the out-of-core segment layer both store
//! millions of short `ValueId` lists. One heap allocation per list (the
//! obvious `Vec<Box<[T]>>`) costs 16–32 bytes of allocator overhead per
//! record and scatters the lists across the heap; [`PackedLists`] instead
//! packs every element into one flat arena with a parallel column of
//! end offsets — the same encoding `dwc-store` writes to disk, kept here so
//! the resident and paged representations are literally the same bytes.

use std::fmt;

/// FNV-1a 64-bit hash over a byte slice — the framing checksum used by the
/// interner spill format, the checkpoint store, and the frame log.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A growable collection of variable-length lists packed into one arena.
///
/// List `i` spans `data[offsets[i-1] .. offsets[i]]` (with `offsets[-1]`
/// implicitly `0`): two `Vec`s total, regardless of how many lists are
/// stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLists<T> {
    /// End offset of each list in `data`.
    offsets: Vec<u64>,
    /// All elements, concatenated in insertion order.
    data: Vec<T>,
}

// Manual impl: an empty collection needs no `T: Default`.
impl<T> Default for PackedLists<T> {
    fn default() -> Self {
        PackedLists { offsets: Vec::new(), data: Vec::new() }
    }
}

impl<T: Copy> PackedLists<T> {
    /// An empty collection.
    pub fn new() -> Self {
        PackedLists { offsets: Vec::new(), data: Vec::new() }
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether no lists have been pushed.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Total elements across all lists.
    pub fn total_elems(&self) -> usize {
        self.data.len()
    }

    /// Appends one list, returning its index.
    pub fn push(&mut self, elems: &[T]) -> usize {
        self.data.extend_from_slice(elems);
        self.offsets.push(self.data.len() as u64);
        self.offsets.len() - 1
    }

    /// The elements of list `i`.
    pub fn get(&self, i: usize) -> &[T] {
        let start = if i == 0 { 0 } else { self.offsets[i - 1] as usize };
        &self.data[start..self.offsets[i] as usize]
    }

    /// Iterates all lists in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[T]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Iterates lists `start..len()` — the "what arrived since the last
    /// snapshot" view the state journal uses.
    pub fn iter_since(&self, start: usize) -> impl Iterator<Item = &[T]> + '_ {
        (start.min(self.len())..self.len()).map(move |i| self.get(i))
    }

    /// Heap bytes held by the arena and offset columns (capacity, not just
    /// length — this is the number RSS accounting sees).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.data.capacity() * std::mem::size_of::<T>()
    }
}

/// Errors decoding a packed byte image (interner spill, segment metadata).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackedError {
    /// The image ended before its declared contents.
    Truncated,
    /// The magic header did not match.
    Magic,
    /// The trailing checksum did not match the payload.
    Checksum,
    /// String data was not valid UTF-8.
    Utf8,
    /// Internal lengths were inconsistent.
    Layout,
}

impl fmt::Display for PackedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedError::Truncated => write!(f, "packed image truncated"),
            PackedError::Magic => write!(f, "packed image has wrong magic header"),
            PackedError::Checksum => write!(f, "packed image failed its checksum"),
            PackedError::Utf8 => write!(f, "packed image holds invalid UTF-8"),
            PackedError::Layout => write!(f, "packed image layout is inconsistent"),
        }
    }
}

impl std::error::Error for PackedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trips() {
        let mut p: PackedLists<u32> = PackedLists::new();
        assert!(p.is_empty());
        assert_eq!(p.push(&[1, 2, 3]), 0);
        assert_eq!(p.push(&[]), 1);
        assert_eq!(p.push(&[9]), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_elems(), 4);
        assert_eq!(p.get(0), &[1, 2, 3]);
        assert_eq!(p.get(1), &[] as &[u32]);
        assert_eq!(p.get(2), &[9]);
        let all: Vec<&[u32]> = p.iter().collect();
        assert_eq!(all, vec![&[1u32, 2, 3][..], &[][..], &[9][..]]);
    }

    #[test]
    fn iter_since_yields_the_suffix() {
        let mut p: PackedLists<u8> = PackedLists::new();
        p.push(&[1]);
        p.push(&[2, 2]);
        p.push(&[3]);
        let tail: Vec<&[u8]> = p.iter_since(1).collect();
        assert_eq!(tail, vec![&[2u8, 2][..], &[3][..]]);
        assert_eq!(p.iter_since(7).count(), 0);
    }

    #[test]
    fn heap_bytes_tracks_capacity() {
        let mut p: PackedLists<u32> = PackedLists::new();
        assert_eq!(p.heap_bytes(), 0);
        p.push(&[1, 2, 3, 4]);
        assert!(p.heap_bytes() >= 4 * 4 + 8);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
