//! The universal table: records over interned attribute values.
//!
//! Following Section 5 of the paper ("for each database, we join all the
//! information into one single universal table"), a structured web source is a
//! flat list of records; each record carries the sorted, deduplicated set of
//! its attribute-value ids. Multi-valued attributes (authors, actors) simply
//! contribute several ids.

use crate::interner::{AttrId, ValueId, ValueInterner};
use crate::schema::Schema;

/// Identifier of a record (row) of the universal table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub u32);

impl RecordId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A record: the sorted, deduplicated list of its attribute-value ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    values: Box<[ValueId]>,
}

impl Record {
    /// Builds a record from value ids; sorts and deduplicates.
    pub fn new(mut values: Vec<ValueId>) -> Self {
        values.sort_unstable();
        values.dedup();
        Record { values: values.into_boxed_slice() }
    }

    /// The value ids of the record (sorted ascending, unique).
    #[inline]
    pub fn values(&self) -> &[ValueId] {
        &self.values
    }

    /// Whether the record contains `v` (binary search).
    #[inline]
    pub fn contains(&self, v: ValueId) -> bool {
        self.values.binary_search(&v).is_ok()
    }

    /// Number of distinct values in the record.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the record has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A structured web database: schema + interner + records.
#[derive(Debug, Clone, Default)]
pub struct UniversalTable {
    schema: Schema,
    interner: ValueInterner,
    records: Vec<Record>,
}

impl UniversalTable {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        UniversalTable { schema, interner: ValueInterner::new(), records: Vec::new() }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The value interner (string ↔ id mapping).
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Number of records.
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Number of distinct attribute values (|DAV|, as reported in Table 2 of
    /// the paper).
    pub fn num_distinct_values(&self) -> usize {
        self.interner.len()
    }

    /// The record with the given id.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id.index()]
    }

    /// Iterates `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records.iter().enumerate().map(|(i, r)| (RecordId(i as u32), r))
    }

    /// Inserts a record given `(attribute, value string)` pairs, interning the
    /// values. Returns the new record id.
    pub fn push_record_strs<S, I>(&mut self, fields: I) -> RecordId
    where
        S: AsRef<str>,
        I: IntoIterator<Item = (AttrId, S)>,
    {
        let values: Vec<ValueId> =
            fields.into_iter().map(|(attr, s)| self.interner.intern(attr, s.as_ref())).collect();
        self.push_record_ids(values)
    }

    /// Inserts a record from already-interned value ids.
    pub fn push_record_ids(&mut self, values: Vec<ValueId>) -> RecordId {
        debug_assert!(
            values.iter().all(|v| v.index() < self.interner.len()),
            "record references unknown value id"
        );
        let id = RecordId(u32::try_from(self.records.len()).expect("more than u32::MAX records"));
        self.records.push(Record::new(values));
        id
    }

    /// Interns a value through the table (useful while generating data).
    pub fn intern(&mut self, attr: AttrId, value: &str) -> ValueId {
        self.interner.intern(attr, value)
    }

    /// Number of records containing `v` (linear scan; analysis helper — the
    /// server crate maintains an inverted index for the hot path).
    pub fn count_matches(&self, v: ValueId) -> usize {
        self.records.iter().filter(|r| r.contains(v)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_table;

    #[test]
    fn record_sorts_and_dedups() {
        let r = Record::new(vec![ValueId(3), ValueId(1), ValueId(3), ValueId(2)]);
        assert_eq!(r.values(), &[ValueId(1), ValueId(2), ValueId(3)]);
        assert!(r.contains(ValueId(2)));
        assert!(!r.contains(ValueId(0)));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn figure1_counts() {
        let t = figure1_table();
        assert_eq!(t.num_records(), 5);
        // Distinct values: a1,a2,a3,b1,b2,b3,b4,c1,c2 = 9 vertices, as drawn
        // in Figure 1 of the paper.
        assert_eq!(t.num_distinct_values(), 9);
    }

    #[test]
    fn count_matches_matches_figure1() {
        let t = figure1_table();
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let c2 = t.interner().get(AttrId(2), "c2").unwrap();
        assert_eq!(t.count_matches(a2), 3);
        assert_eq!(t.count_matches(c2), 3);
    }

    #[test]
    fn shared_values_are_shared_ids() {
        let t = figure1_table();
        let (r1, r2) = (t.record(RecordId(1)), t.record(RecordId(2)));
        let shared: Vec<_> = r1.values().iter().filter(|v| r2.contains(**v)).collect();
        assert_eq!(shared.len(), 2, "records 1 and 2 share a2 and b2");
    }

    #[test]
    fn iter_yields_all_records() {
        let t = figure1_table();
        assert_eq!(t.iter().count(), 5);
        let ids: Vec<_> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
