//! Attribute metadata and interface schemas.
//!
//! Definition 2.2 of the paper splits a source's attributes into the
//! *interface schema* (queriable attributes `A_q`) and the *result schema*
//! (attributes displayed in result pages, `A_r`). Table 2 of the paper lists
//! the queriable attributes used for the four controlled databases; the
//! [`Schema`] type captures exactly that information.

use crate::interner::AttrId;

/// Description of a single attribute of the universal table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSpec {
    /// Human-readable attribute name (e.g. `"Actor"`, `"Title"`).
    pub name: String,
    /// Whether the attribute is part of the interface schema `A_q`
    /// (values of this attribute may be used as queries).
    pub queriable: bool,
    /// Whether a record may carry several values of this attribute
    /// (e.g. the `Authors` attribute of a publication database, which the
    /// paper concatenates into one full-text-searchable column).
    pub multi_valued: bool,
}

impl AttrSpec {
    /// A queriable, single-valued attribute.
    pub fn queriable(name: &str) -> Self {
        AttrSpec { name: name.to_owned(), queriable: true, multi_valued: false }
    }

    /// A queriable attribute that may hold several values per record.
    pub fn queriable_multi(name: &str) -> Self {
        AttrSpec { name: name.to_owned(), queriable: true, multi_valued: true }
    }

    /// A result-only (non-queriable) attribute.
    pub fn result_only(name: &str) -> Self {
        AttrSpec { name: name.to_owned(), queriable: false, multi_valued: false }
    }
}

/// The schema of a universal table: an ordered list of attributes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<AttrSpec>,
}

impl Schema {
    /// Builds a schema from attribute specs.
    pub fn new(attrs: Vec<AttrSpec>) -> Self {
        assert!(attrs.len() <= u16::MAX as usize, "too many attributes");
        Schema { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The spec of attribute `id`.
    pub fn attr(&self, id: AttrId) -> &AttrSpec {
        &self.attrs[id.0 as usize]
    }

    /// Finds an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(|i| AttrId(i as u16))
    }

    /// Iterates `(id, spec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrSpec)> {
        self.attrs.iter().enumerate().map(|(i, a)| (AttrId(i as u16), a))
    }

    /// Ids of the queriable attributes (the interface schema `A_q`).
    pub fn queriable_attrs(&self) -> Vec<AttrId> {
        self.iter().filter(|(_, a)| a.queriable).map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> Schema {
        Schema::new(vec![
            AttrSpec::result_only("Title"),
            AttrSpec::queriable_multi("Actor"),
            AttrSpec::queriable("Director"),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = movie_schema();
        assert_eq!(s.attr_by_name("Director"), Some(AttrId(2)));
        assert_eq!(s.attr_by_name("Nope"), None);
    }

    #[test]
    fn queriable_attrs_filters_result_only() {
        let s = movie_schema();
        assert_eq!(s.queriable_attrs(), vec![AttrId(1), AttrId(2)]);
    }

    #[test]
    fn attr_spec_constructors() {
        let s = movie_schema();
        assert!(!s.attr(AttrId(0)).queriable);
        assert!(s.attr(AttrId(1)).multi_valued);
        assert!(!s.attr(AttrId(2)).multi_valued);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
