//! Small shared fixtures, chiefly the Figure 1 example of the paper.
//!
//! Example 2.1 / Figure 1 of the paper shows a five-record relational table
//! and its attribute-value graph; the quickstart example and many tests walk
//! through exactly that instance.

use crate::interner::AttrId;
use crate::schema::{AttrSpec, Schema};
use crate::table::UniversalTable;

/// The three-attribute schema (`A`, `B`, `C`) of the Figure 1 example.
pub fn figure1_schema() -> Schema {
    Schema::new(vec![AttrSpec::queriable("A"), AttrSpec::queriable("B"), AttrSpec::queriable("C")])
}

/// The Figure 1 example table:
///
/// | A  | B  | C  |
/// |----|----|----|
/// | a1 | b1 | c1 |
/// | a2 | b2 | c1 |
/// | a2 | b2 | c2 |
/// | a2 | b3 | c2 |
/// | a3 | b4 | c2 |
///
/// Nine distinct attribute values; starting from seed `a2` a crawler can reach
/// the entire database (Example 2.1).
pub fn figure1_table() -> UniversalTable {
    let mut t = UniversalTable::new(figure1_schema());
    let (a, b, c) = (AttrId(0), AttrId(1), AttrId(2));
    t.push_record_strs([(a, "a1"), (b, "b1"), (c, "c1")]);
    t.push_record_strs([(a, "a2"), (b, "b2"), (c, "c1")]);
    t.push_record_strs([(a, "a2"), (b, "b2"), (c, "c2")]);
    t.push_record_strs([(a, "a2"), (b, "b3"), (c, "c2")]);
    t.push_record_strs([(a, "a3"), (b, "b4"), (c, "c2")]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let t = figure1_table();
        assert_eq!(t.num_records(), 5);
        assert_eq!(t.num_distinct_values(), 9);
    }
}
