//! Connectivity analysis of structured web databases.
//!
//! Section 5 of the paper checks that its controlled databases are "well
//! connected": starting from any record, 99% of all records are reachable
//! within finitely many queries. Section 4 motivates domain knowledge partly
//! by "data islands" — components unreachable from the seed values.
//!
//! Connectivity is computed on the record–value incidence structure with a
//! union–find: all values of a record are unioned together (cost `O(Σ|r|·α)`),
//! which yields exactly the connected components of the AVG without
//! materializing its edges.

use crate::interner::ValueId;
use crate::table::{RecordId, UniversalTable};

/// Union–find (disjoint set union) over dense `u32` ids.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were separate.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) =
            if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Result of analyzing the connectivity of a database's AVG.
#[derive(Debug, Clone)]
pub struct Connectivity {
    uf: UnionFind,
    /// Component representative for each record (via its first value).
    record_root: Vec<u32>,
    /// Records per component root.
    component_records: std::collections::HashMap<u32, u32>,
    num_records: usize,
}

impl Connectivity {
    /// Analyzes a table: unions all values within each record.
    pub fn analyze(table: &UniversalTable) -> Self {
        let mut uf = UnionFind::new(table.num_distinct_values());
        for (_, rec) in table.iter() {
            let vals = rec.values();
            for w in vals.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
        }
        let mut record_root = Vec::with_capacity(table.num_records());
        let mut component_records = std::collections::HashMap::new();
        for (_, rec) in table.iter() {
            let root = match rec.values().first() {
                Some(v) => uf.find(v.0),
                None => u32::MAX, // empty record: its own island
            };
            record_root.push(root);
            *component_records.entry(root).or_insert(0u32) += 1;
        }
        Connectivity { uf, record_root, component_records, num_records: table.num_records() }
    }

    /// Number of connected components that contain at least one record.
    pub fn num_components(&self) -> usize {
        self.component_records.len()
    }

    /// Fraction of records in the largest component.
    ///
    /// The paper's "well connected" claim is `largest_component_coverage() ≥ 0.99`.
    pub fn largest_component_coverage(&self) -> f64 {
        if self.num_records == 0 {
            return 0.0;
        }
        let max = self.component_records.values().copied().max().unwrap_or(0);
        max as f64 / self.num_records as f64
    }

    /// Fraction of records reachable from the given seed values — the
    /// *coverage convergence* of a crawl started at those seeds (Section 1:
    /// "the ultimate database coverage ... is predetermined by the seed
    /// values").
    pub fn reachable_coverage(&mut self, seeds: &[ValueId]) -> f64 {
        if self.num_records == 0 {
            return 0.0;
        }
        let roots: Vec<u32> = {
            let uf = &mut self.uf;
            seeds.iter().map(|s| uf.find(s.0)).collect()
        };
        let mut count = 0usize;
        for &r in &self.record_root {
            if r != u32::MAX && roots.contains(&r) {
                count += 1;
            }
        }
        count as f64 / self.num_records as f64
    }

    /// Whether a record is reachable from a seed value.
    pub fn record_reachable_from(&mut self, record: RecordId, seed: ValueId) -> bool {
        let root = self.record_root[record.index()];
        root != u32::MAX && self.uf.find(seed.0) == self.uf.find(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_schema, figure1_table};
    use crate::interner::AttrId;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn figure1_is_one_component() {
        let t = figure1_table();
        let mut c = Connectivity::analyze(&t);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.largest_component_coverage(), 1.0);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        assert_eq!(c.reachable_coverage(&[a2]), 1.0);
    }

    #[test]
    fn data_islands_detected() {
        let mut t = figure1_table();
        // An island: two records sharing values with each other but nothing else.
        t.push_record_strs([(AttrId(0), "x1"), (AttrId(1), "y1")]);
        t.push_record_strs([(AttrId(0), "x1"), (AttrId(1), "y2")]);
        let mut c = Connectivity::analyze(&t);
        assert_eq!(c.num_components(), 2);
        assert!((c.largest_component_coverage() - 5.0 / 7.0).abs() < 1e-12);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        let x1 = t.interner().get(AttrId(0), "x1").unwrap();
        assert!((c.reachable_coverage(&[a2]) - 5.0 / 7.0).abs() < 1e-12);
        // Seeding both components reaches everything.
        assert_eq!(c.reachable_coverage(&[a2, x1]), 1.0);
    }

    #[test]
    fn record_reachability() {
        let mut t = figure1_table();
        t.push_record_strs([(AttrId(0), "x1"), (AttrId(1), "y1")]);
        let mut c = Connectivity::analyze(&t);
        let a2 = t.interner().get(AttrId(0), "a2").unwrap();
        assert!(c.record_reachable_from(RecordId(0), a2));
        assert!(!c.record_reachable_from(RecordId(5), a2));
    }

    #[test]
    fn empty_table() {
        let t = crate::table::UniversalTable::new(figure1_schema());
        let mut c = Connectivity::analyze(&t);
        assert_eq!(c.num_components(), 0);
        assert_eq!(c.largest_component_coverage(), 0.0);
        assert_eq!(c.reachable_coverage(&[]), 0.0);
    }
}
