//! Attribute-qualified string interning.
//!
//! Every distinct attribute value — e.g. `(Actor, "Hanks, Tom")` — is interned
//! once and referred to by a compact [`ValueId`] everywhere else (table,
//! graph, server postings, crawler frontier). Values are qualified by their
//! attribute, so `(Title, "Alien")` and `(Keyword, "Alien")` are distinct
//! vertices, matching Definition 2.1's distinct attribute value set `DAV`.
//!
//! The interner is built for the per-page hot path: all value bytes live in
//! one arena `String` (one `(offset, len)` span per value instead of one heap
//! allocation per value), every value's [`value_hash`] is stored so rehashing
//! on table growth never touches the strings, and the lookup table is a flat
//! open-addressing array probed with that same precomputed hash. Callers on
//! the hot path compute the hash once via [`value_hash`] and pass it to
//! [`ValueInterner::intern_prehashed`] / [`ValueInterner::get_prehashed`] (or
//! use the batch [`ValueInterner::intern_page`]) so each string is hashed
//! exactly once per sighting — the convenience [`ValueInterner::intern`] /
//! [`ValueInterner::get`] wrappers do it for you.

use std::fmt;

/// Identifier of an attribute (column) in the universal table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

/// Identifier of a distinct attribute value (a vertex of the AVG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Multiplier from the FxHash family (`0x51_7c_c1_b7_27_22_0a_95` is the
/// 64-bit constant rustc's own interners use). Not cryptographic — chosen for
/// throughput on short identifier-like strings.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// FxHash-style hash of an `(attribute, string)` pair, folding eight bytes
/// per multiply. This is the interner's canonical hash: compute it once per
/// sighting and reuse it for both [`ValueInterner::get_prehashed`] and
/// [`ValueInterner::intern_prehashed`].
#[inline]
pub fn value_hash(attr: AttrId, value: &str) -> u64 {
    let bytes = value.as_bytes();
    let mut h = fx_mix(bytes.len() as u64, u64::from(attr.0));
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact yields 8 bytes"));
        h = fx_mix(h, word);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = [0u8; 8];
        word[..rem.len()].copy_from_slice(rem);
        h = fx_mix(h, u64::from_le_bytes(word));
    }
    h
}

/// Vacant-slot sentinel in the open-addressing table. `u32::MAX` can never be
/// a live id because `intern` panics before the id space reaches it.
const EMPTY_SLOT: u32 = u32::MAX;

/// Interner mapping `(attribute, string)` pairs to dense [`ValueId`]s.
///
/// Storage is a single byte arena plus parallel per-id columns (span, attr,
/// hash); lookups probe a flat power-of-two open-addressing table with
/// precomputed hashes, so probing with a borrowed `&str` never allocates and
/// growth never rehashes a string.
#[derive(Debug, Default, Clone)]
pub struct ValueInterner {
    /// All value bytes, concatenated in insertion order.
    arena: String,
    /// `(offset, len)` into `arena`, one per [`ValueId`].
    spans: Vec<(u32, u32)>,
    /// Owning attribute, one per [`ValueId`].
    attrs: Vec<AttrId>,
    /// Precomputed [`value_hash`], one per [`ValueId`].
    hashes: Vec<u64>,
    /// Open-addressing table of id indices (power-of-two length, linear
    /// probing, [`EMPTY_SLOT`] = vacant). Empty until the first intern.
    slots: Vec<u32>,
    /// One past the highest attribute slot seen, for keyword scans.
    num_attrs: u32,
}

impl ValueInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `(attr, value)`, returning the existing id when already known.
    pub fn intern(&mut self, attr: AttrId, value: &str) -> ValueId {
        self.intern_prehashed(attr, value, value_hash(attr, value))
    }

    /// Like [`ValueInterner::intern`], but with the caller supplying
    /// `value_hash(attr, value)` so a string sighted once is hashed once —
    /// the same hash drives the lookup probe and, on a miss, the insertion.
    pub fn intern_prehashed(&mut self, attr: AttrId, value: &str, hash: u64) -> ValueId {
        if self.slots.is_empty() || (self.spans.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow_slots();
        }
        let mask = self.slots.len() - 1;
        let mut probe = (hash as usize) & mask;
        loop {
            let slot = self.slots[probe];
            if slot == EMPTY_SLOT {
                let id = ValueId(
                    u32::try_from(self.spans.len()).expect("more than u32::MAX distinct values"),
                );
                let offset = u32::try_from(self.arena.len()).expect("arena exceeds u32 offsets");
                let len = u32::try_from(value.len()).expect("value exceeds u32 length");
                self.arena.push_str(value);
                self.spans.push((offset, len));
                self.attrs.push(attr);
                self.hashes.push(hash);
                self.slots[probe] = id.0;
                self.num_attrs = self.num_attrs.max(u32::from(attr.0) + 1);
                return id;
            }
            let idx = slot as usize;
            if self.hashes[idx] == hash && self.attrs[idx] == attr && self.span_str(idx) == value {
                return ValueId(slot);
            }
            probe = (probe + 1) & mask;
        }
    }

    /// Looks up an already-interned value without inserting.
    pub fn get(&self, attr: AttrId, value: &str) -> Option<ValueId> {
        self.get_prehashed(attr, value, value_hash(attr, value))
    }

    /// Like [`ValueInterner::get`], but with the caller supplying
    /// `value_hash(attr, value)`.
    pub fn get_prehashed(&self, attr: AttrId, value: &str, hash: u64) -> Option<ValueId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut probe = (hash as usize) & mask;
        loop {
            let slot = self.slots[probe];
            if slot == EMPTY_SLOT {
                return None;
            }
            let idx = slot as usize;
            if self.hashes[idx] == hash && self.attrs[idx] == attr && self.span_str(idx) == value {
                return Some(ValueId(slot));
            }
            probe = (probe + 1) & mask;
        }
    }

    /// Batch-interns one page's `(attr, value)` fields, appending the
    /// resulting ids to `out` in field order. Each field string is hashed
    /// exactly once ([`value_hash`]), with the hash reused across the table
    /// probe and any insertion — the entry point the Ingestor stage uses so
    /// page ingestion never double-hashes or allocates for already-known
    /// values.
    pub fn intern_page<'a, I>(&mut self, fields: I, out: &mut Vec<ValueId>)
    where
        I: IntoIterator<Item = (AttrId, &'a str)>,
    {
        for (attr, value) in fields {
            out.push(self.intern_prehashed(attr, value, value_hash(attr, value)));
        }
    }

    /// Looks up a bare string across all attributes (the keyword-interface
    /// view of Section 2.2's "fading schema"): returns every value id whose
    /// string equals `value`, regardless of attribute.
    pub fn get_keyword(&self, value: &str) -> Vec<ValueId> {
        (0..self.num_attrs).filter_map(|a| self.get(AttrId(a as u16), value)).collect()
    }

    /// The string form of a value.
    pub fn value_str(&self, id: ValueId) -> &str {
        self.span_str(id.index())
    }

    /// The attribute a value belongs to.
    pub fn attr_of(&self, id: ValueId) -> AttrId {
        self.attrs[id.index()]
    }

    /// The precomputed hash a value was interned under.
    pub fn hash_of(&self, id: ValueId) -> u64 {
        self.hashes[id.index()]
    }

    /// Number of distinct attribute values interned so far (|DAV|).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates all interned ids in insertion order.
    pub fn iter_ids(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.spans.len() as u32).map(ValueId)
    }

    /// All value ids belonging to `attr` (linear scan; intended for analysis,
    /// not hot paths).
    pub fn ids_of_attr(&self, attr: AttrId) -> Vec<ValueId> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == attr)
            .map(|(i, _)| ValueId(i as u32))
            .collect()
    }

    #[inline]
    fn span_str(&self, idx: usize) -> &str {
        let (offset, len) = self.spans[idx];
        &self.arena[offset as usize..(offset + len) as usize]
    }

    /// Doubles the slot table (min 16) and re-places every id from its stored
    /// hash — growth never re-reads, let alone rehashes, the arena.
    fn grow_slots(&mut self) {
        self.rebuild_slots((self.slots.len() * 2).max(16));
    }

    /// Rebuilds the probe table at exactly `new_len` slots (a power of two)
    /// from the stored hash column.
    fn rebuild_slots(&mut self, new_len: usize) {
        self.slots.clear();
        self.slots.resize(new_len, EMPTY_SLOT);
        let mask = new_len - 1;
        for (idx, &hash) in self.hashes.iter().enumerate() {
            let mut probe = (hash as usize) & mask;
            while self.slots[probe] != EMPTY_SLOT {
                probe = (probe + 1) & mask;
            }
            self.slots[probe] = idx as u32;
        }
    }
}

/// Magic header of the packed interner image.
const SPILL_MAGIC: &[u8; 8] = b"DWCINTR1";

impl ValueInterner {
    /// Serializes the interner to a packed byte image: arena bytes plus the
    /// span-length / attribute / **precomputed hash** columns, with an
    /// FNV-1a checksum trailer. Because the hashes travel with the image,
    /// [`ValueInterner::from_packed_bytes`] rebuilds the probe table without
    /// ever rehashing a string — spilling and reloading a multi-million
    /// value interner costs one sequential pass each way.
    pub fn to_packed_bytes(&self) -> Vec<u8> {
        let n = self.spans.len();
        let mut out = Vec::with_capacity(8 + 4 + 16 + self.arena.len() + n * 14 + 8);
        out.extend_from_slice(SPILL_MAGIC);
        out.extend_from_slice(&self.num_attrs.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(self.arena.len() as u64).to_le_bytes());
        out.extend_from_slice(self.arena.as_bytes());
        for &(_, len) in &self.spans {
            out.extend_from_slice(&len.to_le_bytes());
        }
        for &attr in &self.attrs {
            out.extend_from_slice(&attr.0.to_le_bytes());
        }
        for &hash in &self.hashes {
            out.extend_from_slice(&hash.to_le_bytes());
        }
        let sum = crate::packed::fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Reloads a packed image produced by [`ValueInterner::to_packed_bytes`].
    /// Ids, strings, attributes and hashes come back identical; the probe
    /// table is re-placed from the stored hashes (no string is rehashed).
    pub fn from_packed_bytes(bytes: &[u8]) -> Result<Self, crate::packed::PackedError> {
        use crate::packed::PackedError;
        if bytes.len() < 8 + 4 + 16 + 8 {
            return Err(PackedError::Truncated);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if crate::packed::fnv1a64(payload) != sum {
            return Err(PackedError::Checksum);
        }
        if &payload[..8] != SPILL_MAGIC {
            return Err(PackedError::Magic);
        }
        let num_attrs = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
        let count = u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes")) as usize;
        let arena_len = u64::from_le_bytes(payload[20..28].try_into().expect("8 bytes")) as usize;
        let body = &payload[28..];
        let need = arena_len
            .checked_add(count.checked_mul(14).ok_or(PackedError::Layout)?)
            .ok_or(PackedError::Layout)?;
        if body.len() != need {
            return Err(PackedError::Truncated);
        }
        let (arena_bytes, cols) = body.split_at(arena_len);
        let arena = String::from_utf8(arena_bytes.to_vec()).map_err(|_| PackedError::Utf8)?;
        let (len_col, cols) = cols.split_at(count * 4);
        let (attr_col, hash_col) = cols.split_at(count * 2);
        let mut spans = Vec::with_capacity(count);
        let mut offset = 0u64;
        for c in len_col.chunks_exact(4) {
            let len = u32::from_le_bytes(c.try_into().expect("4 bytes"));
            let start = u32::try_from(offset).map_err(|_| PackedError::Layout)?;
            spans.push((start, len));
            offset += u64::from(len);
        }
        if offset != arena_len as u64 {
            return Err(PackedError::Layout);
        }
        // Span boundaries must fall on UTF-8 character boundaries.
        if spans.iter().any(|&(s, _)| !arena.is_char_boundary(s as usize)) {
            return Err(PackedError::Layout);
        }
        let attrs: Vec<AttrId> = attr_col
            .chunks_exact(2)
            .map(|c| AttrId(u16::from_le_bytes(c.try_into().expect("2 bytes"))))
            .collect();
        let hashes: Vec<u64> = hash_col
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let mut it = ValueInterner { arena, spans, attrs, hashes, slots: Vec::new(), num_attrs };
        if count > 0 {
            let mut slots_len = 16usize;
            while (count + 1) * 8 > slots_len * 7 {
                slots_len *= 2;
            }
            it.rebuild_slots(slots_len);
        }
        Ok(it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut it = ValueInterner::new();
        let a = it.intern(AttrId(0), "Hanks, Tom");
        let b = it.intern(AttrId(0), "Hanks, Tom");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn same_string_different_attr_is_distinct() {
        let mut it = ValueInterner::new();
        let a = it.intern(AttrId(0), "Alien");
        let b = it.intern(AttrId(1), "Alien");
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn roundtrip_string_and_attr() {
        let mut it = ValueInterner::new();
        let id = it.intern(AttrId(3), "IBM");
        assert_eq!(it.value_str(id), "IBM");
        assert_eq!(it.attr_of(id), AttrId(3));
    }

    #[test]
    fn get_does_not_insert() {
        let mut it = ValueInterner::new();
        assert_eq!(it.get(AttrId(0), "x"), None);
        let id = it.intern(AttrId(0), "x");
        assert_eq!(it.get(AttrId(0), "x"), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut it = ValueInterner::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|s| it.intern(AttrId(0), s)).collect();
        assert_eq!(ids, vec![ValueId(0), ValueId(1), ValueId(2)]);
        assert_eq!(it.iter_ids().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn ids_of_attr_filters() {
        let mut it = ValueInterner::new();
        it.intern(AttrId(0), "x");
        let b = it.intern(AttrId(1), "y");
        it.intern(AttrId(0), "z");
        assert_eq!(it.ids_of_attr(AttrId(1)), vec![b]);
    }

    #[test]
    fn prehashed_paths_agree_with_convenience_wrappers() {
        let mut it = ValueInterner::new();
        let h = value_hash(AttrId(2), "Blade Runner");
        let id = it.intern_prehashed(AttrId(2), "Blade Runner", h);
        assert_eq!(it.get_prehashed(AttrId(2), "Blade Runner", h), Some(id));
        assert_eq!(it.get(AttrId(2), "Blade Runner"), Some(id));
        assert_eq!(it.intern(AttrId(2), "Blade Runner"), id);
        assert_eq!(it.hash_of(id), h);
    }

    #[test]
    fn intern_page_batches_in_field_order() {
        let mut it = ValueInterner::new();
        let mut out = Vec::new();
        it.intern_page(vec![(AttrId(0), "x"), (AttrId(1), "y"), (AttrId(0), "x")], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[2], "repeat sightings reuse the id");
        assert_ne!(out[0], out[1]);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn keyword_lookup_spans_attributes() {
        let mut it = ValueInterner::new();
        let a = it.intern(AttrId(0), "Alien");
        let b = it.intern(AttrId(2), "Alien");
        it.intern(AttrId(1), "Aliens");
        assert_eq!(it.get_keyword("Alien"), vec![a, b]);
        assert!(it.get_keyword("Predator").is_empty());
    }

    #[test]
    fn survives_growth_across_many_values() {
        let mut it = ValueInterner::new();
        let ids: Vec<_> =
            (0..1000).map(|i| it.intern(AttrId((i % 5) as u16), &format!("val-{i}"))).collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(it.value_str(id), format!("val-{i}"));
            assert_eq!(it.attr_of(id), AttrId((i % 5) as u16));
            assert_eq!(it.get(AttrId((i % 5) as u16), &format!("val-{i}")), Some(id));
        }
        assert_eq!(it.len(), 1000);
    }

    #[test]
    fn packed_spill_round_trips_without_rehashing() {
        let mut it = ValueInterner::new();
        let ids: Vec<_> =
            (0..500).map(|i| it.intern(AttrId((i % 7) as u16), &format!("value-{i}-αβ"))).collect();
        let bytes = it.to_packed_bytes();
        let back = ValueInterner::from_packed_bytes(&bytes).unwrap();
        assert_eq!(back.len(), it.len());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(back.value_str(id), it.value_str(id));
            assert_eq!(back.attr_of(id), it.attr_of(id));
            assert_eq!(back.hash_of(id), it.hash_of(id), "hash column is preserved verbatim");
            assert_eq!(
                back.get(AttrId((i % 7) as u16), &format!("value-{i}-αβ")),
                Some(id),
                "probe table rebuilt from stored hashes resolves every id"
            );
        }
        // The reloaded interner keeps assigning ids exactly where the
        // original would.
        let mut a = it.clone();
        let mut b = back;
        assert_eq!(a.intern(AttrId(1), "brand new"), b.intern(AttrId(1), "brand new"));
    }

    #[test]
    fn packed_spill_rejects_corruption() {
        use crate::packed::PackedError;
        let mut it = ValueInterner::new();
        it.intern(AttrId(0), "x");
        let bytes = it.to_packed_bytes();
        assert!(matches!(
            ValueInterner::from_packed_bytes(&bytes[..5]),
            Err(PackedError::Truncated)
        ));
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert!(matches!(ValueInterner::from_packed_bytes(&flipped), Err(PackedError::Checksum)));
        let empty = ValueInterner::new().to_packed_bytes();
        let back = ValueInterner::from_packed_bytes(&empty).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn hash_distinguishes_length_from_zero_padding() {
        // The trailing partial word is zero-padded, so the length must be
        // mixed in to keep "a" and "a\0" distinct.
        assert_ne!(value_hash(AttrId(0), "a"), value_hash(AttrId(0), "a\0"));
        assert_ne!(value_hash(AttrId(0), ""), value_hash(AttrId(0), "\0"));
    }
}
