//! Attribute-qualified string interning.
//!
//! Every distinct attribute value — e.g. `(Actor, "Hanks, Tom")` — is interned
//! once and referred to by a compact [`ValueId`] everywhere else (table,
//! graph, server postings, crawler frontier). Values are qualified by their
//! attribute, so `(Title, "Alien")` and `(Keyword, "Alien")` are distinct
//! vertices, matching Definition 2.1's distinct attribute value set `DAV`.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an attribute (column) in the universal table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

/// Identifier of a distinct attribute value (a vertex of the AVG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Interner mapping `(attribute, string)` pairs to dense [`ValueId`]s.
///
/// Lookups are per-attribute maps so that probing with a borrowed `&str`
/// never allocates.
#[derive(Debug, Default, Clone)]
pub struct ValueInterner {
    per_attr: Vec<HashMap<Box<str>, ValueId>>,
    strings: Vec<Box<str>>,
    attrs: Vec<AttrId>,
}

impl ValueInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `(attr, value)`, returning the existing id when already known.
    pub fn intern(&mut self, attr: AttrId, value: &str) -> ValueId {
        let slot = attr.0 as usize;
        if slot >= self.per_attr.len() {
            self.per_attr.resize_with(slot + 1, HashMap::new);
        }
        if let Some(&id) = self.per_attr[slot].get(value) {
            return id;
        }
        let id =
            ValueId(u32::try_from(self.strings.len()).expect("more than u32::MAX distinct values"));
        self.strings.push(Box::from(value));
        self.attrs.push(attr);
        self.per_attr[slot].insert(Box::from(value), id);
        id
    }

    /// Looks up an already-interned value without inserting.
    pub fn get(&self, attr: AttrId, value: &str) -> Option<ValueId> {
        self.per_attr.get(attr.0 as usize)?.get(value).copied()
    }

    /// Looks up a bare string across all attributes (the keyword-interface
    /// view of Section 2.2's "fading schema"): returns every value id whose
    /// string equals `value`, regardless of attribute.
    pub fn get_keyword(&self, value: &str) -> Vec<ValueId> {
        self.per_attr.iter().filter_map(|m| m.get(value).copied()).collect()
    }

    /// The string form of a value.
    pub fn value_str(&self, id: ValueId) -> &str {
        &self.strings[id.index()]
    }

    /// The attribute a value belongs to.
    pub fn attr_of(&self, id: ValueId) -> AttrId {
        self.attrs[id.index()]
    }

    /// Number of distinct attribute values interned so far (|DAV|).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates all interned ids in insertion order.
    pub fn iter_ids(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.strings.len() as u32).map(ValueId)
    }

    /// All value ids belonging to `attr` (linear scan; intended for analysis,
    /// not hot paths).
    pub fn ids_of_attr(&self, attr: AttrId) -> Vec<ValueId> {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == attr)
            .map(|(i, _)| ValueId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut it = ValueInterner::new();
        let a = it.intern(AttrId(0), "Hanks, Tom");
        let b = it.intern(AttrId(0), "Hanks, Tom");
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn same_string_different_attr_is_distinct() {
        let mut it = ValueInterner::new();
        let a = it.intern(AttrId(0), "Alien");
        let b = it.intern(AttrId(1), "Alien");
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn roundtrip_string_and_attr() {
        let mut it = ValueInterner::new();
        let id = it.intern(AttrId(3), "IBM");
        assert_eq!(it.value_str(id), "IBM");
        assert_eq!(it.attr_of(id), AttrId(3));
    }

    #[test]
    fn get_does_not_insert() {
        let mut it = ValueInterner::new();
        assert_eq!(it.get(AttrId(0), "x"), None);
        let id = it.intern(AttrId(0), "x");
        assert_eq!(it.get(AttrId(0), "x"), Some(id));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut it = ValueInterner::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|s| it.intern(AttrId(0), s)).collect();
        assert_eq!(ids, vec![ValueId(0), ValueId(1), ValueId(2)]);
        assert_eq!(it.iter_ids().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn ids_of_attr_filters() {
        let mut it = ValueInterner::new();
        it.intern(AttrId(0), "x");
        let b = it.intern(AttrId(1), "y");
        it.intern(AttrId(0), "z");
        assert_eq!(it.ids_of_attr(AttrId(1)), vec![b]);
    }
}
