//! Weighted dominating sets (Definition 2.4).
//!
//! The paper shows that an optimal query-selection plan is a *Weighted
//! Minimum Dominating Set* of the attribute-value graph: a vertex set `V'` of
//! minimum total weight such that every other vertex is adjacent to some
//! member of `V'`. The problem is NP-complete; a crawler additionally only
//! ever sees a partial graph. This module provides:
//!
//! * [`greedy_weighted_dominating_set`] — the classic `ln Δ`-approximate
//!   greedy (pick the vertex maximizing newly-dominated-count / weight),
//!   which is the full-information analogue of the paper's greedy link-based
//!   crawler;
//! * [`exact_minimum_dominating_set`] — exhaustive search for tiny graphs,
//!   used as a test oracle;
//! * [`is_dominating_set`] — validity check.

use crate::graph::AvGraph;
use crate::interner::ValueId;

/// Checks whether `set` dominates the graph: every vertex is in `set` or
/// adjacent to a member of `set`.
pub fn is_dominating_set(g: &AvGraph, set: &[ValueId]) -> bool {
    let n = g.num_vertices();
    if n == 0 {
        return true;
    }
    let mut dominated = vec![false; n];
    for &v in set {
        dominated[v.index()] = true;
        for &w in g.neighbors(v) {
            dominated[w as usize] = true;
        }
    }
    dominated.iter().all(|&d| d)
}

/// Total weight of a vertex set under `weight`.
pub fn set_weight(set: &[ValueId], weight: impl Fn(ValueId) -> f64) -> f64 {
    set.iter().map(|&v| weight(v)).sum()
}

/// Greedy weighted-dominating-set approximation.
///
/// Repeatedly selects the vertex with the best ratio of newly dominated
/// vertices to weight, until all vertices are dominated. Runs in
/// `O((V + E) log V)` with a lazy-priority rebuild. Guarantees the standard
/// `H(Δ+1)` approximation factor of greedy set cover.
///
/// `weight` must be strictly positive for every vertex.
pub fn greedy_weighted_dominating_set(
    g: &AvGraph,
    weight: impl Fn(ValueId) -> f64,
) -> Vec<ValueId> {
    let n = g.num_vertices();
    let mut dominated = vec![false; n];
    let mut remaining = n;
    let mut chosen = Vec::new();
    // Lazy max-heap of (score, gain_at_push, vertex): stale entries are
    // re-scored on pop.
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry {
        score: f64,
        vertex: u32,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.score.partial_cmp(&other.score).unwrap_or(Ordering::Equal)
        }
    }

    let gain = |v: u32, dominated: &[bool], g: &AvGraph| -> usize {
        let mut k = usize::from(!dominated[v as usize]);
        for &w in g.neighbors(ValueId(v)) {
            if !dominated[w as usize] {
                k += 1;
            }
        }
        k
    };

    let mut heap = BinaryHeap::with_capacity(n);
    for v in 0..n as u32 {
        let w = weight(ValueId(v));
        assert!(w > 0.0, "vertex weights must be positive");
        let k = 1 + g.degree(ValueId(v));
        heap.push(Entry { score: k as f64 / w, vertex: v });
    }

    while remaining > 0 {
        let top = heap.pop().expect("undominated vertices remain, so the heap cannot be empty");
        let current_gain = gain(top.vertex, &dominated, g);
        if current_gain == 0 {
            continue;
        }
        let w = weight(ValueId(top.vertex));
        let fresh = current_gain as f64 / w;
        if let Some(next) = heap.peek() {
            if fresh < next.score {
                heap.push(Entry { score: fresh, vertex: top.vertex });
                continue;
            }
        }
        // Select it.
        chosen.push(ValueId(top.vertex));
        if !dominated[top.vertex as usize] {
            dominated[top.vertex as usize] = true;
            remaining -= 1;
        }
        for &nb in g.neighbors(ValueId(top.vertex)) {
            if !dominated[nb as usize] {
                dominated[nb as usize] = true;
                remaining -= 1;
            }
        }
    }
    chosen
}

/// Exact weighted minimum dominating set by exhaustive subset search.
///
/// Only usable for graphs with at most 24 vertices (it enumerates `2^n`
/// subsets); intended purely as a test oracle for the greedy algorithm.
///
/// Returns `None` when the graph is too large.
pub fn exact_minimum_dominating_set(
    g: &AvGraph,
    weight: impl Fn(ValueId) -> f64,
) -> Option<Vec<ValueId>> {
    let n = g.num_vertices();
    if n > 24 {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }
    // Precompute closed-neighborhood bitmasks.
    let masks: Vec<u32> = (0..n as u32)
        .map(|v| {
            let mut m = 1u32 << v;
            for &w in g.neighbors(ValueId(v)) {
                m |= 1 << w;
            }
            m
        })
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut best: Option<(f64, u32)> = None;
    for subset in 0..=full {
        let mut covered = 0u32;
        let mut wsum = 0.0;
        let mut bits = subset;
        while bits != 0 {
            let v = bits.trailing_zeros();
            covered |= masks[v as usize];
            wsum += weight(ValueId(v));
            bits &= bits - 1;
        }
        if covered == full {
            match best {
                Some((bw, _)) if bw <= wsum => {}
                _ => best = Some((wsum, subset)),
            }
        }
    }
    best.map(|(_, subset)| (0..n as u32).filter(|v| subset & (1 << v) != 0).map(ValueId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_table;
    use crate::graph::AvGraph;

    fn unit(_: ValueId) -> f64 {
        1.0
    }

    #[test]
    fn greedy_result_is_dominating() {
        let g = AvGraph::from_table(&figure1_table());
        let ds = greedy_weighted_dominating_set(&g, unit);
        assert!(is_dominating_set(&g, &ds));
    }

    #[test]
    fn figure1_minimum_is_two() {
        let g = AvGraph::from_table(&figure1_table());
        let exact = exact_minimum_dominating_set(&g, unit).unwrap();
        // {c1, c2} dominates the whole Figure 1 graph.
        assert_eq!(exact.len(), 2);
        assert!(is_dominating_set(&g, &exact));
        let greedy = greedy_weighted_dominating_set(&g, unit);
        assert!(greedy.len() <= 3, "greedy within H(Δ+1) of 2 on this tiny graph");
    }

    #[test]
    fn weights_steer_the_greedy_choice() {
        let g = AvGraph::from_table(&figure1_table());
        // Make the true hubs (c1, c2 = ids 2 and 5) enormously expensive.
        let expensive_hubs =
            |v: ValueId| if v == ValueId(2) || v == ValueId(5) { 1000.0 } else { 1.0 };
        let ds = greedy_weighted_dominating_set(&g, expensive_hubs);
        assert!(is_dominating_set(&g, &ds));
        assert!(
            !ds.contains(&ValueId(2)) && !ds.contains(&ValueId(5)),
            "greedy must avoid the costly hubs: {ds:?}"
        );
    }

    #[test]
    fn empty_graph_has_empty_dominating_set() {
        let t = crate::table::UniversalTable::new(crate::fixtures::figure1_schema());
        let g = AvGraph::from_table(&t);
        assert!(greedy_weighted_dominating_set(&g, unit).is_empty());
        assert_eq!(exact_minimum_dominating_set(&g, unit), Some(vec![]));
        assert!(is_dominating_set(&g, &[]));
    }

    #[test]
    fn isolated_vertices_must_be_chosen() {
        use crate::interner::AttrId;
        use crate::schema::{AttrSpec, Schema};
        let mut t = crate::table::UniversalTable::new(Schema::new(vec![AttrSpec::queriable("A")]));
        t.push_record_strs([(AttrId(0), "lonely1")]);
        t.push_record_strs([(AttrId(0), "lonely2")]);
        let g = AvGraph::from_table(&t);
        let ds = greedy_weighted_dominating_set(&g, unit);
        assert_eq!(ds.len(), 2, "isolated vertices dominate only themselves");
    }

    #[test]
    fn is_dominating_set_rejects_incomplete() {
        let g = AvGraph::from_table(&figure1_table());
        // a1 alone (id 0) only dominates itself, b1, c1.
        assert!(!is_dominating_set(&g, &[ValueId(0)]));
    }

    #[test]
    fn exact_rejects_large_graphs() {
        use crate::interner::AttrId;
        use crate::schema::{AttrSpec, Schema};
        let mut t = crate::table::UniversalTable::new(Schema::new(vec![
            AttrSpec::queriable("A"),
            AttrSpec::queriable("B"),
        ]));
        for i in 0..30 {
            t.push_record_strs([(AttrId(0), &format!("x{i}")), (AttrId(1), &format!("y{i}"))]);
        }
        let g = AvGraph::from_table(&t);
        assert!(exact_minimum_dominating_set(&g, unit).is_none());
    }
}
