//! Degree distributions of attribute-value graphs (paper Figure 2).
//!
//! Section 3.2 of the paper plots `log(frequency)` against `log(degree)` for
//! the AVGs of DBLP, IMDB and the ACM Digital Library and observes a
//! distribution "very close to power-law": a few hub values are extremely
//! popular while "the massive many" are sparsely connected. This module
//! computes the histogram, the log–log series, and a least-squares power-law
//! exponent fit.

use crate::graph::AvGraph;
use dwc_stats::regression::{log_log_fit, LineFit};

/// A degree histogram: `counts[d]` = number of vertices with degree `d`.
#[derive(Debug, Clone)]
pub struct DegreeDistribution {
    counts: Vec<u32>,
    num_vertices: usize,
}

impl DegreeDistribution {
    /// Computes the degree histogram of a graph.
    pub fn of_graph(g: &AvGraph) -> Self {
        let mut counts: Vec<u32> = Vec::new();
        for v in g.vertices() {
            let d = g.degree(v);
            if d >= counts.len() {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
        }
        DegreeDistribution { counts, num_vertices: g.num_vertices() }
    }

    /// Number of vertices with degree exactly `d`.
    pub fn count(&self, d: usize) -> u32 {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// Maximum degree observed.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        let total: u64 = self.counts.iter().enumerate().map(|(d, &c)| d as u64 * c as u64).sum();
        total as f64 / self.num_vertices as f64
    }

    /// `(degree, frequency)` points with `degree ≥ 1` and `frequency ≥ 1` —
    /// the Figure 2 scatter before taking logs.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| (d as f64, c as f64))
            .collect()
    }

    /// Least-squares power-law fit of the positive-degree points:
    /// `frequency ∝ degree^{slope}` (slope is negative for a power law).
    ///
    /// Returns `None` with fewer than two distinct positive degrees.
    pub fn power_law_fit(&self) -> Option<LineFit> {
        let pts = self.points();
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        log_log_fit(&xs, &ys)
    }

    /// Log-binned `(degree, frequency)` series for plotting: degrees are
    /// grouped into `bins_per_decade` logarithmic bins and frequencies summed,
    /// which smooths the heavy tail exactly as Figure 2's axes imply.
    pub fn log_binned(&self, bins_per_decade: usize) -> Vec<(f64, f64)> {
        assert!(bins_per_decade > 0);
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut bin_lo = 1.0f64;
        let factor = 10f64.powf(1.0 / bins_per_decade as f64);
        while bin_lo <= self.max_degree() as f64 {
            let bin_hi = bin_lo * factor;
            let mut freq = 0u64;
            let lo = bin_lo.ceil() as usize;
            let hi = (bin_hi.ceil() as usize).min(self.counts.len());
            for d in lo..hi {
                freq += self.counts[d] as u64;
            }
            if freq > 0 {
                // Representative degree = geometric mean of the bin bounds.
                out.push(((bin_lo * bin_hi).sqrt(), freq as f64));
            }
            bin_lo = bin_hi;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_table;
    use crate::graph::AvGraph;
    use crate::interner::AttrId;
    use crate::schema::{AttrSpec, Schema};
    use crate::table::UniversalTable;

    #[test]
    fn figure1_histogram() {
        let g = AvGraph::from_table(&figure1_table());
        let dd = DegreeDistribution::of_graph(&g);
        // Degrees: a1:2 b1:2 c1:4 a2:4 b2:3 c2:5 b3:2 a3:2 b4:2.
        assert_eq!(dd.count(2), 5);
        assert_eq!(dd.count(3), 1);
        assert_eq!(dd.count(4), 2);
        assert_eq!(dd.count(5), 1);
        assert_eq!(dd.count(1), 0);
        assert_eq!(dd.max_degree(), 5);
        assert!((dd.mean_degree() - 26.0 / 9.0).abs() < 1e-12);
    }

    /// A synthetic star-heavy table should produce a steep negative slope.
    #[test]
    fn power_law_fit_is_negative_on_hubby_graph() {
        let schema = Schema::new(vec![AttrSpec::queriable("H"), AttrSpec::queriable("L")]);
        let mut t = UniversalTable::new(schema);
        // One hub value co-occurring with 200 leaves, pairwise-disjoint leaves.
        for i in 0..200 {
            t.push_record_strs([(AttrId(0), "hub"), (AttrId(1), &format!("leaf{i}"))]);
        }
        // Plus a sprinkle of medium-degree values.
        for i in 0..20 {
            for j in 0..5 {
                t.push_record_strs([
                    (AttrId(0), &format!("mid{i}")),
                    (AttrId(1), &format!("mleaf{i}_{j}")),
                ]);
            }
        }
        let g = AvGraph::from_table(&t);
        let dd = DegreeDistribution::of_graph(&g);
        let fit = dd.power_law_fit().expect("enough points");
        assert!(fit.slope < 0.0, "hub-dominated graph must have decreasing degree frequency");
    }

    #[test]
    fn points_skip_zero_frequency_and_degree_zero() {
        let g = AvGraph::from_table(&figure1_table());
        let dd = DegreeDistribution::of_graph(&g);
        let pts = dd.points();
        assert!(pts.iter().all(|&(d, f)| d >= 1.0 && f >= 1.0));
        assert_eq!(pts.len(), 4); // degrees 2, 3, 4, 5
    }

    #[test]
    fn log_binning_conserves_mass() {
        let g = AvGraph::from_table(&figure1_table());
        let dd = DegreeDistribution::of_graph(&g);
        let binned = dd.log_binned(4);
        let total: f64 = binned.iter().map(|&(_, f)| f).sum();
        assert_eq!(total, 9.0, "all 9 vertices have degree ≥ 1 in Figure 1");
    }

    #[test]
    fn empty_graph_degenerates_gracefully() {
        let t = UniversalTable::new(Schema::new(vec![AttrSpec::queriable("A")]));
        let g = AvGraph::from_table(&t);
        let dd = DegreeDistribution::of_graph(&g);
        assert_eq!(dd.max_degree(), 0);
        assert_eq!(dd.mean_degree(), 0.0);
        assert!(dd.power_law_fit().is_none());
    }
}
