//! BENCH-8: scheduler stress under multi-tenancy — fairness and overhead.
//!
//! Ten thousand crawl jobs (each its own tiny figure-1 server, a tenth of
//! them running a seeded transient-fault plan) are spread round-robin over
//! eight tenants whose weights span a 10:1 skew, under a budget tight
//! enough that every tenant stays hungry. The gates:
//!
//! * **Fairness** — under `AllocationStrategy::WeightedFair`, each tenant's
//!   weighted progress (`ledger rounds / weight`) must agree across the
//!   skew: `max / min ≤` [`FAIRNESS_RATIO_MAX`]. Deficit round-robin with
//!   largest-remainder entitlements should hold this near 1.0.
//! * **Throughput** — the tenancy-aware run must not tax the scheduler:
//!   wall-clock throughput must stay ≥ [`REQUIRED_THROUGHPUT`]× the
//!   tenant-blind `Even` baseline on the identical workload.
//!
//! Setup first asserts the ledgers conserve the billed total and replay
//! bit-for-bit from the event stream; the measured numbers (per-tenant
//! ledgers included) land in `BENCH_8.json` at the repo root so a
//! regression fails `cargo bench` (and CI's scheduler-stress gate) loudly.
//!
//! Pool width follows `DWC_WORKERS` (default 8) so CI can pin the same
//! matrix the fleet acceptance suite sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::fault::{FaultPlan, FaultPlanSource};
use dwc_core::fleet::{run_fleet, AllocationStrategy, FleetConfig, FleetJob};
use dwc_core::policy::PolicyKind;
use dwc_core::{replay_usage, CrawlConfig, FaultKind, Tenant, TenantId, UsageLedger};
use dwc_server::{InterfaceSpec, WebDbServer};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// The fairness gate: max/min weighted tenant progress across the skew.
const FAIRNESS_RATIO_MAX: f64 = 1.25;

/// The throughput gate: tenanted throughput relative to the tenant-blind
/// `Even` baseline on the identical workload.
const REQUIRED_THROUGHPUT: f64 = 0.9;

/// The 10:1 weight skew, one entry per tenant.
const WEIGHTS: [u32; 8] = [10, 8, 6, 5, 4, 3, 2, 1];

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn job_count() -> usize {
    if quick_mode() {
        800
    } else {
        10_000
    }
}

fn workers() -> usize {
    std::env::var("DWC_WORKERS").ok().and_then(|s| s.parse().ok()).unwrap_or(8)
}

fn registry() -> Vec<Tenant> {
    WEIGHTS.iter().enumerate().map(|(i, &w)| Tenant::new(i as u32).with_weight(w)).collect()
}

/// The stress workload: independent figure-1 jobs (one round per query),
/// seeds rotating, every tenth job carrying a seeded transient-fault plan
/// so retries and backoff billing are in the measured path. `tenanted`
/// selects round-robin tenant tags or a tenant-blind fleet.
fn jobs(n: usize, tenanted: bool) -> Vec<FleetJob<FaultPlanSource<Arc<WebDbServer>>>> {
    let seeds = ["a1", "a2", "a3"];
    (0..n)
        .map(|i| {
            let t = dwc_model::fixtures::figure1_table();
            let spec = InterfaceSpec::permissive(t.schema(), 10);
            let plan = if i % 10 == 0 {
                FaultPlan::seeded(i as u64, 40, 0.05, &[FaultKind::Transient])
            } else {
                FaultPlan::new()
            };
            FleetJob {
                source: FaultPlanSource::new(Arc::new(WebDbServer::new(t, spec)), plan),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seeds[i % seeds.len()].into())],
                config: CrawlConfig::builder()
                    .known_target_size(5)
                    .max_retries(8)
                    .build()
                    .expect("valid crawl config"),
                resume: None,
                tenant: tenanted.then(|| TenantId((i % WEIGHTS.len()) as u32)),
            }
        })
        .collect()
}

/// A budget tight enough that no frontier exhausts (figure-1 jobs need ~13
/// rounds; the heaviest tenant's jobs see ~8 here), so every tenant stays
/// contended and fairness is measured under pressure.
fn fleet_config(n: usize, allocation: AllocationStrategy, tenanted: bool) -> FleetConfig {
    FleetConfig::builder()
        .total_rounds(n as u64 * 4)
        .slice(n as u64)
        .allocation(allocation)
        .workers(workers())
        .tenants(if tenanted { registry() } else { Vec::new() })
        .build()
        .expect("valid fleet config")
}

/// Weighted progress per tenant: ledger rounds normalized by weight.
fn weighted_progress(usage: &[(TenantId, UsageLedger)]) -> Vec<f64> {
    usage
        .iter()
        .map(|&(id, ledger)| ledger.rounds as f64 / f64::from(WEIGHTS[id.0 as usize]))
        .collect()
}

fn bench_sched_stress(c: &mut Criterion) {
    let n = job_count();
    let w = workers();

    // Correctness first: ledgers must conserve the billed total and replay
    // bit-for-bit before any fairness or timing number means anything.
    let report = run_fleet(jobs(n, true), fleet_config(n, AllocationStrategy::WeightedFair, true));
    assert_eq!(report.usage.len(), WEIGHTS.len(), "every tenant must appear in the ledger");
    let ledger_rounds: u64 = report.usage.iter().map(|(_, l)| l.rounds).sum();
    assert_eq!(ledger_rounds, report.total_rounds, "ledgers must conserve the billed total");
    let replayed: Vec<(TenantId, UsageLedger)> = replay_usage(&report.events)
        .into_iter()
        .map(|(id, ledger)| (TenantId(id), ledger))
        .collect();
    assert_eq!(replayed, report.usage, "usage must replay bit-for-bit from the event stream");

    // The fairness gate.
    let progress = weighted_progress(&report.usage);
    let max = progress.iter().cloned().fold(f64::MIN, f64::max);
    let min = progress.iter().cloned().fold(f64::MAX, f64::min);
    let fairness_ratio = max / min.max(1e-12);
    assert!(
        fairness_ratio <= FAIRNESS_RATIO_MAX,
        "weighted tenant progress diverged: max/min {fairness_ratio:.3} > \
         {FAIRNESS_RATIO_MAX} (per-tenant weighted rounds: {progress:?})"
    );

    // The throughput gate: tenancy-aware vs tenant-blind on the identical
    // workload.
    let passes = if quick_mode() { 2 } else { 3 };
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_fleet(jobs(n, false), fleet_config(n, AllocationStrategy::Even, false)));
    }
    let blind_elapsed = start.elapsed();
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_fleet(
            jobs(n, true),
            fleet_config(n, AllocationStrategy::WeightedFair, true),
        ));
    }
    let tenanted_elapsed = start.elapsed();
    let throughput_ratio = blind_elapsed.as_secs_f64() / tenanted_elapsed.as_secs_f64().max(1e-12);

    let ledgers: Vec<String> = report
        .usage
        .iter()
        .map(|&(id, l)| {
            format!(
                "    {{\"tenant\": {}, \"weight\": {}, \"rounds\": {}, \"pages\": {}, \
                 \"preempted\": {}}}",
                id.0, WEIGHTS[id.0 as usize], l.rounds, l.pages, l.preempted
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sched_stress\",\n  \"mode\": \"{}\",\n  \"jobs\": {},\n  \
         \"workers\": {},\n  \"tenants\": {},\n  \"timed_passes\": {},\n  \
         \"fairness_ratio\": {:.4},\n  \"fairness_ratio_max\": {:.2},\n  \
         \"tenant_blind_ns_per_pass\": {:.0},\n  \"tenanted_ns_per_pass\": {:.0},\n  \
         \"throughput_ratio\": {:.3},\n  \"required_throughput\": {:.2},\n  \
         \"total_rounds\": {},\n  \"ledgers\": [\n{}\n  ]\n}}\n",
        if quick_mode() { "quick" } else { "full" },
        n,
        w,
        WEIGHTS.len(),
        passes,
        fairness_ratio,
        FAIRNESS_RATIO_MAX,
        blind_elapsed.as_nanos() as f64 / passes as f64,
        tenanted_elapsed.as_nanos() as f64 / passes as f64,
        throughput_ratio,
        REQUIRED_THROUGHPUT,
        report.total_rounds,
        ledgers.join(",\n"),
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    std::fs::write(&out, &json).expect("write BENCH_8.json");
    println!(
        "sched_stress fairness {fairness_ratio:.3} (gate {FAIRNESS_RATIO_MAX}), throughput \
         {throughput_ratio:.2}x blind (gate {REQUIRED_THROUGHPUT}x) -> {}",
        out.display()
    );
    assert!(
        throughput_ratio >= REQUIRED_THROUGHPUT,
        "tenancy-aware scheduling must stay within {REQUIRED_THROUGHPUT}x of the tenant-blind \
         baseline at {n} jobs, measured {throughput_ratio:.3}x ({blind_elapsed:?} blind vs \
         {tenanted_elapsed:?} tenanted)"
    );

    // Criterion numbers for the record (the gates above already enforced),
    // at a smaller job count so the full suite stays fast.
    let small = n / 10;
    let mut group = c.benchmark_group("sched_stress");
    group.sample_size(10);
    group.bench_function("tenant_blind_even", |b| {
        b.iter(|| {
            black_box(run_fleet(
                jobs(small, false),
                fleet_config(small, AllocationStrategy::Even, false),
            ))
        })
    });
    group.bench_function("weighted_fair_8_tenants", |b| {
        b.iter(|| {
            black_box(run_fleet(
                jobs(small, true),
                fleet_config(small, AllocationStrategy::WeightedFair, true),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sched_stress);
criterion_main!(benches);
