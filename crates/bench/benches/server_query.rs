//! Microbenchmarks of the simulated web-database server: inverted-index
//! construction, page serving (the cost-model hot path), and the XML wire
//! round trip the Result Extractor pays in `ProberMode::Wire`.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::extract::parse_page;
use dwc_datagen::presets::Preset;
use dwc_server::wire::page_to_xml;
use dwc_server::{InterfaceSpec, InvertedIndex, Query, WebDbServer};
use std::hint::black_box;

fn bench_index_build(c: &mut Criterion) {
    let table = Preset::Acm.table(0.02, 1);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(20);
    group.bench_function("acm", |b| b.iter(|| InvertedIndex::build(black_box(&table))));
    group.finish();
}

fn popular_query(server: &WebDbServer) -> Query {
    // The most frequent conference value is a reliable hub.
    let table = server.table();
    let attr = table.schema().attr_by_name("Conference").unwrap();
    let (best, _) = table
        .interner()
        .ids_of_attr(attr)
        .into_iter()
        .map(|v| (v, table.count_matches(v)))
        .max_by_key(|&(_, c)| c)
        .unwrap();
    Query::Value(best)
}

fn bench_query_page(c: &mut Criterion) {
    let table = Preset::Acm.table(0.02, 1);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table, spec);
    let q = popular_query(&server);
    c.bench_function("query_page_hub", |b| {
        b.iter(|| black_box(server.query_page(black_box(&q), 0).unwrap()))
    });
    let by_string = Query::ByString { attr: "Conference".into(), value: "Conference_0".into() };
    c.bench_function("query_page_by_string", |b| {
        b.iter(|| black_box(server.query_page(black_box(&by_string), 0).unwrap()))
    });
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let table = Preset::Acm.table(0.02, 1);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table, spec);
    let q = popular_query(&server);
    let page = server.query_page(&q, 0).unwrap();
    c.bench_function("wire_serialize", |b| {
        b.iter(|| black_box(page_to_xml(black_box(&page), server.table())))
    });
    let xml = page_to_xml(&page, server.table());
    c.bench_function("wire_parse", |b| b.iter(|| black_box(parse_page(black_box(&xml)).unwrap())));
}

criterion_group!(benches, bench_index_build, bench_query_page, bench_wire_roundtrip);
criterion_main!(benches);
