//! Benchmark of the shared-source fleet path: two crawl jobs targeting the
//! same `Arc<WebDbServer>` (with and without transient-fault injection), so
//! the cost of the atomic round accounting and the retry/backoff loop shows
//! up directly.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::fleet::{run_fleet, FleetConfig, FleetJob};
use dwc_core::policy::PolicyKind;
use dwc_core::CrawlConfig;
use dwc_datagen::presets::Preset;
use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};
use std::hint::black_box;
use std::sync::Arc;

fn shared_jobs(faults: Option<FaultPolicy>) -> (Arc<WebDbServer>, Vec<FleetJob<Arc<WebDbServer>>>) {
    let table = Preset::Imdb.table(0.005, 5);
    let n = table.num_records();
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let mut server = WebDbServer::new(table, spec);
    if let Some(f) = faults {
        server = server.with_faults(f);
    }
    let shared = Arc::new(server);
    let jobs = (0..2)
        .map(|i| FleetJob {
            source: Arc::clone(&shared),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("Language".into(), format!("Language_{i}"))],
            config: CrawlConfig::builder()
                .known_target_size(n)
                .max_retries(32)
                .build()
                .expect("valid crawl config"),
            resume: None,
            tenant: None,
        })
        .collect();
    (shared, jobs)
}

fn fleet_config() -> FleetConfig {
    FleetConfig::builder().total_rounds(2_000).slice(50).build().expect("valid fleet config")
}

fn bench_fleet_shared(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_shared");
    group.sample_size(10);
    group.bench_function("two_jobs_one_source", |b| {
        b.iter(|| {
            let (_shared, jobs) = shared_jobs(None);
            black_box(run_fleet(jobs, fleet_config()))
        })
    });
    group.bench_function("two_jobs_one_faulty_source", |b| {
        b.iter(|| {
            let (shared, jobs) = shared_jobs(Some(FaultPolicy::every(7)));
            let report = black_box(run_fleet(jobs, fleet_config()));
            let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
            assert_eq!(summed, shared.rounds_used(), "shared billing must stay exact");
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_shared);
criterion_main!(benches);
