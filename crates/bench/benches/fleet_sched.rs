//! BENCH-5: the work-stealing fleet scheduler against the thread-per-job
//! engine it replaced, at fleet scale.
//!
//! One thousand independent crawl jobs (each its own tiny figure-1 server)
//! run once through `run_fleet_thread_per_job` — 1,000 OS threads, one
//! grant channel per job — and once through the pooled `run_fleet` on an
//! 8-worker pool — one injector, one result channel, 8 threads. Both
//! engines split the budget through the same allocator, so setup first
//! asserts their `FleetReport`s are identical job for job; the timing gate
//! then asserts the pool is at least [`REQUIRED_SPEEDUP`]× faster and
//! writes the measured numbers to `BENCH_5.json` at the repo root, so a
//! regression fails `cargo bench` (and CI's bench gate) loudly.
//!
//! The win is pure scheduling overhead: the jobs are identical either way,
//! but the baseline pays ~1,000 thread spawns/joins per run plus a context
//! switch per grant, while the pool pays 8 spawns and drains slices from
//! local deques.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::fleet::{
    run_fleet, run_fleet_thread_per_job, AllocationStrategy, FleetConfig, FleetJob,
};
use dwc_core::policy::PolicyKind;
use dwc_core::CrawlConfig;
use dwc_server::{InterfaceSpec, WebDbServer};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// The gate: the pooled scheduler must beat thread-per-job by at least this
/// factor on the identical 1k-job workload.
const REQUIRED_SPEEDUP: f64 = 2.0;

/// Pool width for the pooled side (the baseline ignores it).
const WORKERS: usize = 8;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn job_count() -> usize {
    if quick_mode() {
        250
    } else {
        1_000
    }
}

/// One self-contained job: a private figure-1 server (5 records, every
/// query costs exactly one round), crawled to exhaustion. Seeds rotate so
/// the jobs are not byte-identical crawls.
fn jobs(n: usize) -> Vec<FleetJob<WebDbServer>> {
    let seeds = ["a1", "a2", "a3"];
    (0..n)
        .map(|i| {
            let t = dwc_model::fixtures::figure1_table();
            let spec = InterfaceSpec::permissive(t.schema(), 10);
            FleetJob {
                source: WebDbServer::new(t, spec),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seeds[i % seeds.len()].into())],
                config: CrawlConfig::builder()
                    .known_target_size(5)
                    .build()
                    .expect("valid crawl config"),
                resume: None,
                tenant: None,
            }
        })
        .collect()
}

fn fleet_config(n: usize, workers: usize) -> FleetConfig {
    FleetConfig::builder()
        // Roomy enough that every job exhausts its frontier (~13 rounds).
        .total_rounds(n as u64 * 40)
        .slice(n as u64 * 8)
        .allocation(AllocationStrategy::Even)
        .workers(workers)
        .build()
        .expect("valid fleet config")
}

fn bench_fleet_sched(c: &mut Criterion) {
    let n = job_count();

    // Correctness first: same allocator, same jobs — the reports must be
    // identical job for job before the timing means anything.
    let pooled = run_fleet(jobs(n), fleet_config(n, WORKERS));
    let baseline = run_fleet_thread_per_job(jobs(n), fleet_config(n, WORKERS));
    assert_eq!(
        pooled.sources, baseline.sources,
        "pooled and thread-per-job engines must produce identical reports"
    );
    assert!(
        pooled.sources.iter().all(|r| r.records == 5),
        "every job must crawl its source to exhaustion"
    );
    let sched = pooled.scheduler.clone();
    assert_eq!(sched.workers as usize, WORKERS);
    assert_eq!(sched.slices_completed, sched.slices_scheduled);

    // The timing gate.
    let passes = if quick_mode() { 2 } else { 5 };
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_fleet_thread_per_job(jobs(n), fleet_config(n, WORKERS)));
    }
    let baseline_elapsed = start.elapsed();
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_fleet(jobs(n), fleet_config(n, WORKERS)));
    }
    let pooled_elapsed = start.elapsed();
    let speedup = baseline_elapsed.as_secs_f64() / pooled_elapsed.as_secs_f64().max(1e-12);

    let json = format!(
        "{{\n  \"bench\": \"fleet_sched\",\n  \"mode\": \"{}\",\n  \"jobs\": {},\n  \
         \"workers\": {},\n  \"timed_passes\": {},\n  \"thread_per_job_ns_per_pass\": {:.0},\n  \
         \"pooled_ns_per_pass\": {:.0},\n  \"speedup\": {:.2},\n  \
         \"required_speedup\": {:.1},\n  \"slices_completed\": {},\n  \"steals\": {},\n  \
         \"rounds_executed\": {}\n}}\n",
        if quick_mode() { "quick" } else { "full" },
        n,
        WORKERS,
        passes,
        baseline_elapsed.as_nanos() as f64 / passes as f64,
        pooled_elapsed.as_nanos() as f64 / passes as f64,
        speedup,
        REQUIRED_SPEEDUP,
        sched.slices_completed,
        sched.steals,
        sched.rounds_executed,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_5.json");
    std::fs::write(&out, &json).expect("write BENCH_5.json");
    println!(
        "fleet_sched speedup {speedup:.2}x (gate {REQUIRED_SPEEDUP:.1}x) -> {}",
        out.display()
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "pooled fleet must be at least {REQUIRED_SPEEDUP}x faster than thread-per-job at {n} \
         jobs, measured {speedup:.2}x ({baseline_elapsed:?} vs {pooled_elapsed:?})"
    );

    // Criterion numbers for the record (the gate above already enforced),
    // at a smaller job count so the full suite stays fast.
    let small = n / 10;
    let mut group = c.benchmark_group("fleet_sched");
    group.sample_size(10);
    group.bench_function("thread_per_job", |b| {
        b.iter(|| black_box(run_fleet_thread_per_job(jobs(small), fleet_config(small, WORKERS))))
    });
    group.bench_function("pooled_8_workers", |b| {
        b.iter(|| black_box(run_fleet(jobs(small), fleet_config(small, WORKERS))))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_sched);
criterion_main!(benches);
