//! BENCH-7: hedging under stall injection — tail latency vs round cost.
//!
//! One `SourceService` (8 workers, 200us modeled latency) fronts a
//! DBLP-shaped server behind a seeded `ChaosPlan` that stalls ~2.5% of
//! wire frames for 6ms — a long, fat tail on an otherwise sub-millisecond
//! round-trip. Two fleets drive the identical request stream through the
//! identical plan:
//!
//! * **unhedged**: a plain `ClientPool` — every stalled frame is paid for
//!   in full, so the client-side p99 sits at the stall duration;
//! * **hedged**: `ClientPool::with_hedging(1.2ms)` — a duplicate attempt
//!   races any request still unanswered past the threshold, and the dedup
//!   window bills the loser as a retransmission instead of re-executing it.
//!
//! Latency is measured where it matters: each `respond()` call is timed in
//! the client thread (the `ServiceReport` percentiles only see per-job
//! service time, not the stall the caller ate). Two gates pin the PR's
//! claim:
//!
//! * **tail**: hedged p99 must be at least 2x better than unhedged p99;
//! * **cost**: hedged billed rounds must stay within 1.15x of unhedged —
//!   hedging buys its tail with a bounded round premium, not a blowup.
//!
//! Measured numbers land in `BENCH_7.json` at the repo root so CI's bench
//! gate can archive them; a violated gate fails `cargo bench` loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::serve::{LatencyModel, ServeConfig, ServiceReport, SourceService};
use dwc_core::{
    ChaosKind, ChaosPlan, ChaosState, CrawlError, DataSource, ProberMode, SourceRequest,
};
use dwc_datagen::presets::Preset;
use dwc_server::{Query, WebDbServer};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Closed-loop client threads per fleet.
const CLIENTS: usize = 4;
/// Fraction of wire frames the plan stalls. Low enough that a request and
/// its hedge almost never stall together (the one tail hedging can't cut),
/// high enough that the stall dominates the unhedged p99.
const STALL_RATE: f64 = 0.025;
/// How long a stalled frame sleeps — the unhedged tail.
const STALL: Duration = Duration::from_millis(6);
/// Hedge threshold: well above a clean round-trip (including queue wait
/// under hedge load), well below a stall.
const HEDGE_AFTER: Duration = Duration::from_micros(1200);
/// Seed shared by both passes so they face the same frame schedule.
const CHAOS_SEED: u64 = 11;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn requests_per_client() -> usize {
    if quick_mode() {
        150
    } else {
        400
    }
}

fn server() -> Arc<WebDbServer> {
    let table = Preset::Dblp.table(0.01, 9);
    let spec = dwc_server::InterfaceSpec::permissive(table.schema(), 10);
    Arc::new(WebDbServer::new(table, spec))
}

/// The request workload: attribute values matching a handful of records
/// each, harvested from the table itself so every request is a live query.
fn workload(server: &WebDbServer) -> Vec<Query> {
    let table = server.table();
    table
        .interner()
        .iter_ids()
        .filter(|&v| (3..=30).contains(&table.count_matches(v)))
        .map(|v| Query::ByString {
            attr: table.schema().attr(table.interner().attr_of(v)).name.clone(),
            value: table.interner().value_str(v).to_owned(),
        })
        .take(32)
        .collect()
}

fn serve_config() -> ServeConfig {
    ServeConfig::builder()
        .queue_depth(64)
        // Stalled jobs camp on a worker for the full stall; size the pool
        // so a handful of concurrent stalls never starves clean requests.
        .workers(8)
        .latency(LatencyModel::Fixed(Duration::from_micros(200)))
        .seed(7)
        .build()
        .expect("valid serve config")
}

/// What one fleet pass measures.
struct Pass {
    /// Client-observed per-request wall times, microseconds, unsorted.
    samples: Vec<u64>,
    /// Total billed rounds (executed + shed + cancelled + retransmitted).
    rounds: u64,
    report: ServiceReport,
    stalls_injected: u64,
    elapsed: Duration,
}

/// Drives `CLIENTS` closed-loop clients through one pool — hedged or not —
/// behind a fresh `ChaosState` seeded identically for every pass, timing
/// each `respond()` at the call site.
fn drive(hedge: Option<Duration>, requests: usize) -> Pass {
    // Fresh inner server per pass: its round counter is cumulative, and the
    // billed-rounds gate compares passes, not lifetimes.
    let source = server();
    let queries = workload(&source);
    let service = SourceService::start(source, serve_config());
    // Horizon covers every frame the pass can send: two per attempt, plus
    // headroom for hedges and retransmissions.
    let horizon = (CLIENTS * requests * 4) as u64;
    let plan =
        ChaosPlan::seeded(CHAOS_SEED, horizon, STALL_RATE, &[ChaosKind::Stall]).stall_for(STALL);
    let chaos = Arc::new(ChaosState::new(plan));
    let mut pool =
        service.connect_pool(CLIENTS).expect("pool size is nonzero").with_chaos(Arc::clone(&chaos));
    if let Some(threshold) = hedge {
        pool = pool.with_hedging(threshold);
    }
    let pool = Arc::new(pool);

    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = Arc::clone(&pool);
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut samples = Vec::with_capacity(requests);
                for i in 0..requests {
                    let q = &queries[(c + i) % queries.len()];
                    let t0 = Instant::now();
                    match pool.respond(&SourceRequest::new(q, 0, ProberMode::Wire), &mut |_| {}) {
                        Ok(_) | Err(CrawlError::Rejected) | Err(CrawlError::Cancelled) => {}
                        Err(e) => panic!("workload queries are valid, got {e}"),
                    }
                    samples.push(t0.elapsed().as_micros() as u64);
                }
                samples
            })
        })
        .collect();
    let mut samples = Vec::with_capacity(CLIENTS * requests);
    for h in handles {
        samples.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed();

    // Quiesce: hedge losers and retransmits may still be draining — wait
    // until every enqueued job has completed or cancelled before reading
    // the billing counters.
    loop {
        let r = service.service_report();
        if r.enqueued == r.completed + r.cancelled {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let rounds = pool.rounds_used();
    let stalls_injected = chaos.tally().stalled;
    // `shutdown` blocks until every connection is gone — release ours.
    drop(pool);
    let report = service.shutdown();
    Pass { samples, rounds, report, stalls_injected, elapsed }
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    let idx = (sorted.len() * pct / 100).min(sorted.len().saturating_sub(1));
    sorted[idx]
}

fn bench_chaos(c: &mut Criterion) {
    let requests = requests_per_client();

    let mut unhedged = drive(None, requests);
    let mut hedged = drive(Some(HEDGE_AFTER), requests);
    unhedged.samples.sort_unstable();
    hedged.samples.sort_unstable();

    let (u_p50, u_p95, u_p99) = (
        percentile(&unhedged.samples, 50),
        percentile(&unhedged.samples, 95),
        percentile(&unhedged.samples, 99),
    );
    let (h_p50, h_p95, h_p99) = (
        percentile(&hedged.samples, 50),
        percentile(&hedged.samples, 95),
        percentile(&hedged.samples, 99),
    );
    println!(
        "chaos unhedged: p50 {u_p50}us  p95 {u_p95}us  p99 {u_p99}us  rounds {}  \
         stalls {}  {:.2}s",
        unhedged.rounds,
        unhedged.stalls_injected,
        unhedged.elapsed.as_secs_f64()
    );
    println!(
        "chaos hedged:   p50 {h_p50}us  p95 {h_p95}us  p99 {h_p99}us  rounds {}  \
         hedges {}  stalls {}  {:.2}s",
        hedged.rounds,
        hedged.report.hedged,
        hedged.stalls_injected,
        hedged.elapsed.as_secs_f64()
    );
    println!(
        "  breakdown unhedged: enq {} done {} shed {} canc {} retx {}",
        unhedged.report.enqueued,
        unhedged.report.completed,
        unhedged.report.shed,
        unhedged.report.cancelled,
        unhedged.report.retransmitted
    );
    println!(
        "  breakdown hedged:   enq {} done {} shed {} canc {} retx {}",
        hedged.report.enqueued,
        hedged.report.completed,
        hedged.report.shed,
        hedged.report.cancelled,
        hedged.report.retransmitted
    );

    // Sanity: the plan actually fired, and hedges actually raced.
    assert!(unhedged.stalls_injected > 0, "stall plan never fired — no tail to cut");
    assert!(hedged.report.hedged > 0, "hedging never triggered below the stall threshold");
    assert_eq!(
        unhedged.report.enqueued,
        unhedged.report.completed + unhedged.report.cancelled,
        "unhedged drain invariant"
    );
    assert_eq!(
        hedged.report.enqueued,
        hedged.report.completed + hedged.report.cancelled,
        "hedged drain invariant"
    );

    // --- Gate 1: hedging must cut the stall tail at least in half. -------
    assert!(
        h_p99 * 2 <= u_p99,
        "hedged p99 {h_p99}us must be at least 2x better than unhedged p99 {u_p99}us"
    );
    // --- Gate 2: ...without more than a 15% round premium. ---------------
    let premium = hedged.rounds as f64 / unhedged.rounds.max(1) as f64;
    assert!(
        premium <= 1.15,
        "hedging round premium {premium:.3}x exceeds the 1.15x budget \
         ({} hedged vs {} unhedged)",
        hedged.rounds,
        unhedged.rounds
    );

    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"mode\": \"{}\",\n  \
         \"requests_per_client\": {},\n  \"clients\": {},\n  \
         \"stall_rate\": {:.3},\n  \"stall_us\": {},\n  \"hedge_after_us\": {},\n  \
         \"unhedged\": {{\n    \"p50_us\": {},\n    \"p95_us\": {},\n    \
         \"p99_us\": {},\n    \"rounds\": {},\n    \"stalls\": {}\n  }},\n  \
         \"hedged\": {{\n    \"p50_us\": {},\n    \"p95_us\": {},\n    \
         \"p99_us\": {},\n    \"rounds\": {},\n    \"hedges\": {},\n    \
         \"retransmitted\": {},\n    \"stalls\": {}\n  }},\n  \
         \"p99_speedup\": {:.2},\n  \"round_premium\": {:.3}\n}}\n",
        if quick_mode() { "quick" } else { "full" },
        requests,
        CLIENTS,
        STALL_RATE,
        STALL.as_micros(),
        HEDGE_AFTER.as_micros(),
        u_p50,
        u_p95,
        u_p99,
        unhedged.rounds,
        unhedged.stalls_injected,
        h_p50,
        h_p95,
        h_p99,
        hedged.rounds,
        hedged.report.hedged,
        hedged.report.retransmitted,
        hedged.stalls_injected,
        u_p99 as f64 / h_p99.max(1) as f64,
        premium,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_7.json");
    std::fs::write(&out, &json).expect("write BENCH_7.json");
    println!(
        "chaos gates passed (p99 {:.1}x better at {premium:.3}x rounds) -> {}",
        u_p99 as f64 / h_p99.max(1) as f64,
        out.display()
    );

    // Criterion numbers for the record: one hedged round-trip on a clean
    // wire — the overhead floor hedging adds when it never has to fire.
    let source = server();
    let queries = workload(&source);
    let service = SourceService::start(source, serve_config());
    let pool = service.connect_pool(2).expect("pool size is nonzero").with_hedging(HEDGE_AFTER);
    let mut group = c.benchmark_group("chaos");
    group.sample_size(20);
    group.bench_function("hedged_round_trip_clean_wire", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(
                pool.respond(&SourceRequest::new(q, 0, ProberMode::Wire), &mut |_| {})
                    .expect("workload queries are valid"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
