//! The wire hot path, end to end: render → parse → ingest, seed path vs
//! zero-copy path.
//!
//! Three simulated fleet workers (REPS) issue the same query workload
//! against one server, the overlap the shared page cache exists for. The
//! *seed path* is the pipeline as originally shipped: `page_to_xml`
//! allocates a fresh document per request, `parse_page` materializes owned
//! strings per field, and the ingestor interns each string through the
//! scalar path. The *zero-copy path* is this PR: `rendered_page` serves
//! repeat requests from the epoch-invalidated page cache, `parse_page_ref`
//! slices the shared buffer with `Cow` fields, and `ingest_page` batches
//! every string through the hash-once interner.
//!
//! Setup asserts the two paths harvest identical state; the timing gate
//! asserts the zero-copy path is at least [`REQUIRED_SPEEDUP`]× faster and
//! writes the measured numbers to `BENCH_4.json` at the repo root, so a
//! regression fails `cargo bench` (and CI's bench gate) loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::stage::Ingestor;
use dwc_core::state::CrawlState;
use dwc_core::{DataSource, ProberMode, SourceRequest};
use dwc_model::{AttrId, AttrSpec, Schema, UniversalTable};
use dwc_server::{InterfaceSpec, Query, WebDbServer};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Overlapping fleet workers re-issuing the same workload (cache hit rate
/// approaches `(REPS - 1) / REPS` on the zero-copy path).
const REPS: usize = 6;

/// The gate: the zero-copy path must beat the seed path by at least this
/// factor on the identical workload.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

const WORDS: [&str; 16] = [
    "amber", "basalt", "cinder", "delta", "ember", "fjord", "garnet", "harbor", "indigo",
    "juniper", "krypton", "lagoon", "meridian", "nimbus", "obsidian", "pewter",
];

fn word(state: &mut u64) -> &'static str {
    // splitmix64 step: deterministic, no `rand` needed in a bench binary.
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    WORDS[(z ^ (z >> 31)) as usize % WORDS.len()]
}

/// A catalog-shaped table with web-data-sized strings: unique long titles,
/// medium-cardinality authors (the query workload), low-cardinality
/// categories, and a publisher field whose `&` exercises the escape path.
fn bench_table(records: usize) -> UniversalTable {
    let schema = Schema::new(vec![
        AttrSpec::queriable("Title"),
        AttrSpec::queriable("Author"),
        AttrSpec::queriable("Category"),
        AttrSpec::queriable("Publisher"),
    ]);
    let mut t = UniversalTable::new(schema);
    let mut s = 0x1234_5678u64;
    for i in 0..records {
        let title = format!(
            "The {} {} of the {} {}: a field guide, volume {}",
            word(&mut s),
            word(&mut s),
            word(&mut s),
            word(&mut s),
            i
        );
        let author = format!("{} {} {}", word(&mut s), word(&mut s), i % (records / 12).max(1));
        let category = format!("{} studies", word(&mut s));
        let publisher = format!("{} & {} press", word(&mut s), word(&mut s));
        t.push_record_strs([
            (AttrId(0), title.as_str()),
            (AttrId(1), author.as_str()),
            (AttrId(2), category.as_str()),
            (AttrId(3), publisher.as_str()),
        ]);
    }
    t
}

/// The query workload: attribute values matching a handful of records each —
/// enough to paginate, small enough to keep the full bench under a second.
fn workload(table: &UniversalTable) -> Vec<Query> {
    let take = if quick_mode() { 12 } else { 48 };
    table
        .interner()
        .iter_ids()
        .filter(|&v| {
            let n = table.count_matches(v);
            (5..=40).contains(&n)
        })
        .map(|v| {
            let attr = table.interner().attr_of(v);
            Query::ByString {
                attr: table.schema().attr(attr).name.clone(),
                value: table.interner().value_str(v).to_owned(),
            }
        })
        .take(take)
        .collect()
}

fn fresh_state(server: &WebDbServer) -> CrawlState {
    let iface = WebDbServer::interface(server);
    let names = iface.attr_names.clone();
    let queriable: Vec<bool> =
        (0..names.len()).map(|i| iface.is_queriable(dwc_model::AttrId(i as u16))).collect();
    CrawlState::new(names, queriable, iface.page_size)
}

/// The seed path: owned wire pages (`query_page` renders and re-parses with
/// allocation per field) ingested record by record.
fn run_seed_path(server: &WebDbServer, queries: &[Query]) -> (u64, usize) {
    let mut state = fresh_state(server);
    let mut ingestor = Ingestor::new(false);
    let (mut touched, mut newly) = (Vec::new(), Vec::new());
    let mut records = 0u64;
    for _ in 0..REPS {
        for q in queries {
            let mut page_index = 0usize;
            loop {
                let mut owned = None;
                server
                    .respond(&SourceRequest::new(q, page_index, ProberMode::Wire), &mut |view| {
                        owned = Some(view.to_owned_page());
                    })
                    .expect("workload queries are valid");
                let page = owned.expect("respond visits on success");
                for rec in &page.records {
                    records += u64::from(ingestor.ingest_record(
                        &mut state,
                        rec,
                        &mut touched,
                        &mut newly,
                    ));
                }
                if !page.has_more {
                    break;
                }
                page_index += 1;
            }
        }
    }
    (records, state.vocab.len())
}

/// The zero-copy path: cached renders, borrowed parses, batch interning.
fn run_zero_copy_path(server: &WebDbServer, queries: &[Query]) -> (u64, usize) {
    let mut state = fresh_state(server);
    let mut ingestor = Ingestor::new(false);
    let (mut touched, mut newly) = (Vec::new(), Vec::new());
    let mut records = 0u64;
    for _ in 0..REPS {
        for q in queries {
            let mut page_index = 0usize;
            loop {
                let mut has_more = false;
                server
                    .respond(&SourceRequest::new(q, page_index, ProberMode::Wire), &mut |view| {
                        has_more = view.has_more;
                        records +=
                            ingestor.ingest_page(&mut state, view, &mut touched, &mut newly).new;
                    })
                    .expect("workload queries are valid");
                if !has_more {
                    break;
                }
                page_index += 1;
            }
        }
    }
    (records, state.vocab.len())
}

fn bench_pipeline(c: &mut Criterion) {
    let records = if quick_mode() { 1500 } else { 5000 };
    let table = bench_table(records);
    let queries = workload(&table);
    assert!(!queries.is_empty(), "workload must not be empty");
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let seed_server = WebDbServer::new(table.clone(), spec.clone());
    let zc_server = WebDbServer::new(table.clone(), spec);

    // Correctness first: both paths must harvest identical state.
    let seed_out = run_seed_path(&seed_server, &queries);
    let zc_out = run_zero_copy_path(&zc_server, &queries);
    assert_eq!(seed_out, zc_out, "the two pipelines must harvest identical (records, vocab)");
    assert!(zc_server.page_cache().hits() > 0, "overlapping reps must hit the page cache");

    // The timing gate (warm caches on both sides; the seed path has none).
    let passes = if quick_mode() { 3 } else { 10 };
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_seed_path(&seed_server, &queries));
    }
    let seed_elapsed = start.elapsed();
    let start = Instant::now();
    for _ in 0..passes {
        black_box(run_zero_copy_path(&zc_server, &queries));
    }
    let zc_elapsed = start.elapsed();
    let speedup = seed_elapsed.as_secs_f64() / zc_elapsed.as_secs_f64().max(1e-12);

    let hits = zc_server.page_cache().hits();
    let misses = zc_server.page_cache().misses();
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"mode\": \"{}\",\n  \"queries\": {},\n  \
         \"fleet_reps\": {},\n  \"timed_passes\": {},\n  \"seed_path_ns_per_pass\": {:.0},\n  \
         \"zero_copy_ns_per_pass\": {:.0},\n  \"speedup\": {:.2},\n  \
         \"required_speedup\": {:.1},\n  \"page_cache_hits\": {},\n  \
         \"page_cache_misses\": {},\n  \"page_cache_hit_rate\": {:.3}\n}}\n",
        if quick_mode() { "quick" } else { "full" },
        queries.len(),
        REPS,
        passes,
        seed_elapsed.as_nanos() as f64 / passes as f64,
        zc_elapsed.as_nanos() as f64 / passes as f64,
        speedup,
        REQUIRED_SPEEDUP,
        hits,
        misses,
        hit_rate,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_4.json");
    std::fs::write(&out, &json).expect("write BENCH_4.json");
    println!("pipeline speedup {speedup:.2}x (gate {REQUIRED_SPEEDUP:.1}x) -> {}", out.display());
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "zero-copy wire pipeline must be at least {REQUIRED_SPEEDUP}x faster than the seed \
         path, measured {speedup:.2}x ({seed_elapsed:?} vs {zc_elapsed:?})"
    );

    // Criterion numbers for the record (the gate above already enforced).
    let mut group = c.benchmark_group("wire_pipeline");
    group.sample_size(10);
    group.bench_function("seed_owned", |b| {
        b.iter(|| black_box(run_seed_path(&seed_server, &queries)))
    });
    group.bench_function("zero_copy_cached", |b| {
        b.iter(|| black_box(run_zero_copy_path(&zc_server, &queries)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
