//! BENCH-6: the serving tier under load — throughput scaling, tail latency,
//! and backpressure.
//!
//! One `SourceService` fronts a DBLP-shaped server; fleets of N ∈ {1, 4, 16}
//! client connections drive page requests through the bounded queue and the
//! run records sustained req/s plus p50/p95/p99 latency per fleet width. Two
//! gates then pin the admission-control contract from the PR:
//!
//! * **nominal**: with the queue sized above the client count, *nothing* is
//!   shed — every offered request completes, and throughput grows with the
//!   fleet (more connections keep more workers busy).
//! * **overload**: with offered concurrency at ~2× what a single worker and
//!   a 4-slot queue can absorb, the server sheds at admission instead of
//!   letting the queue grow — shed rate is nonzero and the observed queue
//!   depth never exceeds the configured bound.
//!
//! Measured numbers land in `BENCH_6.json` at the repo root so CI's bench
//! gate can archive them; a violated gate fails `cargo bench` loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::serve::{LatencyModel, ServeConfig, ServiceReport, SourceService};
use dwc_core::{CrawlError, DataSource, ProberMode, SourceRequest};
use dwc_datagen::presets::Preset;
use dwc_server::{Query, WebDbServer};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet widths for the scaling sweep.
const FLEETS: [usize; 3] = [1, 4, 16];

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn requests_per_client() -> usize {
    if quick_mode() {
        150
    } else {
        600
    }
}

fn server() -> Arc<WebDbServer> {
    let table = Preset::Dblp.table(0.01, 9);
    let spec = dwc_server::InterfaceSpec::permissive(table.schema(), 10);
    Arc::new(WebDbServer::new(table, spec))
}

/// The request workload: attribute values matching a handful of records
/// each, harvested from the table itself so every request is a live query.
fn workload(server: &WebDbServer) -> Vec<Query> {
    let table = server.table();
    table
        .interner()
        .iter_ids()
        .filter(|&v| (3..=30).contains(&table.count_matches(v)))
        .map(|v| Query::ByString {
            attr: table.schema().attr(table.interner().attr_of(v)).name.clone(),
            value: table.interner().value_str(v).to_owned(),
        })
        .take(32)
        .collect()
}

/// Drives `clients` connections, each issuing `requests` page-0 probes
/// round-robin over the workload, and returns the drained service report
/// plus the wall-clock the fleet took.
fn drive(
    source: Arc<WebDbServer>,
    config: ServeConfig,
    clients: usize,
    requests: usize,
    queries: &[Query],
) -> (ServiceReport, Duration) {
    let service = SourceService::start(source, config);
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let conn = service.connect();
            let queries = queries.to_vec();
            std::thread::spawn(move || {
                for i in 0..requests {
                    let q = &queries[(c + i) % queries.len()];
                    match conn.respond(&SourceRequest::new(q, 0, ProberMode::Wire), &mut |_| {}) {
                        Ok(_) | Err(CrawlError::Rejected) | Err(CrawlError::Cancelled) => {}
                        Err(e) => panic!("workload queries are valid, got {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    (service.shutdown(), elapsed)
}

fn bench_serving(c: &mut Criterion) {
    let source = server();
    let queries = workload(&source);
    assert!(queries.len() >= 8, "workload must not be empty");
    let requests = requests_per_client();

    // --- Scaling sweep: nominal load, queue sized above the fleet. -------
    // 4 workers at 200us modeled latency; the queue (64) always has room
    // for every blocked client, so admission control must never fire.
    let nominal = |workers: usize| {
        ServeConfig::builder()
            .queue_depth(64)
            .workers(workers)
            .latency(LatencyModel::Fixed(Duration::from_micros(200)))
            .seed(7)
            .build()
            .expect("valid serve config")
    };
    let mut sweep = Vec::new();
    for &clients in &FLEETS {
        let (report, elapsed) = drive(Arc::clone(&source), nominal(4), clients, requests, &queries);
        let offered = report.offered();
        assert_eq!(report.shed, 0, "nominal load at {clients} connections must not shed");
        assert_eq!(report.cancelled, 0);
        assert_eq!(report.completed, offered, "every offered request completes");
        assert_eq!(offered, (clients * requests) as u64);
        let rps = report.completed as f64 / elapsed.as_secs_f64().max(1e-9);
        println!(
            "serving {clients:>2} conns: {rps:>7.0} req/s  p50 {}us  p95 {}us  p99 {}us",
            report.p50_latency_us, report.p95_latency_us, report.p99_latency_us
        );
        sweep.push((clients, rps, report));
    }
    // More connections keep more of the 4 workers busy: the 16-wide fleet
    // must clearly out-run the single closed-loop client.
    let (rps_1, rps_16) = (sweep[0].1, sweep[2].1);
    assert!(
        rps_16 > rps_1 * 1.5,
        "throughput must scale with connections: {rps_1:.0} req/s at 1 vs {rps_16:.0} at 16"
    );

    // --- Overload: ~2x what one worker and a 4-slot queue absorb. --------
    // 16 closed-loop clients against concurrency budget 1 (worker) + 4
    // (queue): admission must shed the excess, and the queue must stay at
    // its bound rather than growing with offered load.
    const OVERLOAD_QUEUE: usize = 4;
    let overload_cfg = ServeConfig::builder()
        .queue_depth(OVERLOAD_QUEUE)
        .workers(1)
        .latency(LatencyModel::Fixed(Duration::from_micros(300)))
        .seed(7)
        .build()
        .expect("valid serve config");
    let (overload, elapsed) = drive(Arc::clone(&source), overload_cfg, 16, requests, &queries);
    let overload_rps = overload.completed as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "serving overload: {overload_rps:.0} req/s, shed {:.1}% of {}, queue max {}",
        overload.shed_rate() * 100.0,
        overload.offered(),
        overload.max_queue_depth
    );
    assert!(overload.shed > 0, "2x overload must shed at admission, not grow the queue");
    assert!(
        overload.max_queue_depth as usize <= OVERLOAD_QUEUE,
        "queue depth {} exceeded its configured bound {OVERLOAD_QUEUE}",
        overload.max_queue_depth
    );
    assert_eq!(
        overload.offered(),
        overload.completed + overload.shed + overload.cancelled,
        "every offered request is accounted for"
    );

    let fleet_json: Vec<String> = sweep
        .iter()
        .map(|(clients, rps, r)| {
            format!(
                "    {{ \"connections\": {}, \"req_per_s\": {:.0}, \"p50_us\": {}, \
                 \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {} }}",
                clients,
                rps,
                r.p50_latency_us,
                r.p95_latency_us,
                r.p99_latency_us,
                r.max_latency_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"mode\": \"{}\",\n  \"requests_per_client\": {},\n  \
         \"fleets\": [\n{}\n  ],\n  \"overload\": {{\n    \"connections\": 16,\n    \
         \"queue_depth\": {},\n    \"workers\": 1,\n    \"req_per_s\": {:.0},\n    \
         \"offered\": {},\n    \"completed\": {},\n    \"shed\": {},\n    \
         \"shed_rate\": {:.3},\n    \"max_queue_depth\": {},\n    \"p99_us\": {}\n  }}\n}}\n",
        if quick_mode() { "quick" } else { "full" },
        requests,
        fleet_json.join(",\n"),
        OVERLOAD_QUEUE,
        overload_rps,
        overload.offered(),
        overload.completed,
        overload.shed,
        overload.shed_rate(),
        overload.max_queue_depth,
        overload.p99_latency_us,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_6.json");
    std::fs::write(&out, &json).expect("write BENCH_6.json");
    println!(
        "serving gates passed (0 shed nominal, {:.1}% shed at overload) -> {}",
        overload.shed_rate() * 100.0,
        out.display()
    );

    // Criterion numbers for the record: one service round-trip with the
    // queue idle — the floor under every latency percentile above.
    let service = SourceService::start(Arc::clone(&source), ServeConfig::default());
    let conn = service.connect();
    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.bench_function("round_trip_idle", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(
                conn.respond(&SourceRequest::new(q, 0, ProberMode::Wire), &mut |_| {})
                    .expect("workload queries are valid"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
