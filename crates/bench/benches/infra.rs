//! Microbenchmarks of the deployment infrastructure: checkpoint
//! serialization, CSV import/export, and the crawl-summary report.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::checkpoint::Checkpoint;
use dwc_core::policy::PolicyKind;
use dwc_core::report::CrawlSummary;
use dwc_core::{CrawlConfig, Crawler};
use dwc_datagen::loader::{load_csv, to_csv};
use dwc_datagen::presets::Preset;
use dwc_server::{InterfaceSpec, WebDbServer};
use std::hint::black_box;

/// A half-finished crawl over a small ACM instance, for snapshot benches.
fn half_crawled() -> (WebDbServer, Checkpoint) {
    let table = Preset::Acm.table(0.01, 1);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table, spec);
    let cp = {
        let mut crawler =
            Crawler::new(&server, PolicyKind::GreedyLink.build(), CrawlConfig::default());
        crawler.add_seed("Conference", "Conference_0");
        for _ in 0..40 {
            if crawler.step().is_none() {
                break;
            }
        }
        crawler.checkpoint()
    };
    (server, cp)
}

fn bench_checkpoint(c: &mut Criterion) {
    let (server, cp) = half_crawled();
    let text = cp.to_text();
    c.bench_function("checkpoint_serialize", |b| b.iter(|| black_box(cp.to_text())));
    c.bench_function("checkpoint_parse", |b| {
        b.iter(|| black_box(Checkpoint::from_text(black_box(&text)).unwrap()))
    });
    let mut group = c.benchmark_group("checkpoint_resume");
    group.sample_size(20);
    group.bench_function("rebuild_policy_state", |b| {
        b.iter(|| {
            let crawler = Crawler::resume(
                &server,
                PolicyKind::GreedyLink.build(),
                &cp,
                CrawlConfig::default(),
            );
            black_box(crawler.rounds())
        })
    });
    group.finish();
}

fn bench_csv(c: &mut Criterion) {
    let table = Preset::Ebay.table(0.05, 1);
    let csv = to_csv(&table);
    let mut group = c.benchmark_group("csv");
    group.sample_size(20);
    group.bench_function("export_1k_records", |b| b.iter(|| black_box(to_csv(black_box(&table)))));
    group.bench_function("import_1k_records", |b| {
        b.iter(|| black_box(load_csv(black_box(&csv)).unwrap()))
    });
    group.finish();
}

fn bench_report(c: &mut Criterion) {
    let table = Preset::Acm.table(0.01, 1);
    let spec = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table, spec);
    let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), CrawlConfig::default());
    crawler.add_seed("Conference", "Conference_0");
    for _ in 0..40 {
        if crawler.step().is_none() {
            break;
        }
    }
    c.bench_function("crawl_summary", |b| {
        b.iter(|| black_box(CrawlSummary::from_state(crawler.state(), 10)))
    });
}

criterion_group!(benches, bench_checkpoint, bench_csv, bench_report);
criterion_main!(benches);
