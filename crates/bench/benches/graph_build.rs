//! Microbenchmarks of the model substrate: attribute-value graph
//! construction (Definition 2.1), degree distributions (Figure 2's
//! ingredient), connectivity analysis (the §5 "well connected" check), and
//! the greedy weighted dominating set (Definition 2.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwc_datagen::presets::Preset;
use dwc_model::components::Connectivity;
use dwc_model::degree::DegreeDistribution;
use dwc_model::domset::greedy_weighted_dominating_set;
use dwc_model::AvGraph;
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("avg_build");
    group.sample_size(10);
    for preset in [Preset::Ebay, Preset::Acm] {
        let table = preset.table(0.02, 1);
        group.bench_with_input(BenchmarkId::from_parameter(preset.name()), &table, |b, t| {
            b.iter(|| AvGraph::from_table(black_box(t)))
        });
    }
    group.finish();
}

fn bench_degree_distribution(c: &mut Criterion) {
    let table = Preset::Dblp.table(0.02, 1);
    let graph = AvGraph::from_table(&table);
    c.bench_function("degree_distribution_dblp", |b| {
        b.iter(|| {
            let dd = DegreeDistribution::of_graph(black_box(&graph));
            black_box(dd.power_law_fit())
        })
    });
}

fn bench_connectivity(c: &mut Criterion) {
    let table = Preset::Imdb.table(0.02, 1);
    c.bench_function("connectivity_imdb", |b| {
        b.iter(|| {
            let conn = Connectivity::analyze(black_box(&table));
            black_box(conn.largest_component_coverage())
        })
    });
}

fn bench_dominating_set(c: &mut Criterion) {
    let table = Preset::Ebay.table(0.02, 1);
    let graph = AvGraph::from_table(&table);
    c.bench_function("greedy_dominating_set_ebay", |b| {
        b.iter(|| black_box(greedy_weighted_dominating_set(black_box(&graph), |_| 1.0)))
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_degree_distribution,
    bench_connectivity,
    bench_dominating_set
);
criterion_main!(benches);
