//! Microbenchmarks of the statistical substrate: Zipf sampling (dataset
//! generation hot path), PMI, the Student-t machinery (E-SZ), the pairwise
//! capture–recapture estimates, and the incremental covered-set maintenance
//! of §4.4.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::domain_table::{CoveredSet, DomainTable};
use dwc_datagen::presets::Preset;
use dwc_stats::{pairwise_estimates, pmi, t_cdf, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(100_000, 0.9);
    let mut rng = StdRng::seed_from_u64(7);
    c.bench_function("zipf_sample_100k", |b| b.iter(|| black_box(z.sample(&mut rng))));
}

fn bench_pmi(c: &mut Criterion) {
    c.bench_function("pmi", |b| {
        b.iter(|| black_box(pmi(black_box(35), black_box(120), black_box(450), black_box(10_000))))
    });
}

fn bench_t_cdf(c: &mut Criterion) {
    c.bench_function("t_cdf", |b| b.iter(|| black_box(t_cdf(black_box(1.345), black_box(14.0)))));
}

fn bench_capture(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<Vec<u32>> = (0..6)
        .map(|_| {
            let mut s: Vec<u32> = (0..40_000u32).filter(|_| rng.gen_bool(0.1)).collect();
            s.dedup();
            s
        })
        .collect();
    c.bench_function("pairwise_capture_6x4k", |b| {
        b.iter(|| black_box(pairwise_estimates(black_box(&samples))))
    });
}

fn bench_covered_set(c: &mut Criterion) {
    let table = Preset::Imdb.table(0.01, 1);
    let dm = DomainTable::build(table);
    // Postings of the 64 most frequent values.
    let mut values: Vec<_> = dm.sample().interner().iter_ids().collect();
    values.sort_by_key(|&v| std::cmp::Reverse(dm.freq(v)));
    values.truncate(64);
    c.bench_function("covered_set_union_64_hubs", |b| {
        b.iter(|| {
            let mut cs = CoveredSet::new(dm.num_records());
            for &v in &values {
                cs.union_postings(dm.postings(v));
            }
            black_box(cs.fraction())
        })
    });
}

criterion_group!(benches, bench_zipf, bench_pmi, bench_t_cdf, bench_capture, bench_covered_set);
criterion_main!(benches);
