//! BENCH-9 — out-of-core storage: crawl a multi-million-record source under
//! a hard RSS ceiling, without giving up serving throughput.
//!
//! Two phases, and the order matters:
//!
//! 1. **Bounded-memory phase (first, under an RSS sampler).** The big IMDB
//!    preset is *streamed* record by record from the generator straight into
//!    file-backed segments ([`SegmentTableBuilder`] with a bounded build
//!    budget — no resident table ever exists), then crawled through the
//!    paged backend with a small buffer pool. A sampler thread reads
//!    `VmRSS` from `/proc/self/status` throughout; the observed peak must
//!    stay under the ceiling. Defaults: 50M records / 3 GiB full,
//!    1M / 1.5 GiB quick; override with `DWC_BENCH9_BIG_RECORDS` and
//!    `DWC_BENCH9_CEILING_MB` (the CI storage-smoke job crawls the 10M
//!    preset this way).
//! 2. **Throughput phase.** At a common scale both backends can hold, the
//!    identical crawl runs resident and paged. The reports must be
//!    bit-identical (policies cannot see the storage engine), and the paged
//!    backend must sustain at least [`REQUIRED_THROUGHPUT`]× the resident
//!    pages/sec.
//!
//! Measured numbers go to `BENCH_9.json` at the repo root; either gate
//! failing fails `cargo bench` (and CI's bench gate) loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use dwc_core::{CrawlConfig, CrawlReport, Crawler, PolicyKind, ProberMode};
use dwc_datagen::presets::{BigScale, Preset};
use dwc_server::{InterfaceSpec, WebDbServer};
use dwc_store::{FilePager, MemoryBudget, SegmentTable, SegmentTableBuilder, DEFAULT_PAGE_SIZE};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The throughput gate: paged serving must sustain at least this fraction
/// of the resident backend's pages/sec on the identical crawl.
const REQUIRED_THROUGHPUT: f64 = 0.7;

/// One deterministic seed for every phase.
const SEED: u64 = 3;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Current resident set size in KiB, from `/proc/self/status`.
fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Background peak-RSS sampler. Started before the big phase, stopped right
/// after it, so the peak covers exactly the bounded-memory claim.
struct RssSampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<u64>,
}

impl RssSampler {
    fn start() -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut peak = 0u64;
            while !flag.load(Ordering::Relaxed) {
                peak = peak.max(rss_kb());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            peak.max(rss_kb())
        });
        RssSampler { stop, handle }
    }

    /// Stops sampling and returns the peak RSS in KiB.
    fn stop(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("rss sampler thread")
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dwc-bench9-{tag}-{}", std::process::id()));
    // A fresh directory per run: stale segments would shadow the new build.
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

/// The out-of-core model whose vocabulary scaling matches the record count
/// (pools grow as the square root of the record multiplier).
fn big_model(records: u64) -> dwc_datagen::DomainModel {
    let scale = if records > 50_000_000 {
        BigScale::M100
    } else if records > 10_000_000 {
        BigScale::M50
    } else {
        BigScale::M10
    };
    Preset::Imdb.big_model(scale)
}

fn interface(schema: &dwc_model::Schema) -> InterfaceSpec {
    InterfaceSpec::permissive(schema, 10).with_result_cap(40)
}

fn crawl_config(max_rounds: u64) -> CrawlConfig {
    CrawlConfig::builder()
        .max_rounds(max_rounds)
        .prober(ProberMode::Wire)
        .build()
        .expect("valid crawl config")
}

fn run_crawl(server: &WebDbServer, max_rounds: u64) -> CrawlReport {
    let mut crawler =
        Crawler::new(server, PolicyKind::GreedyLink.build(), crawl_config(max_rounds));
    crawler.add_seed("Language", "Language_0");
    crawler.add_seed("Actor", "Actor_0");
    crawler.run()
}

/// Phase 1: stream-generate `records` records into file-backed segments and
/// crawl them paged. Returns (pages/sec, report, build seconds, disk bytes).
fn big_paged_phase(records: u64, budget: MemoryBudget, dir: &Path) -> (f64, CrawlReport, f64, u64) {
    let model = big_model(records);
    let build_start = Instant::now();
    let pager = FilePager::open(dir, DEFAULT_PAGE_SIZE).expect("open segment dir");
    let mut builder = SegmentTableBuilder::new(model.schema(), Box::new(pager))
        .expect("segment builder")
        .with_build_budget(budget.pool_bytes());
    model.generate_with(records as usize, SEED, |_, fields| {
        builder
            .push_record_strs(fields.iter().map(|(a, s)| (*a, s.as_str())))
            .expect("push streamed record");
    });
    let seg = builder.finish(budget.pool_bytes()).expect("finish segments");
    let build_secs = build_start.elapsed().as_secs_f64();
    let disk = seg.storage_bytes();

    let schema = model.schema();
    let server = WebDbServer::paged(Arc::new(seg), interface(&schema))
        .with_page_cache(budget.page_cache_entries());
    let rounds = if quick_mode() { 800 } else { 2_000 };
    let start = Instant::now();
    let report = run_crawl(&server, rounds);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (report.rounds as f64 / secs, report, build_secs, disk)
}

/// Phase 2: resident vs paged on the identical common-scale crawl.
/// Returns (resident pages/sec, paged pages/sec); asserts report parity.
fn throughput_phase(dir: &Path, budget: MemoryBudget) -> (f64, f64) {
    let scale = if quick_mode() { 0.05 } else { 0.25 };
    let table = Preset::Imdb.table(scale, SEED);
    let rounds = 1_500;

    // Same rendered-page cache capacity on both sides: the cache sits above
    // the storage engine, so unequal capacities would skew hit counts (and
    // the warm-run parity assert) for reasons unrelated to paging.
    let resident_server = WebDbServer::new(table.clone(), interface(table.schema()))
        .with_page_cache(budget.page_cache_entries());
    let paged_server = {
        let pager = FilePager::open(dir, DEFAULT_PAGE_SIZE).expect("open segment dir");
        let seg = SegmentTable::from_table(&table, Box::new(pager), budget.pool_bytes())
            .expect("pack segments");
        WebDbServer::paged(Arc::new(seg), interface(table.schema()))
            .with_page_cache(budget.page_cache_entries())
    };

    // Warm both once; parity is asserted on the warm run below too.
    let resident_report = run_crawl(&resident_server, rounds);
    let paged_report = run_crawl(&paged_server, rounds);
    assert_eq!(
        paged_report, resident_report,
        "paged and resident backends must produce bit-identical crawl reports"
    );

    let start = Instant::now();
    let r = black_box(run_crawl(&resident_server, rounds));
    let resident_pps = r.rounds as f64 / start.elapsed().as_secs_f64().max(1e-9);
    let start = Instant::now();
    let p = black_box(run_crawl(&paged_server, rounds));
    let paged_pps = p.rounds as f64 / start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(p, r);
    (resident_pps, paged_pps)
}

fn bench_storage(c: &mut Criterion) {
    let quick = quick_mode();
    let big_records = env_u64("DWC_BENCH9_BIG_RECORDS", if quick { 1_000_000 } else { 50_000_000 });
    let ceiling_mb = env_u64("DWC_BENCH9_CEILING_MB", if quick { 1_536 } else { 3_072 });
    let budget = MemoryBudget::from_mb(64);

    // Big paged phase FIRST, under the sampler: nothing resident-sized may
    // exist yet, so the observed peak is the out-of-core claim itself.
    let big_dir = scratch_dir("big");
    let sampler = RssSampler::start();
    let (big_pps, big_report, build_secs, disk_bytes) =
        big_paged_phase(big_records, budget, &big_dir);
    let peak_kb = sampler.stop();
    let peak_mb = peak_kb / 1024;
    std::fs::remove_dir_all(&big_dir).ok();
    assert!(big_report.records > 0, "the big crawl must harvest records");

    // Throughput phase at a scale both backends can hold.
    let common_dir = scratch_dir("common");
    let (resident_pps, paged_pps) = throughput_phase(&common_dir, budget);
    std::fs::remove_dir_all(&common_dir).ok();
    let ratio = paged_pps / resident_pps.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"storage\",\n  \"mode\": \"{}\",\n  \"big_records\": {},\n  \
         \"big_build_secs\": {:.1},\n  \"big_disk_bytes\": {},\n  \
         \"big_crawl_records\": {},\n  \"big_pages_per_sec\": {:.0},\n  \
         \"peak_rss_mb\": {},\n  \"rss_ceiling_mb\": {},\n  \
         \"resident_pages_per_sec\": {:.0},\n  \"paged_pages_per_sec\": {:.0},\n  \
         \"throughput_ratio\": {:.3},\n  \"required_throughput_ratio\": {:.1}\n}}\n",
        if quick { "quick" } else { "full" },
        big_records,
        build_secs,
        disk_bytes,
        big_report.records,
        big_pps,
        peak_mb,
        ceiling_mb,
        resident_pps,
        paged_pps,
        ratio,
        REQUIRED_THROUGHPUT,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_9.json");
    std::fs::write(&out, &json).expect("write BENCH_9.json");
    println!(
        "storage: {big_records} records, peak RSS {peak_mb} MiB (ceiling {ceiling_mb}), \
         throughput ratio {ratio:.2}x (gate {REQUIRED_THROUGHPUT:.1}x) -> {}",
        out.display()
    );

    assert!(
        peak_mb <= ceiling_mb,
        "out-of-core crawl of {big_records} records peaked at {peak_mb} MiB RSS, over the \
         {ceiling_mb} MiB ceiling"
    );
    assert!(
        ratio >= REQUIRED_THROUGHPUT,
        "paged backend served {paged_pps:.0} pages/s vs resident {resident_pps:.0} — ratio \
         {ratio:.2} is under the {REQUIRED_THROUGHPUT} gate"
    );

    // Criterion numbers for the record (the gates above already enforced).
    let scale = if quick { 0.02 } else { 0.05 };
    let table = Preset::Imdb.table(scale, SEED);
    let crit_dir = scratch_dir("criterion");
    let paged = {
        let pager = FilePager::open(&crit_dir, DEFAULT_PAGE_SIZE).expect("open segment dir");
        let seg = SegmentTable::from_table(&table, Box::new(pager), budget.pool_bytes())
            .expect("pack segments");
        WebDbServer::paged(Arc::new(seg), interface(table.schema()))
    };
    let resident = WebDbServer::new(table.clone(), interface(table.schema()));
    let mut group = c.benchmark_group("storage_crawl");
    group.sample_size(10);
    group.bench_function("resident", |b| b.iter(|| black_box(run_crawl(&resident, 200))));
    group.bench_function("paged", |b| b.iter(|| black_box(run_crawl(&paged, 200))));
    group.finish();
    std::fs::remove_dir_all(&crit_dir).ok();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
