//! End-to-end crawl benchmarks: one miniature crawl per policy family, the
//! per-figure parameter points in microbench form, and the §3.4 abortion
//! ablation (A-ABORT in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwc_bench::runner::run_crawl;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::{MmmiConfig, PolicyKind};
use dwc_core::{AbortPolicy, CrawlConfig, DomainTable};
use dwc_datagen::paired::{subset_by_min_year, PairedDataset, PairedSpec};
use dwc_datagen::presets::Preset;
use dwc_server::InterfaceSpec;
use std::hint::black_box;
use std::sync::Arc;

/// Figure 3 point: one crawl to 90% coverage on a small eBay per policy.
fn bench_fig3_point(c: &mut Criterion) {
    let table = Preset::Ebay.table(0.02, 1);
    let n = table.num_records();
    let seeds = pick_seeds(&table, 2, 9);
    let mut group = c.benchmark_group("fig3_crawl_to_90pct");
    group.sample_size(10);
    for kind in [PolicyKind::Bfs, PolicyKind::Dfs, PolicyKind::Random(3), PolicyKind::GreedyLink] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, kind| {
            b.iter(|| {
                let interface = InterfaceSpec::permissive(table.schema(), 10);
                let config = CrawlConfig::builder()
                    .known_target_size(n)
                    .target_coverage(0.9)
                    .build()
                    .expect("valid crawl config");
                black_box(run_crawl(&table, interface, kind, &seeds, config))
            })
        });
    }
    group.finish();
}

/// Figure 4 point: the full GL+MMMI crawl including batch PMI recomputation.
fn bench_fig4_point(c: &mut Criterion) {
    let table = Preset::Ebay.table(0.02, 1);
    let n = table.num_records();
    let seeds = pick_seeds(&table, 2, 9);
    let mut group = c.benchmark_group("fig4_mmmi_crawl");
    group.sample_size(10);
    group.bench_function("gl_mmmi_full", |b| {
        b.iter(|| {
            let interface = InterfaceSpec::permissive(table.schema(), 10);
            let config =
                CrawlConfig::builder().known_target_size(n).build().expect("valid crawl config");
            black_box(run_crawl(
                &table,
                interface,
                &PolicyKind::Mmmi(MmmiConfig::default()),
                &seeds,
                config,
            ))
        })
    });
    group.finish();
}

/// Figures 5/6 point: DM crawl with a domain table under a result cap.
fn bench_fig5_point(c: &mut Criterion) {
    let pair = PairedDataset::generate(PairedSpec { scale: 0.01, ..Default::default() });
    let dm = Arc::new(DomainTable::build(subset_by_min_year(&pair.sample, 1960)));
    let n = pair.target.num_records();
    let seeds = pick_seeds(&pair.target, 2, 9);
    let mut group = c.benchmark_group("fig5_domain_crawl");
    group.sample_size(10);
    for (label, kind) in
        [("GL", PolicyKind::GreedyLink), ("DM", PolicyKind::Domain(Arc::clone(&dm)))]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, kind| {
            b.iter(|| {
                let interface =
                    InterfaceSpec::permissive(pair.target.schema(), 10).with_result_cap(64);
                let config = CrawlConfig::builder()
                    .known_target_size(n)
                    .max_rounds(150)
                    .build()
                    .expect("valid crawl config");
                black_box(run_crawl(&pair.target, interface, kind, &seeds, config))
            })
        });
    }
    group.finish();
}

/// A-ABORT ablation: GL with and without the §3.4 abortion heuristics.
fn bench_abort_ablation(c: &mut Criterion) {
    let table = Preset::Ebay.table(0.02, 1);
    let n = table.num_records();
    let seeds = pick_seeds(&table, 2, 9);
    let mut group = c.benchmark_group("abort_ablation");
    group.sample_size(10);
    for (label, abort) in [("off", AbortPolicy::never()), ("on", AbortPolicy::standard())] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &abort, |b, abort| {
            b.iter(|| {
                let interface = InterfaceSpec::permissive(table.schema(), 10);
                let config = CrawlConfig::builder()
                    .known_target_size(n)
                    .target_coverage(0.95)
                    .abort(abort.clone())
                    .build()
                    .expect("valid crawl config");
                black_box(run_crawl(&table, interface, &PolicyKind::GreedyLink, &seeds, config))
            })
        });
    }
    group.finish();
}

/// Conjunctive partner selection: the incremental co-occurrence index kept
/// by the ingestor vs the per-query full record scan it replaced. Setup
/// first checks the two paths agree and that the index is actually faster
/// over a batch of candidates — so a regression fails `cargo bench` loudly —
/// then benches both paths for the numbers.
fn bench_partner_selection(c: &mut Criterion) {
    use dwc_core::extract::ExtractedRecord;
    use dwc_core::stage::{best_partners_by_scan, Ingestor};
    use dwc_core::state::CrawlState;
    use std::time::Instant;

    let table = Preset::Ebay.table(0.05, 1);
    let names: Vec<String> = table.schema().iter().map(|(_, a)| a.name.clone()).collect();
    let mut state = CrawlState::new(names.clone(), vec![true; names.len()], 10);
    let mut ingestor = Ingestor::new(true);
    let (mut touched, mut newly) = (Vec::new(), Vec::new());
    for (key, (_, rec)) in table.iter().enumerate() {
        let fields: Vec<(String, String)> = rec
            .values()
            .iter()
            .map(|&v| {
                let a = table.interner().attr_of(v);
                (names[a.0 as usize].clone(), table.interner().value_str(v).to_string())
            })
            .collect();
        let extracted = ExtractedRecord { key: key as u64, fields };
        ingestor.ingest_record(&mut state, &extracted, &mut touched, &mut newly);
    }
    let candidates: Vec<_> = state.vocab.iter_ids().step_by(17).take(64).collect();
    assert!(!candidates.is_empty());
    for &v in &candidates {
        assert_eq!(
            ingestor.co_index().best_partners(&state, v, 1),
            best_partners_by_scan(&state, v, 1),
            "incremental index must rank partners exactly like the scan"
        );
    }
    let start = Instant::now();
    for &v in &candidates {
        black_box(ingestor.co_index().best_partners(&state, v, 1));
    }
    let incremental = start.elapsed();
    let start = Instant::now();
    for &v in &candidates {
        black_box(best_partners_by_scan(&state, v, 1));
    }
    let scan = start.elapsed();
    assert!(
        incremental < scan,
        "incremental co-occurrence index must beat the full scan: {incremental:?} vs {scan:?}"
    );

    let mut group = c.benchmark_group("conjunctive_partner_selection");
    group.bench_function("incremental_index", |b| {
        b.iter(|| {
            for &v in &candidates {
                black_box(ingestor.co_index().best_partners(&state, v, 1));
            }
        })
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            for &v in &candidates {
                black_box(best_partners_by_scan(&state, v, 1));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3_point,
    bench_fig4_point,
    bench_fig5_point,
    bench_abort_ablation,
    bench_partner_selection
);
criterion_main!(benches);
