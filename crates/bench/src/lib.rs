//! Experiment harness: shared utilities for the per-table / per-figure
//! binaries and the criterion benches.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's per-experiment index). All experiments are
//! deterministic in `(scale, seed)`; the scale defaults to a laptop-friendly
//! fraction of the paper's dataset sizes and can be overridden with the
//! `DWC_SCALE` environment variable (`1.0` = paper scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fmt;
pub mod runner;
pub mod seeds;

/// Default experiment scale (fraction of the paper's dataset sizes).
pub const DEFAULT_SCALE: f64 = 0.05;

/// Reads the experiment scale from `DWC_SCALE`, defaulting to
/// [`DEFAULT_SCALE`]. Values outside `(0, 1]` are rejected.
pub fn scale_from_env() -> f64 {
    match std::env::var("DWC_SCALE") {
        Ok(s) => {
            let v: f64 = s.parse().unwrap_or_else(|_| panic!("DWC_SCALE={s:?} is not a number"));
            assert!(v > 0.0 && v <= 1.0, "DWC_SCALE must be in (0, 1]");
            v
        }
        Err(_) => DEFAULT_SCALE,
    }
}
