//! Seed-value selection for experiments.
//!
//! The paper evaluates "four times with different seed values (starting
//! points) to avoid the possible noise due to individual seed". Seeds are
//! drawn from the target table's queriable values uniformly at random —
//! mirroring how a practitioner seeds a crawler with a handful of known
//! attribute values.

use dwc_model::UniversalTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks `n` distinct queriable `(attribute name, value string)` seed pairs
/// from random records of the table. Deterministic in `rng_seed`.
pub fn pick_seeds(table: &UniversalTable, n: usize, rng_seed: u64) -> Vec<(String, String)> {
    assert!(table.num_records() > 0, "cannot seed from an empty table");
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut out: Vec<(String, String)> = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n && guard < 10_000 {
        guard += 1;
        let rid = dwc_model::RecordId(rng.gen_range(0..table.num_records() as u32));
        let rec = table.record(rid);
        if rec.is_empty() {
            continue;
        }
        let v = rec.values()[rng.gen_range(0..rec.values().len())];
        let attr = table.interner().attr_of(v);
        if !table.schema().attr(attr).queriable {
            continue;
        }
        let pair =
            (table.schema().attr(attr).name.clone(), table.interner().value_str(v).to_owned());
        if !out.contains(&pair) {
            out.push(pair);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_datagen::presets::Preset;
    use dwc_model::fixtures::figure1_table;

    #[test]
    fn seeds_are_queriable_and_distinct() {
        let t = Preset::Ebay.table(0.01, 1);
        let seeds = pick_seeds(&t, 4, 7);
        assert_eq!(seeds.len(), 4);
        for (attr, _) in &seeds {
            let a = t.schema().attr_by_name(attr).unwrap();
            assert!(t.schema().attr(a).queriable);
        }
        let mut dedup = seeds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn seeds_deterministic() {
        let t = figure1_table();
        assert_eq!(pick_seeds(&t, 2, 42), pick_seeds(&t, 2, 42));
    }

    #[test]
    fn different_rng_seeds_vary() {
        let t = Preset::Ebay.table(0.01, 1);
        assert_ne!(pick_seeds(&t, 3, 1), pick_seeds(&t, 3, 2));
    }
}
