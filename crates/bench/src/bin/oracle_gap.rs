//! Insight — how far are online policies from the full-information bound?
//!
//! Definition 2.4 of the paper equates optimal query selection with a
//! Weighted Minimum Dominating Set of the attribute-value graph — but "the
//! database crawler is facing a more challenging problem as it lacks the
//! 'big picture' of the whole graph". This binary quantifies that gap: the
//! offline greedy WDS (full graph knowledge, weights = Definition 2.3 page
//! costs) gives a near-lower-bound on queries/rounds to full coverage, and
//! each online policy is measured against it.

use dwc_bench::fmt::{num, render_table};
use dwc_bench::runner::run_crawl;
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::CrawlConfig;
use dwc_datagen::presets::Preset;
use dwc_model::domset::{greedy_weighted_dominating_set, set_weight};
use dwc_model::AvGraph;
use dwc_server::{InterfaceSpec, InvertedIndex};

fn main() {
    let scale = scale_from_env();
    let table = Preset::Ebay.table(scale, 1);
    let n = table.num_records();
    let interface = InterfaceSpec::permissive(table.schema(), 10);
    println!("Oracle gap (eBay-like, {} records): offline dominating set vs online crawling\n", n);

    // Offline oracle: greedy WDS over the FULL graph, weighted by the
    // Definition 2.3 cost of issuing each value as a query.
    let graph = AvGraph::from_table(&table);
    let index = InvertedIndex::build(&table);
    let k = interface.page_size;
    let cost = |v: dwc_model::ValueId| (index.match_count(v).div_ceil(k)).max(1) as f64;
    let ds = greedy_weighted_dominating_set(&graph, cost);
    let oracle_queries = ds.len();
    let oracle_rounds = set_weight(&ds, cost);
    println!(
        "offline greedy WDS: {oracle_queries} queries, {oracle_rounds:.0} rounds to dominate\n\
         every record (full-graph knowledge; near-lower bound for 100% coverage)\n"
    );

    let mut rows = Vec::new();
    for kind in [
        PolicyKind::Bfs,
        PolicyKind::Random(3),
        PolicyKind::FreqGreedy,
        PolicyKind::GreedyLink,
        PolicyKind::Mmmi(Default::default()),
    ] {
        let seeds = pick_seeds(&table, 2, 42);
        let config = CrawlConfig::builder()
            .known_target_size(n)
            .max_rounds(500 * n as u64)
            .build()
            .expect("valid crawl config");
        let report = run_crawl(&table, interface.clone(), &kind, &seeds, config);
        // To exhaustion every policy issues the same query set (convergence
        // is policy-independent), so the discriminating numbers are the
        // rounds needed to *reach* deep coverage levels.
        let r99 = report.trace.rounds_to_coverage(0.99, n);
        let r100 = report.trace.rounds_to_coverage(1.0, n);
        rows.push(vec![
            kind.label().to_string(),
            report.queries.to_string(),
            r99.map_or("—".into(), |r| r.to_string()),
            r100.map_or("—".into(), |r| r.to_string()),
            r99.map_or("—".into(), |r| num(r as f64 / oracle_rounds)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Policy", "queries (total)", "rounds→99%", "rounds→100%", "99% ÷ oracle"],
            &rows
        )
    );
    println!(
        "\nReading: the overhead factor is the price of partial knowledge — the gap\n\
         Definition 2.4 predicts between any online crawler and the NP-hard\n\
         full-information optimum (here approximated by greedy WDS). Run to\n\
         exhaustion all policies issue the same query set; the ordering decides\n\
         how early deep coverage arrives."
    );
}
