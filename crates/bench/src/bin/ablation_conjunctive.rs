//! Ablation — crawling through a restrictive multi-attribute form.
//!
//! Table 1 of the paper flags domains (Car, airfare, hotels) where "most
//! query forms are highly structured and restrictive in the sense that only
//! multi-attribute queries are accepted", and leaves crawling them to future
//! work. This repo implements that future work (conjunctive queries +
//! co-occurrence partner selection); this ablation quantifies how much
//! harder such sources are: same database, same policy, three interfaces —
//! single-attribute, keyword, and two-field conjunctive.

use dwc_bench::fmt::{pct, render_table};
use dwc_bench::scale_from_env;
use dwc_core::policy::PolicyKind;
use dwc_core::{CrawlConfig, Crawler, QueryMode};
use dwc_datagen::presets::Preset;
use dwc_server::{InterfaceSpec, WebDbServer};

fn main() {
    let scale = scale_from_env();
    let table = Preset::Ebay.table(scale, 1);
    let n = table.num_records();
    println!(
        "Restrictive-interface ablation (eBay-like, {} records): the same source\n\
         behind three interfaces, greedy-link policy, unlimited budget\n",
        n
    );

    let mut rows = Vec::new();
    for (label, mode, min_attrs) in [
        ("single-attribute form", QueryMode::Structured, 1usize),
        ("keyword box", QueryMode::Keyword, 1),
        ("two-field form (conjunctive)", QueryMode::Conjunctive { arity: 2 }, 2),
    ] {
        let mut spec = InterfaceSpec::permissive(table.schema(), 10);
        if min_attrs > 1 {
            spec = spec.requiring_attrs(min_attrs);
        }
        let server = WebDbServer::new(table.clone(), spec);
        let config = CrawlConfig::builder()
            .query_mode(mode)
            .known_target_size(n)
            .max_rounds(400 * n as u64)
            .build()
            .expect("valid crawl config");
        let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
        if min_attrs > 1 {
            crawler.add_seed_group(&[("Categories", "Categories_0"), ("Seller", "Seller_0")]);
            crawler.add_seed_group(&[("Categories", "Categories_1"), ("Location", "Location_0")]);
        } else {
            crawler.add_seed("Categories", "Categories_0");
            crawler.add_seed("Seller", "Seller_0");
        }
        let report = crawler.run();
        rows.push(vec![
            label.to_string(),
            pct(report.final_coverage.unwrap_or(0.0)),
            report.queries.to_string(),
            report.rounds.to_string(),
            format!("{:.2}", report.records as f64 / report.rounds.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["Interface", "final coverage", "queries", "rounds", "records/round"], &rows)
    );
    println!(
        "\nReading: conjunctive-only interfaces fragment the database graph (each\n\
         query is an intersection), so coverage convergence drops and the\n\
         per-round yield falls — the quantitative version of the paper's warning\n\
         about Car-domain sources."
    );
}
