//! E-F2 — regenerates **Figure 2** of the paper: the log–log degree
//! distributions of the DBLP and IMDB attribute-value graphs, which the
//! paper observes to be "very close to power-law".
//!
//! Prints the log-binned `(degree, frequency)` series for both datasets plus
//! the least-squares power-law fit (slope on log–log axes ≈ −α).

use dwc_bench::fmt::{num, render_table};
use dwc_bench::scale_from_env;
use dwc_datagen::presets::Preset;
use dwc_model::degree::DegreeDistribution;
use dwc_model::AvGraph;

fn main() {
    let scale = scale_from_env();
    println!("Figure 2 — relational link (AVG) degree distributions (scale {scale})\n");
    for p in [Preset::Dblp, Preset::Imdb] {
        let t = p.table(scale, 1);
        let g = AvGraph::from_table(&t);
        let dd = DegreeDistribution::of_graph(&g);
        let fit = dd.power_law_fit().expect("nontrivial degree distribution");
        println!(
            "{}: {} vertices, {} edges, max degree {}, mean degree {:.2}",
            p.name(),
            g.num_vertices(),
            g.num_edges(),
            dd.max_degree(),
            dd.mean_degree()
        );
        println!(
            "power-law fit: log10(freq) = {:.3}·log10(degree) + {:.3}   (R² = {:.3})",
            fit.slope, fit.intercept, fit.r_squared
        );
        let rows: Vec<Vec<String>> = dd
            .log_binned(4)
            .into_iter()
            .map(|(d, f)| {
                vec![num(d), num(f), format!("{:.3}", d.log10()), format!("{:.3}", f.log10())]
            })
            .collect();
        println!(
            "{}",
            render_table(&["degree (bin)", "frequency", "log10(deg)", "log10(freq)"], &rows)
        );
        assert!(fit.slope < -0.5, "degree distribution must be heavy-tailed (slope {})", fit.slope);
        println!();
    }
    println!(
        "Paper shape: straight descending lines on log-log axes for both datasets\n\
         (a few hub values, \"the massive many\" sparsely connected)."
    );
}
