//! Runs every experiment binary in sequence (at the current `DWC_SCALE`),
//! regenerating all tables and figures of the paper in one go.
//!
//! Equivalent to executing the paper artifacts (`table1_survey`,
//! `table2_schemas`, `fig2_degree_dist`, `fig3_policies`, `fig4_mmmi`,
//! `fig5_domain`, `fig6_limits`, `size_estimation`) followed by the extension
//! studies (`ablation_saturation`, `ablation_conjunctive`, `oracle_gap`,
//! `seed_sensitivity`) back to back.

use std::process::Command;

const BINARIES: [&str; 12] = [
    "table1_survey",
    "table2_schemas",
    "fig2_degree_dist",
    "fig3_policies",
    "fig4_mmmi",
    "fig5_domain",
    "fig6_limits",
    "size_estimation",
    "ablation_saturation",
    "ablation_conjunctive",
    "oracle_gap",
    "seed_sensitivity",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in BINARIES {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================\n");
        let path = bin_dir.join(name);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("failed to launch {name} ({e}); build it with `cargo build --release -p dwc-bench`");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
