//! E-F5 — regenerates **Figure 5** of the paper: domain-knowledge-based
//! query selection versus the greedy link-based baseline when crawling the
//! (simulated) Amazon DVD database.
//!
//! Two domain tables are built from nested subsets of the simulated IMDB:
//! DM(I) from movies released after 1960 and DM(II) from movies after 1980
//! (paper: 270k vs 190k records at full scale). All crawlers get the same
//! round budget (10,000 page requests at scale 1.0) and coverage snapshots
//! are taken every budget/10 rounds.
//!
//! Expected shape (paper): DM(I) ≥ DM(II) > GL at every snapshot; DM(I)
//! reaches ~95% coverage at the full budget while GL stays below ~70%.

use dwc_bench::fmt::{pct, render_table};
use dwc_bench::runner::{parallel_map, run_crawl};
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::{CrawlConfig, CrawlReport, DomainTable};
use dwc_datagen::paired::{subset_by_min_year, PairedDataset, PairedSpec};
use dwc_server::InterfaceSpec;
use std::sync::Arc;

fn main() {
    let scale = scale_from_env();
    let pair = PairedDataset::generate(PairedSpec { scale, ..Default::default() });
    let n = pair.target.num_records();
    let budget = ((10_000.0 * scale).round() as u64).max(200);
    let snap = (budget / 10).max(1);
    println!(
        "Figure 5 — domain knowledge vs greedy link on Amazon DVD (scale {scale})\n\
         target {} records; IMDB sample {} records; budget {budget} rounds, snapshots every {snap}\n",
        n,
        pair.sample.num_records()
    );

    let dm1 = Arc::new(DomainTable::build(subset_by_min_year(&pair.sample, 1960)));
    let dm2 = Arc::new(DomainTable::build(subset_by_min_year(&pair.sample, 1980)));
    println!(
        "DM(I): post-1960 sample, {} records, {} candidate values",
        dm1.num_records(),
        dm1.num_values()
    );
    println!(
        "DM(II): post-1980 sample, {} records, {} candidate values\n",
        dm2.num_records(),
        dm2.num_values()
    );

    let policies: Vec<(&str, PolicyKind)> = vec![
        ("GL", PolicyKind::GreedyLink),
        ("DM(I)", PolicyKind::Domain(Arc::clone(&dm1))),
        ("DM(II)", PolicyKind::Domain(Arc::clone(&dm2))),
    ];
    // Amazon caps any query's accessible results at 3200 (scaled).
    let cap = ((3200.0 * scale).round() as usize).max(32);
    let interface = InterfaceSpec::permissive(pair.target.schema(), 10).with_result_cap(cap);

    let jobs: Vec<Box<dyn FnOnce() -> CrawlReport + Send>> = policies
        .iter()
        .map(|(_, kind)| {
            let target = &pair.target;
            let interface = interface.clone();
            let kind = kind.clone();
            Box::new(move || {
                let seeds = pick_seeds(target, 2, 77);
                let config = CrawlConfig::builder()
                    .known_target_size(n)
                    .max_rounds(budget)
                    .build()
                    .expect("valid crawl config");
                run_crawl(target, interface, &kind, &seeds, config)
            }) as Box<dyn FnOnce() -> CrawlReport + Send>
        })
        .collect();
    let reports = parallel_map(jobs);

    let snapshots: Vec<u64> = (1..=10).map(|i| i * snap).collect();
    let mut header: Vec<String> = vec!["Policy".into()];
    header.extend(snapshots.iter().map(|s| format!("@{s}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = policies
        .iter()
        .zip(&reports)
        .map(|((label, _), report)| {
            let mut row = vec![label.to_string()];
            row.extend(snapshots.iter().map(|&s| pct(report.trace.coverage_at_rounds(s, n))));
            row
        })
        .collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("(cells = database coverage after the given number of communication rounds)\n");
    println!(
        "Paper shape: both DM crawlers dominate GL throughout; the larger domain\n\
         table DM(I) edges out DM(II); DM(I) ≈95% at full budget vs GL <70%."
    );
}
