//! Diagnostic (not a paper artifact): at the 85%-coverage saturation point,
//! how well do the local signals — degree, local count, max-PMI dependency —
//! predict each frontier candidate's TRUE harvest rate (oracle)?

use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::state::CandStatus;
use dwc_core::{CrawlConfig, Crawler};
use dwc_datagen::presets::Preset;
use dwc_model::ValueId;
use dwc_server::{InterfaceSpec, Query, WebDbServer};
use dwc_stats::pmi;
use std::collections::HashMap;

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    sxy / (sxx * syy).sqrt()
}

fn main() {
    let scale = scale_from_env();
    let table = Preset::Ebay.table(scale, 1);
    let n = table.num_records();
    let interface = InterfaceSpec::permissive(table.schema(), 10);
    let server = WebDbServer::new(table.clone(), interface);
    let config = CrawlConfig::builder()
        .known_target_size(n)
        .target_coverage(0.85)
        .build()
        .expect("valid crawl config");
    let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
    for (a, v) in pick_seeds(&table, 2, 1000) {
        crawler.add_seed(&a, &v);
    }
    while crawler.state().coverage().unwrap_or(0.0) < 0.85 {
        if crawler.step().is_none() {
            break;
        }
    }
    let state = crawler.state();
    // Max-PMI dependency per frontier candidate.
    let nloc = state.local.num_records();
    let mut pair: HashMap<(u32, u32), u32> = HashMap::new();
    for rec in state.local.records() {
        let issued: Vec<ValueId> =
            rec.iter().copied().filter(|&v| state.status_of(v) == CandStatus::Queried).collect();
        for &c in rec {
            if state.status_of(c) == CandStatus::Frontier {
                for &q in &issued {
                    *pair.entry((c.0, q.0)).or_insert(0) += 1;
                }
            }
        }
    }
    let mut dep: HashMap<u32, f64> = HashMap::new();
    for (&(c, q), &co) in &pair {
        let p = pmi(
            co as usize,
            state.local.count(ValueId(c)) as usize,
            state.local.count(ValueId(q)) as usize,
            nloc,
        )
        .unwrap_or(f64::NEG_INFINITY);
        let e = dep.entry(c).or_insert(f64::NEG_INFINITY);
        if p > *e {
            *e = p;
        }
    }
    // Snapshot frontier info, then release the crawler borrow so the server
    // oracle can be queried.
    struct Cand {
        query: Query,
        degree: f64,
        count: f64,
        dep: f64,
    }
    let coverage = state.coverage().unwrap();
    let cands: Vec<Cand> = state
        .vocab
        .iter_ids()
        .filter(|&v| state.status_of(v) == CandStatus::Frontier)
        .map(|v| {
            let attr = state.vocab.attr_of(v);
            Cand {
                query: Query::ByString {
                    attr: state.attr_names[attr.0 as usize].clone(),
                    value: state.vocab.value_str(v).to_owned(),
                },
                degree: state.local.degree(v) as f64,
                count: f64::from(state.local.count(v)),
                dep: dep.get(&v.0).copied().unwrap_or(-5.0).clamp(-5.0, 5.0),
            }
        })
        .collect();
    drop(crawler);
    // Oracle: true new/cost per frontier value.
    let mut xs_deg = Vec::new();
    let mut xs_cnt = Vec::new();
    let mut xs_dep = Vec::new();
    let mut ys = Vec::new();
    let frontier = cands.len();
    for c in &cands {
        let total = server.oracle_match_count(&c.query);
        let truly_new = total as f64 - c.count;
        let cost = total.div_ceil(10).max(1);
        xs_deg.push(c.degree);
        xs_cnt.push(c.count);
        xs_dep.push(c.dep);
        ys.push(truly_new / cost as f64);
    }
    println!("frontier {frontier} candidates at coverage {coverage:.3}");
    println!("corr(degree,  true rate) = {:+.3}", pearson(&xs_deg, &ys));
    println!("corr(count,   true rate) = {:+.3}", pearson(&xs_cnt, &ys));
    println!("corr(dep,     true rate) = {:+.3}", pearson(&xs_dep, &ys));
    let mean_rate = ys.iter().sum::<f64>() / ys.len() as f64;
    println!("mean true rate = {mean_rate:.3} new records/round");
    // Rate by dependency bucket.
    let mut buckets: Vec<(f64, Vec<f64>)> =
        vec![(-2.0, vec![]), (0.0, vec![]), (1.0, vec![]), (2.0, vec![]), (9.0, vec![])];
    for (d, y) in xs_dep.iter().zip(&ys) {
        for (hi, bucket) in buckets.iter_mut() {
            if d <= hi {
                bucket.push(*y);
                break;
            }
        }
    }
    for (hi, b) in &buckets {
        if !b.is_empty() {
            println!(
                "dep ≤ {hi:+.1}: n={:4}  mean true rate {:.3}",
                b.len(),
                b.iter().sum::<f64>() / b.len() as f64
            );
        }
    }
}
