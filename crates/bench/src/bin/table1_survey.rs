//! E-T1 — regenerates **Table 1** of the paper: the percentage of structured
//! web sources per domain that accept keyword search (K.W.) and that fit the
//! simplified single-attribute query model (S.Q.M.).
//!
//! The paper's table is a manual survey of 480 live 2005-era sources; here
//! the sources are sampled from a capability model calibrated to the paper's
//! rates (see `dwc-datagen::survey`), so "paper" vs "observed" quantifies
//! only sampling noise.

use dwc_bench::fmt::{pct, render_table};
use dwc_datagen::survey::{paper_table1, run_survey};

fn main() {
    let specs = paper_table1();
    let outcomes = run_survey(&specs, 2006);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.spec.domain.to_string(),
                o.spec.repository.to_string(),
                o.spec.num_sources.to_string(),
                pct(o.spec.p_keyword),
                pct(o.observed_keyword),
                pct(o.spec.p_single_attr),
                pct(o.observed_single_attr),
                pct(o.observed_crawlable),
            ]
        })
        .collect();
    println!("Table 1 — applicability of the simplified query model (480 simulated sources)\n");
    println!(
        "{}",
        render_table(
            &[
                "Domain",
                "Repo",
                "Sources",
                "K.W. paper",
                "K.W. observed",
                "S.Q.M. paper",
                "S.Q.M. observed",
                "Crawlable"
            ],
            &rows
        )
    );
    let total: usize = outcomes.iter().map(|o| o.spec.num_sources).sum();
    let crawlable: f64 =
        outcomes.iter().map(|o| o.observed_crawlable * o.spec.num_sources as f64).sum::<f64>()
            / total as f64;
    println!("{total} sources; {} crawlable by a single-value crawler overall.", pct(crawlable));
}
