//! E-SZ — regenerates the paper's Amazon-DVD **size estimation** (Section 5):
//!
//! "we conducted 6 independent crawls starting from 6 randomly selected seed
//! values. Each crawl terminates after 5000 interactions with the server.
//! Then we calculate the overlap size of every two result sets and based on
//! which, we obtain in total C(6,2) = 15 size estimations … Finally,
//! statistical hypothesis testing is applied (t-testing in our case) … with
//! 90% confidence, the Amazon DVD product database contains less than 37,000
//! data records."
//!
//! Here the target's true size is known (it is simulated), so the output also
//! reports the estimator's error.

use dwc_bench::runner::parallel_map;
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::{CrawlConfig, Crawler};
use dwc_datagen::paired::{PairedDataset, PairedSpec};
use dwc_server::{InterfaceSpec, WebDbServer};
use dwc_stats::{lincoln_petersen, one_sample_upper_bound};

const CRAWLS: u64 = 6;

fn main() {
    let scale = scale_from_env();
    let pair = PairedDataset::generate(PairedSpec { scale, ..Default::default() });
    let true_size = pair.target.num_records();
    let budget = ((5_000.0 * scale).round() as u64).max(100);
    println!(
        "Size estimation — overlap analysis of the Amazon DVD target (scale {scale})\n\
         {CRAWLS} independent random-policy crawls × {budget} interactions each\n"
    );

    // Six independent crawls, each from its own random seeds, each collecting
    // the set of record keys it saw.
    let jobs: Vec<Box<dyn FnOnce() -> Vec<u32> + Send>> = (0..CRAWLS)
        .map(|i| {
            let target = &pair.target;
            Box::new(move || {
                let interface = InterfaceSpec::permissive(target.schema(), 10);
                let server = WebDbServer::new(target.clone(), interface);
                let config =
                    CrawlConfig::builder().max_rounds(budget).build().expect("valid crawl config");
                let mut crawler = Crawler::new(&server, PolicyKind::Random(i).build(), config);
                for (attr, value) in pick_seeds(target, 1, 9_000 + i) {
                    crawler.add_seed(&attr, &value);
                }
                crawler.step(); // ensure at least one query before budget check
                while crawler.rounds() < budget {
                    if crawler.step().is_none() {
                        break;
                    }
                }
                // The harvested record keys, sorted for overlap counting.
                let mut keys: Vec<u32> = (0..target.num_records() as u32)
                    .filter(|&k| crawler.state().local.contains_key(u64::from(k)))
                    .collect();
                keys.sort_unstable();
                keys
            }) as Box<dyn FnOnce() -> Vec<u32> + Send>
        })
        .collect();
    let samples = parallel_map(jobs);
    for (i, s) in samples.iter().enumerate() {
        println!("crawl {} harvested {} records", i + 1, s.len());
    }

    let estimates = dwc_stats::pairwise_estimates(&samples);
    println!("\n{} pairwise Lincoln–Petersen estimates:", estimates.len());
    for chunk in estimates.chunks(5) {
        println!("  {}", chunk.iter().map(|e| format!("{e:.0}")).collect::<Vec<_>>().join("  "));
    }
    let mean = dwc_stats::mean(&estimates);
    let ub = one_sample_upper_bound(&estimates, 0.90).expect("≥2 estimates");
    println!("\nmean estimate        : {mean:.0}");
    println!("90% upper bound (t)  : {ub:.0}");
    println!("true simulated size  : {true_size}");
    println!(
        "relative error (mean): {:+.1}%",
        (mean - true_size as f64) / true_size as f64 * 100.0
    );
    println!(
        "\nPaper procedure: the same 15 estimates + one-sided t-test led to\n\
         \"with 90% confidence, the Amazon DVD product database contains less than\n\
         37,000 data records\" (true size unknown there)."
    );
    // Sanity: a single full-overlap estimate exists at minimum.
    assert!(!estimates.is_empty(), "crawls must overlap enough to estimate size");
    let _ = lincoln_petersen(samples[0].len(), samples[1].len(), 1);
}
