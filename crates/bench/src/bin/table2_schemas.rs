//! E-T2 — regenerates **Table 2** of the paper: the query-interface schemas
//! of the four controlled databases and their distinct attribute-value
//! counts, plus the Section 5 "well connected" check (99% of records in one
//! component).
//!
//! Run with `DWC_SCALE=1.0` for paper-sized datasets (eBay 20k / ACM 150k /
//! DBLP 500k / IMDB 400k records).

use dwc_bench::fmt::{pct, render_table};
use dwc_bench::scale_from_env;
use dwc_datagen::presets::Preset;
use dwc_model::components::Connectivity;

fn main() {
    let scale = scale_from_env();
    println!("Table 2 — database query interface schemas (scale {scale})\n");
    let mut rows = Vec::new();
    for p in Preset::ALL {
        let t = p.table(scale, 1);
        let queriable: Vec<String> =
            t.schema().queriable_attrs().iter().map(|&a| t.schema().attr(a).name.clone()).collect();
        let conn = Connectivity::analyze(&t);
        rows.push(vec![
            p.name().to_string(),
            t.num_records().to_string(),
            queriable.join(", "),
            t.num_distinct_values().to_string(),
            format!("{} (paper, at scale 1.0)", p.paper_distinct_values()),
            pct(conn.largest_component_coverage()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Records",
                "Queriable attributes",
                "Distinct values",
                "Paper |DAV|",
                "Largest component"
            ],
            &rows
        )
    );
    println!(
        "The paper reports all four controlled databases as \"well connected\": 99% of\n\
         records reachable from any record. The last column verifies the generated\n\
         datasets preserve that property."
    );
}
