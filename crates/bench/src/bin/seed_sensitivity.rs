//! Insight — sensitivity of each policy to the choice of seed values.
//!
//! The paper averages "four times with different seed values (starting
//! points) to avoid the possible noise due to individual seed". This binary
//! quantifies that noise: for each policy, many independent seed choices on
//! the same database, reporting the mean, standard deviation and spread of
//! the rounds needed to reach 90% coverage. A policy that exploits global
//! structure (GL's hubs) should be *less* seed-sensitive than one that
//! wanders (DFS).

use dwc_bench::fmt::{num, render_table};
use dwc_bench::runner::{parallel_map, run_crawl};
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::CrawlConfig;
use dwc_datagen::presets::Preset;
use dwc_server::InterfaceSpec;
use dwc_stats::{mean, std_dev};

const SEED_RUNS: u64 = 16;

fn main() {
    let scale = scale_from_env();
    let table = Preset::Acm.table(scale, 1);
    let n = table.num_records();
    let interface = InterfaceSpec::permissive(table.schema(), 10);
    println!(
        "Seed sensitivity (ACM-like, {} records): rounds to 90% coverage over {SEED_RUNS} seed choices\n",
        n
    );

    let policies = [
        PolicyKind::Bfs,
        PolicyKind::Dfs,
        PolicyKind::Random(5),
        PolicyKind::FreqGreedy,
        PolicyKind::GreedyLink,
    ];
    let mut rows = Vec::new();
    for kind in &policies {
        let jobs: Vec<Box<dyn FnOnce() -> Option<u64> + Send>> = (0..SEED_RUNS)
            .map(|run| {
                let table = &table;
                let interface = interface.clone();
                let kind = kind.clone();
                Box::new(move || {
                    let seeds = pick_seeds(table, 2, 3_000 + run);
                    let config = CrawlConfig::builder()
                        .known_target_size(n)
                        .target_coverage(0.9)
                        .max_rounds(500 * n as u64)
                        .build()
                        .expect("valid crawl config");
                    let report = run_crawl(table, interface, &kind, &seeds, config);
                    report.trace.rounds_to_coverage(0.9, n)
                }) as Box<dyn FnOnce() -> Option<u64> + Send>
            })
            .collect();
        let outcomes = parallel_map(jobs);
        let reached: Vec<f64> = outcomes.iter().flatten().map(|&r| r as f64).collect();
        let misses = outcomes.len() - reached.len();
        let (m, sd) = (mean(&reached), std_dev(&reached));
        let (lo, hi) = (
            reached.iter().copied().fold(f64::INFINITY, f64::min),
            reached.iter().copied().fold(0.0f64, f64::max),
        );
        rows.push(vec![
            kind.label().to_string(),
            num(m),
            num(sd),
            format!("{:.1}%", sd / m * 100.0),
            format!("{}–{}", lo as u64, hi as u64),
            misses.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Policy", "mean rounds", "std dev", "rel. spread", "min–max", "misses"],
            &rows
        )
    );
    println!(
        "\nReading: hub-following (GL) converges to the same dense core regardless of\n\
         where it starts, so its spread should be the narrowest; DFS amplifies the\n\
         seed's neighbourhood and swings wildly — empirical support for the paper's\n\
         practice of averaging over seeds."
    );
}
