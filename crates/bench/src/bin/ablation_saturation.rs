//! Ablation — automatic saturation detection for the MMMI switch-over.
//!
//! The paper switches from GL to MMMI at a known 85% coverage and notes
//! "currently we apply a set of heuristics to determine the saturation
//! point. Automatic saturation detection is left for future work." This
//! repo implements that future work: a harvest-rate-window trigger (switch
//! when the mean normalized harvest rate over the last `w` queries drops
//! below a threshold). This ablation compares the oracle coverage trigger
//! against several window detectors — a real crawler knows its recent
//! harvest rates but never its true coverage.

use dwc_bench::fmt::{opt_num, render_table};
use dwc_bench::runner::{mean_rounds_to_coverage, parallel_map, run_crawl};
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::{MmmiConfig, PolicyKind, Saturation};
use dwc_core::{CrawlConfig, CrawlReport};
use dwc_datagen::presets::Preset;
use dwc_server::InterfaceSpec;

const SEED_RUNS: u64 = 4;
const CHECKPOINTS: [f64; 3] = [0.90, 0.95, 0.99];

fn main() {
    let scale = (scale_from_env() * 5.0).min(1.0);
    let table = Preset::Ebay.table(scale, 1);
    let n = table.num_records();
    let interface = InterfaceSpec::permissive(table.schema(), 10);
    println!("Saturation-trigger ablation (eBay, {} records): when should MMMI take over?\n", n);

    let variants: Vec<(String, PolicyKind)> = vec![
        ("GL (never)".into(), PolicyKind::GreedyLink),
        (
            "oracle coverage 0.85".into(),
            PolicyKind::Mmmi(MmmiConfig { trigger: Saturation::Coverage(0.85), batch: 50 }),
        ),
        (
            "window 16 < 0.35".into(),
            PolicyKind::Mmmi(MmmiConfig {
                trigger: Saturation::HarvestWindow { window: 16, threshold: 0.35 },
                batch: 50,
            }),
        ),
        (
            "window 32 < 0.25".into(),
            PolicyKind::Mmmi(MmmiConfig {
                trigger: Saturation::HarvestWindow { window: 32, threshold: 0.25 },
                batch: 50,
            }),
        ),
        (
            "window 16 < 0.15".into(),
            PolicyKind::Mmmi(MmmiConfig {
                trigger: Saturation::HarvestWindow { window: 16, threshold: 0.15 },
                batch: 50,
            }),
        ),
        (
            "immediately".into(),
            PolicyKind::Mmmi(MmmiConfig { trigger: Saturation::Immediately, batch: 50 }),
        ),
    ];

    let jobs: Vec<Box<dyn FnOnce() -> CrawlReport + Send>> = variants
        .iter()
        .flat_map(|(_, kind)| {
            (0..SEED_RUNS).map(|run| {
                let table = &table;
                let interface = interface.clone();
                let kind = kind.clone();
                Box::new(move || {
                    let seeds = pick_seeds(table, 2, 500 + run);
                    let config = CrawlConfig::builder()
                        .known_target_size(n)
                        .max_rounds(500 * n as u64 + 10_000)
                        .build()
                        .expect("valid crawl config");
                    run_crawl(table, interface, &kind, &seeds, config)
                }) as Box<dyn FnOnce() -> CrawlReport + Send>
            })
        })
        .collect();
    let reports = parallel_map(jobs);

    let mut rows = Vec::new();
    for (vi, (label, _)) in variants.iter().enumerate() {
        let slice = &reports[vi * SEED_RUNS as usize..(vi + 1) * SEED_RUNS as usize];
        let mut row = vec![label.clone()];
        for &cov in &CHECKPOINTS {
            row.push(opt_num(mean_rounds_to_coverage(slice, cov, n)));
        }
        rows.push(row);
    }
    println!("{}", render_table(&["Trigger", "rounds@90%", "rounds@95%", "rounds@99%"], &rows));
    println!(
        "\nReading: a well-tuned harvest-window detector should track the oracle\n\
         coverage trigger closely; switching immediately wastes the early phase\n\
         where the greedy hub-following is unbeatable (the reason the paper\n\
         starts MMMI only at saturation)."
    );
}
