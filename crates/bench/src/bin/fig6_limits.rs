//! E-F6 — regenerates **Figure 6** of the paper: crawling performance under
//! tight per-query result-size caps. Amazon's own cap is 3200 ("quite
//! generous"); the paper reruns GL and DM on the Amazon DVD target with caps
//! of 10 and 50 and observes productivity drops of roughly 50% and 20%
//! respectively — "the result limit reduces the connectivity of the target
//! database, and thus delays the discovery of the hub nodes".

use dwc_bench::fmt::{pct, render_table};
use dwc_bench::runner::{parallel_map, run_crawl};
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::{CrawlConfig, CrawlReport, DomainTable};
use dwc_datagen::paired::{subset_by_min_year, PairedDataset, PairedSpec};
use dwc_server::InterfaceSpec;
use std::sync::Arc;

fn main() {
    let scale = scale_from_env();
    let pair = PairedDataset::generate(PairedSpec { scale, ..Default::default() });
    let n = pair.target.num_records();
    let budget = ((10_000.0 * scale).round() as u64).max(200);
    println!(
        "Figure 6 — effects of limited result size (Amazon DVD, {} records, scale {scale})\n\
         budget {budget} rounds; caps are scaled like the datasets\n",
        n
    );
    let dm1 = Arc::new(DomainTable::build(subset_by_min_year(&pair.sample, 1960)));
    let policies: Vec<(&str, PolicyKind)> =
        vec![("GL", PolicyKind::GreedyLink), ("DM", PolicyKind::Domain(dm1))];
    // The paper compares the generous 3200 cap against 50 and 10. At reduced
    // scale the generous cap shrinks with the dataset; the tight caps are
    // absolute (they model per-page access limits, not dataset size).
    let generous = ((3200.0 * scale).round() as usize).max(32);
    let caps: Vec<(String, usize)> = vec![
        (format!("limit {generous}"), generous),
        ("limit 50".to_string(), 50),
        ("limit 10".to_string(), 10),
    ];

    let jobs: Vec<Box<dyn FnOnce() -> CrawlReport + Send>> = policies
        .iter()
        .flat_map(|(_, kind)| {
            caps.iter().map(|(_, cap)| {
                let target = &pair.target;
                let kind = kind.clone();
                let interface =
                    InterfaceSpec::permissive(pair.target.schema(), 10).with_result_cap(*cap);
                Box::new(move || {
                    let seeds = pick_seeds(target, 2, 77);
                    let config = CrawlConfig::builder()
                        .known_target_size(n)
                        .max_rounds(budget)
                        .build()
                        .expect("valid crawl config");
                    run_crawl(target, interface, &kind, &seeds, config)
                }) as Box<dyn FnOnce() -> CrawlReport + Send>
            })
        })
        .collect();
    let reports = parallel_map(jobs);

    let mut rows = Vec::new();
    for (pi, (label, _)) in policies.iter().enumerate() {
        for (ci, (cap_label, _)) in caps.iter().enumerate() {
            let report = &reports[pi * caps.len() + ci];
            let final_cov = report.trace.coverage_at_rounds(budget, n);
            let half_cov = report.trace.coverage_at_rounds(budget / 2, n);
            rows.push(vec![
                format!("{label} ({cap_label})"),
                pct(half_cov),
                pct(final_cov),
                report.records.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["Policy (cap)", "coverage@half budget", "coverage@budget", "records"],
            &rows
        )
    );
    println!(
        "\nPaper shape: both methods degrade as the cap tightens — roughly 20% lower\n\
         productivity at limit 50 and 50% lower at limit 10 versus the generous cap."
    );
}
