//! E-F4 — regenerates **Figure 4** of the paper: the effect of the min–max
//! mutual-information re-ranking (MMMI) on harvesting the *marginal* database
//! content. On the eBay auction dataset, the crawler runs greedy-link until
//! 85% coverage and then either keeps GL or switches to MMMI ordering; the
//! figure compares rounds needed to push coverage from 85% to 100%.
//!
//! Expected shape (paper): GL+MMMI reaches the final coverage levels with
//! fewer rounds than plain GL (≈1,200 rounds saved at eBay scale 1.0).

use dwc_bench::fmt::{num, opt_num, render_table};
use dwc_bench::runner::{parallel_map, run_crawl};
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::{MmmiConfig, PolicyKind, Saturation};
use dwc_core::{CrawlConfig, CrawlReport};
use dwc_datagen::presets::Preset;
use dwc_server::InterfaceSpec;

const SEED_RUNS: u64 = 4;
// The paper's Figure 4 spans the 85–100% band; the exact-100% point is
// excluded because it is dominated by when the single last record happens to
// arrive (see EXPERIMENTS.md), so the deepest checkpoint here is 99%.
const CHECKPOINTS: [f64; 4] = [0.875, 0.90, 0.95, 0.99];

fn main() {
    // eBay is the smallest dataset (20k records at scale 1) and the
    // mutual-information statistics need tail mass to be informative, so this
    // experiment runs eBay at 5× the global scale (capped at paper size).
    let scale = (scale_from_env() * 5.0).min(1.0);
    let table = Preset::Ebay.table(scale, 1);
    let n = table.num_records();
    let interface = InterfaceSpec::permissive(table.schema(), 10);
    println!(
        "Figure 4 — effects of mutual-information-based ordering (eBay, {} records, scale {scale})\n",
        n
    );

    let policies: Vec<(&str, PolicyKind)> = vec![
        ("GL", PolicyKind::GreedyLink),
        (
            "GL+MMMI",
            PolicyKind::Mmmi(MmmiConfig { trigger: Saturation::Coverage(0.85), batch: 50 }),
        ),
    ];
    let jobs: Vec<Box<dyn FnOnce() -> CrawlReport + Send>> = policies
        .iter()
        .flat_map(|(_, kind)| {
            (0..SEED_RUNS).map(|run| {
                let table = &table;
                let interface = interface.clone();
                let kind = kind.clone();
                Box::new(move || {
                    let seeds = pick_seeds(table, 2, 500 + run);
                    let config = CrawlConfig::builder()
                        .known_target_size(n)
                        .max_rounds(500 * n as u64 + 10_000)
                        .build()
                        .expect("valid crawl config");
                    run_crawl(table, interface, &kind, &seeds, config)
                }) as Box<dyn FnOnce() -> CrawlReport + Send>
            })
        })
        .collect();
    let reports = parallel_map(jobs);

    let mut rows = Vec::new();
    let mut means: Vec<Vec<Option<f64>>> = Vec::new();
    for (pi, (label, _)) in policies.iter().enumerate() {
        let slice = &reports[pi * SEED_RUNS as usize..(pi + 1) * SEED_RUNS as usize];
        let mut row = vec![label.to_string()];
        let mut per_cov = Vec::new();
        for &cov in &CHECKPOINTS {
            let m = dwc_bench::runner::mean_rounds_to_coverage(slice, cov, n);
            row.push(opt_num(m));
            per_cov.push(m);
        }
        // Final coverage actually reached (frontier exhaustion caps it).
        let final_cov: f64 =
            slice.iter().map(|r| r.final_coverage.unwrap_or(0.0)).sum::<f64>() / slice.len() as f64;
        row.push(format!("{:.1}%", final_cov * 100.0));
        rows.push(row);
        means.push(per_cov);
    }
    println!(
        "{}",
        render_table(
            &["Policy", "rounds@87.5%", "rounds@90%", "rounds@95%", "rounds@99%", "final cov"],
            &rows
        )
    );
    for (i, &cov) in CHECKPOINTS.iter().enumerate() {
        if let (Some(gl), Some(mmmi)) = (means[0][i], means[1][i]) {
            println!(
                "at {:>4.0}% coverage: MMMI saves {} rounds ({:+.1}%)",
                cov * 100.0,
                num(gl - mmmi),
                (mmmi - gl) / gl * 100.0
            );
        }
    }
    println!(
        "\nPaper shape: identical until the 85% switch-over, then GL+MMMI reaches the\n\
         same marginal coverage with fewer communication rounds."
    );
}
