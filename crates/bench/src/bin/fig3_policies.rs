//! E-F3 — regenerates **Figure 3** of the paper: communication rounds needed
//! to reach 10–90% database coverage for the greedy link-based policy (GL)
//! versus the three naive policies (BFS, DFS, Random) on the four controlled
//! databases, averaged over four seed runs, page size k = 10.
//!
//! Expected shape (paper): GL consistently cheapest at every checkpoint, and
//! every method's cost inflects sharply past ~80% coverage (the
//! "low marginal benefit" phenomenon).
//!
//! Pass `--abort` to additionally run GL with the §3.4 abortion heuristics
//! enabled (the A-ABORT ablation).

use dwc_bench::fmt::{opt_num, render_table};
use dwc_bench::runner::{mean_rounds_to_coverage, parallel_map, run_crawl};
use dwc_bench::scale_from_env;
use dwc_bench::seeds::pick_seeds;
use dwc_core::policy::PolicyKind;
use dwc_core::{AbortPolicy, CrawlConfig, CrawlReport};
use dwc_datagen::presets::Preset;
use dwc_server::InterfaceSpec;

const CHECKPOINTS: [f64; 5] = [0.10, 0.30, 0.50, 0.70, 0.90];
const SEED_RUNS: u64 = 4;

fn main() {
    let with_abort = std::env::args().any(|a| a == "--abort");
    let scale = scale_from_env();
    println!(
        "Figure 3 — GL vs naive query selection, k=10, {SEED_RUNS} seed runs (scale {scale})\n"
    );

    let mut policies: Vec<(String, PolicyKind, AbortPolicy)> = vec![
        ("BFS".into(), PolicyKind::Bfs, AbortPolicy::never()),
        ("DFS".into(), PolicyKind::Dfs, AbortPolicy::never()),
        ("Random".into(), PolicyKind::Random(11), AbortPolicy::never()),
        ("GL".into(), PolicyKind::GreedyLink, AbortPolicy::never()),
    ];
    if with_abort {
        policies.push(("GL+abort".into(), PolicyKind::GreedyLink, AbortPolicy::standard()));
    }

    for preset in Preset::ALL {
        let table = preset.table(scale, 1);
        let n = table.num_records();
        let interface = InterfaceSpec::permissive(table.schema(), 10);
        // Jobs: one crawl per (policy, seed run).
        let jobs: Vec<Box<dyn FnOnce() -> CrawlReport + Send>> = policies
            .iter()
            .flat_map(|(_, kind, abort)| {
                (0..SEED_RUNS).map(|run| {
                    let table = &table;
                    let interface = interface.clone();
                    let kind = kind.clone();
                    let abort = abort.clone();
                    Box::new(move || {
                        let seeds = pick_seeds(table, 2, 1000 + run);
                        let config = CrawlConfig::builder()
                            .known_target_size(n)
                            .target_coverage(0.90)
                            .max_rounds(200 * n as u64 + 10_000)
                            .abort(abort)
                            .build()
                            .expect("valid crawl config");
                        run_crawl(table, interface, &kind, &seeds, config)
                    }) as Box<dyn FnOnce() -> CrawlReport + Send>
                })
            })
            .collect();
        let reports = parallel_map(jobs);

        let mut rows = Vec::new();
        for (pi, (label, _, _)) in policies.iter().enumerate() {
            let slice = &reports[pi * SEED_RUNS as usize..(pi + 1) * SEED_RUNS as usize];
            let mut row = vec![label.clone()];
            for &cov in &CHECKPOINTS {
                row.push(opt_num(mean_rounds_to_coverage(slice, cov, n)));
            }
            rows.push(row);
        }
        println!("{} — {} records (y = mean communication rounds)", preset.name(), n);
        println!("{}", render_table(&["Policy", "10%", "30%", "50%", "70%", "90%"], &rows));
    }
    println!(
        "Paper shape: GL achieves every coverage level with the least rounds on all\n\
         four datasets; costs for all methods rise steeply past ~80% coverage."
    );
}
