//! Crawl-run orchestration: build a server, seed a crawler, run, report —
//! and a small crossbeam-based parallel map for sweeping configurations.

use dwc_core::policy::PolicyKind;
use dwc_core::{CrawlConfig, CrawlReport, Crawler};
use dwc_model::UniversalTable;
use dwc_server::{InterfaceSpec, WebDbServer};

/// One crawl: fresh server over (a clone of) the table, seeded crawler, run.
pub fn run_crawl(
    table: &UniversalTable,
    interface: InterfaceSpec,
    policy: &PolicyKind,
    seeds: &[(String, String)],
    config: CrawlConfig,
) -> CrawlReport {
    let server = WebDbServer::new(table.clone(), interface);
    let mut crawler = Crawler::new(&server, policy.build(), config);
    for (attr, value) in seeds {
        crawler.add_seed(attr, value);
    }
    crawler.run()
}

/// Averages `rounds_to_coverage` over several reports; `None` if any run
/// failed to reach the checkpoint.
pub fn mean_rounds_to_coverage(
    reports: &[CrawlReport],
    coverage: f64,
    target_size: usize,
) -> Option<f64> {
    let mut sum = 0.0;
    for r in reports {
        sum += r.trace.rounds_to_coverage(coverage, target_size)? as f64;
    }
    Some(sum / reports.len() as f64)
}

/// Runs `jobs` closures on worker threads (bounded by available parallelism)
/// and returns their results in input order.
pub fn parallel_map<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let queue = crossbeam::queue::SegQueue::new();
    for (i, job) in jobs.into_iter().enumerate() {
        queue.push((i, job));
    }
    let results_mutex = std::sync::Mutex::new(&mut results);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                while let Some((i, job)) = queue.pop() {
                    let out = job();
                    results_mutex.lock().expect("no panics while holding the lock")[i] = Some(out);
                }
            });
        }
    })
    .expect("worker thread panicked");
    results.into_iter().map(|r| r.expect("every job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::pick_seeds;
    use dwc_datagen::presets::Preset;

    #[test]
    fn run_crawl_reaches_full_coverage_on_tiny_source() {
        let t = Preset::Ebay.table(0.005, 1);
        let n = t.num_records();
        let seeds = pick_seeds(&t, 2, 3);
        let interface = InterfaceSpec::permissive(t.schema(), 10);
        let config = CrawlConfig { known_target_size: Some(n), ..Default::default() };
        let report = run_crawl(&t, interface, &PolicyKind::GreedyLink, &seeds, config);
        assert!(
            report.final_coverage.unwrap() > 0.95,
            "well-connected source must be almost fully crawlable, got {:?}",
            report.final_coverage
        );
    }

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0usize..32).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_map(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn mean_rounds_handles_unreached_checkpoints() {
        let t = Preset::Ebay.table(0.005, 1);
        let n = t.num_records();
        let seeds = pick_seeds(&t, 1, 3);
        let interface = InterfaceSpec::permissive(t.schema(), 10);
        let config =
            CrawlConfig { known_target_size: Some(n), max_rounds: Some(2), ..Default::default() };
        let report = run_crawl(&t, interface, &PolicyKind::Bfs, &seeds, config);
        let reports = vec![report];
        assert!(mean_rounds_to_coverage(&reports, 0.99, n).is_none());
    }
}
