//! Minimal aligned-table and series printers for experiment output.

/// Renders rows as an aligned plain-text table with a header row.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', widths[i] - cell.len()));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.extend(std::iter::repeat_n('-', rule));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Formats a float with limited precision, trimming trailing zeros.
pub fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional count; `None` prints as an em-dash.
pub fn opt_num(v: Option<f64>) -> String {
    v.map(num).unwrap_or_else(|| "—".to_string())
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "22".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].rfind('1').unwrap(), col);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(1.23456), "1.235");
        assert_eq!(opt_num(None), "—");
        assert_eq!(pct(0.856), "85.6%");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
