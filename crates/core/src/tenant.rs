//! Tenancy primitives: identities, per-tenant policy knobs, usage metering.
//!
//! The fleet engine schedules *jobs*, but capacity, fairness, and billing
//! are questions about *tenants* — the principals on whose behalf jobs run.
//! This module holds the vocabulary shared by every layer that carries the
//! tenant dimension:
//!
//! * [`TenantId`] / [`Tenant`] — the registry entry validated by
//!   [`crate::fleet::FleetConfigBuilder::tenants`]: scheduling weight, round
//!   quota, admission [`RateLimit`], and dispatch priority.
//! * [`UsageLedger`] — the per-tenant fold of the fleet event stream
//!   (rounds, pages, admissions, sheds, retransmits, preemptions), reported
//!   in [`crate::fleet::FleetReport::usage`] and reproducible bit-for-bit by
//!   replaying the recorded events.
//! * [`TokenBucket`] — the serving-tier admission gate enforcing a tenant's
//!   [`RateLimit`] at the protocol seam.
//!
//! A fleet with an **empty registry** is tenant-blind and behaves exactly as
//! before tenancy existed; nothing here is on any hot path unless tenants
//! are configured.

use crate::config::ConfigError;
use std::time::Instant;

/// Identity of a tenant — the billing/fairness principal a job runs under.
///
/// A plain newtype over `u32` so it can be carried in events, serialized in
/// the flat JSON event stream, and used as a map key without ceremony.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Admission rate limit enforced per tenant at the serving tier: a token
/// bucket of `burst` capacity refilled at `per_sec` tokens per second.
///
/// `per_sec == 0` is legal and means "no refill": the tenant gets exactly
/// `burst` admissions, ever — useful for tests and hard caps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity: how many requests may be admitted back to back.
    pub burst: u32,
    /// Steady-state refill rate in tokens per second.
    pub per_sec: u32,
}

impl RateLimit {
    /// A limit admitting bursts of `burst` requests, refilling at `per_sec`
    /// requests per second.
    pub fn new(burst: u32, per_sec: u32) -> Self {
        RateLimit { burst, per_sec }
    }
}

/// One registry entry: a tenant and its scheduling/admission policy.
///
/// Built fluently — `Tenant::new(3).with_weight(5).with_quota(200)` — and
/// validated as a set by [`validate_tenants`] (invoked from the
/// `FleetConfig` and `ServeConfig` builders): zero weights, zero quotas,
/// zero-burst rate limits, and duplicate ids are rejected at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tenant {
    /// The tenant's identity; unique within a registry.
    pub id: TenantId,
    /// Weighted-fair scheduling weight. A weight-5 tenant receives 5× the
    /// rounds of a weight-1 tenant under contention. Must be positive.
    pub weight: u32,
    /// Optional hard cap on total Def. 2.3 rounds the tenant may consume in
    /// one fleet run; once reached the tenant's jobs are parked
    /// (cooperative preemption at the next slice boundary).
    pub round_quota: Option<u64>,
    /// Optional serving-tier admission rate limit.
    pub rate: Option<RateLimit>,
    /// Dispatch priority: within one allocation cycle, slices of
    /// higher-priority tenants are handed to the pool first. Affects only
    /// dispatch *order*, never grant *amounts*, so reports are unchanged.
    pub priority: u8,
}

impl Tenant {
    /// A default tenant: weight 1, no quota, no rate limit, priority 0.
    pub fn new(id: u32) -> Self {
        Tenant { id: TenantId(id), weight: 1, round_quota: None, rate: None, priority: 0 }
    }

    /// Sets the weighted-fair scheduling weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Caps the tenant's total rounds for the run.
    pub fn with_quota(mut self, rounds: u64) -> Self {
        self.round_quota = Some(rounds);
        self
    }

    /// Attaches a serving-tier admission rate limit.
    pub fn with_rate(mut self, rate: RateLimit) -> Self {
        self.rate = Some(rate);
        self
    }

    /// Sets the dispatch priority (higher dispatches first).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// Validates a tenant registry: positive weights, positive quotas,
/// positive rate-limit bursts, unique ids.
///
/// Shared by the fleet and serve config builders so both seams reject the
/// same misconfigurations identically.
pub fn validate_tenants(tenants: &[Tenant]) -> Result<(), ConfigError> {
    let mut seen = std::collections::BTreeSet::new();
    for t in tenants {
        if t.weight == 0 {
            return Err(ConfigError::ZeroTenantWeight(t.id.0));
        }
        if t.round_quota == Some(0) {
            return Err(ConfigError::ZeroTenantQuota(t.id.0));
        }
        if let Some(rate) = t.rate {
            if rate.burst == 0 {
                return Err(ConfigError::ZeroBudget("rate limit burst"));
            }
        }
        if !seen.insert(t.id) {
            return Err(ConfigError::DuplicateTenant(t.id.0));
        }
    }
    Ok(())
}

/// Per-tenant usage metering: the fold of the tenant-tagged fleet events.
///
/// `rounds` and `pages` are folded as per-job *cumulative maxima* from
/// `SliceCompleted` / `JobAttached` (mirroring the coordinator's own
/// `rounds_used` bookkeeping), so they stay exact under worker panics,
/// restarts, and checkpoint resumes; the counters are plain event counts.
/// The conservation invariant — the `rounds` fields of all ledgers sum to
/// `FleetReport::total_rounds` exactly — is tested property-style in
/// `tests/fleet_sched.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UsageLedger {
    /// Def. 2.3 rounds billed to the tenant (includes shed / cancelled /
    /// retransmitted requests billed through the serving tier).
    pub rounds: u64,
    /// Page-request rounds actually executed against sources.
    pub pages: u64,
    /// Requests admitted through the tenant's token bucket.
    pub admitted: u64,
    /// Requests shed at admission and billed to the tenant.
    pub sheds: u64,
    /// Duplicate frames answered by retransmission, billed to the tenant.
    pub retransmits: u64,
    /// Times one of the tenant's jobs was parked at a slice boundary
    /// (quota exhaustion or tripped breaker under preemption).
    pub preempted: u64,
}

/// A token bucket enforcing a [`RateLimit`].
///
/// Time is passed in explicitly (`Instant`) so tests can drive refill
/// deterministically; the serving tier passes `Instant::now()` at each
/// admission decision.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket for `limit`, with refill anchored at `now`.
    pub fn new(limit: RateLimit, now: Instant) -> Self {
        TokenBucket {
            capacity: f64::from(limit.burst),
            tokens: f64::from(limit.burst),
            per_sec: f64::from(limit.per_sec),
            last: now,
        }
    }

    /// Attempts to take one token at time `now`; returns whether the
    /// request is admitted. Refill accrues continuously and is capped at
    /// the burst capacity.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn builder_defaults_and_fluent_setters() {
        let t = Tenant::new(7)
            .with_weight(5)
            .with_quota(100)
            .with_rate(RateLimit::new(8, 2))
            .with_priority(3);
        assert_eq!(t.id, TenantId(7));
        assert_eq!(t.weight, 5);
        assert_eq!(t.round_quota, Some(100));
        assert_eq!(t.rate, Some(RateLimit { burst: 8, per_sec: 2 }));
        assert_eq!(t.priority, 3);
        let d = Tenant::new(0);
        assert_eq!((d.weight, d.round_quota, d.rate, d.priority), (1, None, None, 0));
    }

    #[test]
    fn registry_validation_rejects_each_misconfiguration() {
        assert_eq!(
            validate_tenants(&[Tenant::new(1).with_weight(0)]),
            Err(ConfigError::ZeroTenantWeight(1))
        );
        assert_eq!(
            validate_tenants(&[Tenant::new(2).with_quota(0)]),
            Err(ConfigError::ZeroTenantQuota(2))
        );
        assert_eq!(
            validate_tenants(&[Tenant::new(0), Tenant::new(1), Tenant::new(0)]),
            Err(ConfigError::DuplicateTenant(0))
        );
        assert_eq!(
            validate_tenants(&[Tenant::new(3).with_rate(RateLimit::new(0, 5))]),
            Err(ConfigError::ZeroBudget("rate limit burst"))
        );
        assert_eq!(validate_tenants(&[Tenant::new(0), Tenant::new(1)]), Ok(()));
        assert_eq!(validate_tenants(&[]), Ok(()));
    }

    #[test]
    fn token_bucket_admits_burst_then_throttles_then_refills() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(RateLimit::new(3, 2), t0);
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "burst exhausted");
        // One second at 2/s refills two tokens.
        let t1 = t0 + Duration::from_secs(1);
        assert!(bucket.try_take(t1));
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
    }

    #[test]
    fn zero_refill_bucket_is_a_hard_cap() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(RateLimit::new(2, 0), t0);
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0 + Duration::from_secs(3600)), "never refills");
    }

    #[test]
    fn refill_never_exceeds_burst_capacity() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(RateLimit::new(2, 100), t0);
        assert!(bucket.try_take(t0));
        // A long idle period must not bank more than `burst` tokens.
        let t1 = t0 + Duration::from_secs(60);
        assert!(bucket.try_take(t1));
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
    }
}
