//! Crawl traces: (communication rounds, queries, records) time series.
//!
//! The paper's figures are read off exactly such series: Figure 3 plots
//! rounds needed to reach coverage checkpoints; Figures 5–6 plot coverage
//! snapshots every 1,000 rounds. [`CrawlTrace`] records one point per
//! completed query and answers both kinds of lookup.

/// One point of a crawl trace, taken after a query completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Cumulative communication rounds (result-page requests).
    pub rounds: u64,
    /// Cumulative queries issued.
    pub queries: u64,
    /// Records harvested so far (`|DB_local|`).
    pub records: u64,
}

/// A [`TracePoint`] that would move the series backwards, rejected by
/// [`CrawlTrace::try_push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceError {
    /// The series' current last point.
    pub last: TracePoint,
    /// The non-monotone point that was rejected.
    pub rejected: TracePoint,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-monotone trace point: ({}, {}, {}) after ({}, {}, {})",
            self.rejected.rounds,
            self.rejected.queries,
            self.rejected.records,
            self.last.rounds,
            self.last.queries,
            self.last.records,
        )
    }
}

impl std::error::Error for TraceError {}

/// A monotone series of [`TracePoint`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlTrace {
    points: Vec<TracePoint>,
}

impl CrawlTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point if rounds/queries/records are all non-decreasing;
    /// rejects it with a [`TraceError`] otherwise. The lookup methods
    /// (`rounds_to_coverage`, `records_at_rounds`) binary-search the series
    /// and silently return wrong answers on a non-monotone one — so a bad
    /// point must never get in.
    pub fn try_push(&mut self, p: TracePoint) -> Result<(), TraceError> {
        if let Some(&last) = self.points.last() {
            if p.rounds < last.rounds || p.queries < last.queries || p.records < last.records {
                return Err(TraceError { last, rejected: p });
            }
        }
        self.points.push(p);
        Ok(())
    }

    /// Appends a point, clamping each counter up to the series' last value
    /// when it would otherwise move backwards. Counters can regress in
    /// crash-recovery paths (a worker restarted from a checkpoint older
    /// than its last report); clamping keeps the series monotone — and the
    /// lookups correct — instead of crashing the crawl over analytics.
    pub fn push(&mut self, p: TracePoint) {
        if let Err(e) = self.try_push(p) {
            let last = e.last;
            self.points.push(TracePoint {
                rounds: p.rounds.max(last.rounds),
                queries: p.queries.max(last.queries),
                records: p.records.max(last.records),
            });
        }
    }

    /// All recorded points.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The last point, if any.
    pub fn last(&self) -> Option<TracePoint> {
        self.points.last().copied()
    }

    /// Communication rounds needed to first reach `coverage` of
    /// `target_size` records (Figure 3's y-axis). `None` if never reached.
    pub fn rounds_to_coverage(&self, coverage: f64, target_size: usize) -> Option<u64> {
        let needed = (coverage * target_size as f64).ceil() as u64;
        self.points.iter().find(|p| p.records >= needed).map(|p| p.rounds)
    }

    /// Records harvested by the time `rounds` communication rounds were
    /// spent (Figures 5–6's snapshot reads): the last point with
    /// `p.rounds ≤ rounds`.
    pub fn records_at_rounds(&self, rounds: u64) -> u64 {
        match self.points.partition_point(|p| p.rounds <= rounds) {
            0 => 0,
            i => self.points[i - 1].records,
        }
    }

    /// Coverage at a round budget, given the (possibly estimated) target size.
    pub fn coverage_at_rounds(&self, rounds: u64, target_size: usize) -> f64 {
        if target_size == 0 {
            return 0.0;
        }
        self.records_at_rounds(rounds) as f64 / target_size as f64
    }

    /// Exports the trace as CSV (`rounds,queries,records` with a header) —
    /// ready for plotting the paper's figures from a real crawl.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(32 + self.points.len() * 24);
        out.push_str("rounds,queries,records\n");
        for p in &self.points {
            out.push_str(&format!("{},{},{}\n", p.rounds, p.queries, p.records));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> CrawlTrace {
        let mut t = CrawlTrace::new();
        t.push(TracePoint { rounds: 2, queries: 1, records: 15 });
        t.push(TracePoint { rounds: 5, queries: 2, records: 40 });
        t.push(TracePoint { rounds: 9, queries: 3, records: 70 });
        t.push(TracePoint { rounds: 20, queries: 4, records: 90 });
        t
    }

    #[test]
    fn rounds_to_coverage_finds_first_crossing() {
        let t = demo_trace();
        assert_eq!(t.rounds_to_coverage(0.10, 100), Some(2));
        assert_eq!(t.rounds_to_coverage(0.40, 100), Some(5));
        assert_eq!(t.rounds_to_coverage(0.41, 100), Some(9));
        assert_eq!(t.rounds_to_coverage(0.90, 100), Some(20));
        assert_eq!(t.rounds_to_coverage(0.95, 100), None);
    }

    #[test]
    fn records_at_rounds_takes_floor_point() {
        let t = demo_trace();
        assert_eq!(t.records_at_rounds(0), 0);
        assert_eq!(t.records_at_rounds(2), 15);
        assert_eq!(t.records_at_rounds(8), 40);
        assert_eq!(t.records_at_rounds(9), 70);
        assert_eq!(t.records_at_rounds(1000), 90);
    }

    #[test]
    fn coverage_at_rounds_scales() {
        let t = demo_trace();
        assert!((t.coverage_at_rounds(9, 100) - 0.7).abs() < 1e-12);
        assert_eq!(t.coverage_at_rounds(9, 0), 0.0);
    }

    #[test]
    fn csv_export_shape() {
        let t = demo_trace();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "rounds,queries,records");
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1], "2,1,15");
        assert_eq!(lines[4], "20,4,90");
    }

    #[test]
    fn last_and_points_accessors() {
        let t = demo_trace();
        assert_eq!(t.points().len(), 4);
        assert_eq!(t.last().unwrap().records, 90);
        assert!(CrawlTrace::new().last().is_none());
    }

    #[test]
    fn try_push_rejects_regressions() {
        let mut t = demo_trace();
        let bad = TracePoint { rounds: 19, queries: 5, records: 95 };
        let err = t.try_push(bad).unwrap_err();
        assert_eq!(err.rejected, bad);
        assert_eq!(err.last.rounds, 20);
        assert_eq!(t.points().len(), 4, "rejected point must not land");
        assert!(err.to_string().contains("non-monotone"));
        t.try_push(TracePoint { rounds: 21, queries: 5, records: 95 }).unwrap();
        assert_eq!(t.points().len(), 5);
    }

    #[test]
    fn push_clamps_instead_of_regressing() {
        let mut t = demo_trace();
        t.push(TracePoint { rounds: 7, queries: 9, records: 10 });
        let last = t.last().unwrap();
        assert_eq!(last, TracePoint { rounds: 20, queries: 9, records: 90 });
        // Lookups still work on the clamped series.
        assert_eq!(t.records_at_rounds(20), 90);
    }
}
