//! `DB_local`: the crawler's local copy of the harvested database.
//!
//! Stores every harvested record (deduplicated by the source's record key),
//! and maintains incrementally the statistics the selection policies need:
//!
//! * `num(q, DB_local)` — per-value local match counts (Definition 2.5's
//!   harvest-rate numerator, equation 4.1's numerator),
//! * the local attribute-value graph's **exact degrees** (the greedy
//!   link-based policy of §3.2 ranks candidates by degree in `G_local`),
//! * the record list itself, over which the MMMI policy's batch
//!   mutual-information recomputation iterates (§3.3).

use dwc_model::{PackedLists, ValueId};
use std::collections::HashSet;

/// The crawler's local database and statistics table.
///
/// Records are held in a [`PackedLists`] arena (one flat allocation plus an
/// offset column) rather than one boxed slice per record: at paper scale the
/// per-record allocator overhead dominated the record bytes themselves.
#[derive(Debug, Default)]
pub struct LocalDb {
    seen_keys: HashSet<u64>,
    /// Source keys in insertion order, parallel to `records`.
    keys: Vec<u64>,
    records: PackedLists<ValueId>,
    value_count: Vec<u32>,
    degree: Vec<u32>,
    /// Packed undirected edge keys `(min << 32) | max` of `G_local`.
    edges: HashSet<u64>,
}

impl LocalDb {
    /// An empty local database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of harvested records (`|DB_local|`).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Whether the record with this source key has been harvested already.
    pub fn contains_key(&self, key: u64) -> bool {
        self.seen_keys.contains(&key)
    }

    /// `num(q, DB_local)`: local records containing `v`.
    #[inline]
    pub fn count(&self, v: ValueId) -> u32 {
        self.value_count.get(v.index()).copied().unwrap_or(0)
    }

    /// Degree of `v` in the local attribute-value graph `G_local`.
    #[inline]
    pub fn degree(&self, v: ValueId) -> u32 {
        self.degree.get(v.index()).copied().unwrap_or(0)
    }

    /// Number of distinct edges in `G_local`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The harvested records (sorted, deduplicated value-id sets).
    pub fn records(&self) -> impl Iterator<Item = &[ValueId]> {
        self.records.iter()
    }

    /// Records inserted at or after index `start` (records are append-only,
    /// so `start = previous num_records()` iterates exactly the new ones).
    pub fn records_since(&self, start: usize) -> impl Iterator<Item = &[ValueId]> {
        self.records.iter_since(start)
    }

    /// `(source key, values)` pairs in insertion order (checkpointing).
    pub fn iter_keyed(&self) -> impl Iterator<Item = (u64, &[ValueId])> {
        self.keys.iter().copied().zip(self.records.iter())
    }

    /// `(source key, values)` pairs inserted at or after index `start` — the
    /// incremental flavor of [`LocalDb::iter_keyed`] the state journal uses
    /// to frame only what a delta added.
    pub fn keyed_since(&self, start: usize) -> impl Iterator<Item = (u64, &[ValueId])> {
        let start = start.min(self.keys.len());
        self.keys[start..].iter().copied().zip(self.records.iter_since(start))
    }

    /// Heap bytes held by the record arena and key/statistics columns
    /// (capacity-based, matching what RSS accounting sees).
    pub fn heap_bytes(&self) -> usize {
        self.records.heap_bytes()
            + self.keys.capacity() * std::mem::size_of::<u64>()
            + self.value_count.capacity() * std::mem::size_of::<u32>()
            + self.degree.capacity() * std::mem::size_of::<u32>()
    }

    /// Inserts a record if its key is new. `values` are crawler-vocabulary
    /// ids. Returns `true` when the record was new (a *harvested* record in
    /// the paper's sense; duplicates are the waste the policies minimize).
    pub fn insert(&mut self, key: u64, mut values: Vec<ValueId>) -> bool {
        if !self.seen_keys.insert(key) {
            return false;
        }
        values.sort_unstable();
        values.dedup();
        let max_idx = values.last().map_or(0, |v| v.index());
        if max_idx >= self.value_count.len() {
            self.value_count.resize(max_idx + 1, 0);
            self.degree.resize(max_idx + 1, 0);
        }
        for &v in &values {
            self.value_count[v.index()] += 1;
        }
        // Update exact local-graph degrees: each new clique edge bumps both
        // endpoints.
        for (i, &a) in values.iter().enumerate() {
            for &b in &values[i + 1..] {
                let packed = (u64::from(a.0) << 32) | u64::from(b.0);
                if self.edges.insert(packed) {
                    self.degree[a.index()] += 1;
                    self.degree[b.index()] += 1;
                }
            }
        }
        self.keys.push(key);
        self.records.push(&values);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u32) -> ValueId {
        ValueId(x)
    }

    #[test]
    fn insert_dedups_by_key() {
        let mut db = LocalDb::new();
        assert!(db.insert(1, vec![v(0), v(1)]));
        assert!(!db.insert(1, vec![v(0), v(1)]));
        assert_eq!(db.num_records(), 1);
        assert!(db.contains_key(1));
        assert!(!db.contains_key(2));
    }

    #[test]
    fn counts_accumulate() {
        let mut db = LocalDb::new();
        db.insert(1, vec![v(0), v(1)]);
        db.insert(2, vec![v(0), v(2)]);
        assert_eq!(db.count(v(0)), 2);
        assert_eq!(db.count(v(1)), 1);
        assert_eq!(db.count(v(9)), 0);
    }

    #[test]
    fn degrees_match_local_graph() {
        let mut db = LocalDb::new();
        // Two records sharing v0: G_local = triangle-ish.
        db.insert(1, vec![v(0), v(1)]);
        db.insert(2, vec![v(0), v(2)]);
        assert_eq!(db.degree(v(0)), 2);
        assert_eq!(db.degree(v(1)), 1);
        assert_eq!(db.degree(v(2)), 1);
        assert_eq!(db.num_edges(), 2);
        // Re-observing the same edge through another record adds nothing.
        db.insert(3, vec![v(0), v(1)]);
        assert!(!db.insert(3, vec![v(0), v(1)]));
        assert_eq!(db.degree(v(0)), 2);
        assert_eq!(db.num_edges(), 2);
    }

    #[test]
    fn record_values_dedup_within_record() {
        let mut db = LocalDb::new();
        db.insert(7, vec![v(3), v(3), v(1)]);
        assert_eq!(db.count(v(3)), 1);
        let rec: Vec<_> = db.records().next().unwrap().to_vec();
        assert_eq!(rec, vec![v(1), v(3)]);
    }

    #[test]
    fn clique_edges_from_larger_record() {
        let mut db = LocalDb::new();
        db.insert(1, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(db.num_edges(), 6, "C(4,2) clique edges");
        for i in 0..4 {
            assert_eq!(db.degree(v(i)), 3);
        }
    }

    #[test]
    fn keyed_since_yields_the_new_tail() {
        let mut db = LocalDb::new();
        db.insert(10, vec![v(0)]);
        let mark = db.num_records();
        db.insert(11, vec![v(2), v(1)]);
        let tail: Vec<(u64, Vec<ValueId>)> =
            db.keyed_since(mark).map(|(k, r)| (k, r.to_vec())).collect();
        assert_eq!(tail, vec![(11, vec![v(1), v(2)])]);
        assert_eq!(db.keyed_since(99).count(), 0);
        assert!(db.heap_bytes() > 0);
    }

    #[test]
    fn empty_record_is_counted_but_harmless() {
        let mut db = LocalDb::new();
        assert!(db.insert(5, vec![]));
        assert_eq!(db.num_records(), 1);
        assert_eq!(db.num_edges(), 0);
    }
}
