//! Crawl-state reporting: a human-readable summary of the Query Selector's
//! statistics table (§2.5) at any point in a crawl.
//!
//! Answers the questions an operator asks a long-running crawler: how big is
//! the frontier and what is it made of, how much of the recent effort is
//! duplicates, and which hub values carry the local graph — and, for fleets,
//! which jobs crashed, tripped their breaker, or were abandoned
//! ([`crate::fleet::FleetReport`]'s `Display`).

use crate::fleet::FleetReport;
use crate::state::{CandStatus, CrawlState};
use dwc_model::ValueId;
use std::fmt;

/// Per-attribute breakdown of the crawl vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBreakdown {
    /// Attribute name.
    pub attr: String,
    /// Values waiting in `L_to-query`.
    pub frontier: usize,
    /// Values already issued.
    pub queried: usize,
    /// Values known but not candidates (domain-table-only or not queriable).
    pub undiscovered: usize,
}

/// A snapshot summary of a crawl's statistics table.
#[derive(Debug, Clone, PartialEq)]
pub struct CrawlSummary {
    /// Records harvested (`|DB_local|`).
    pub records: usize,
    /// Distinct edges of the local attribute-value graph.
    pub local_edges: usize,
    /// Queries issued so far.
    pub queries: usize,
    /// Per-attribute vocabulary breakdown.
    pub attrs: Vec<AttrBreakdown>,
    /// Mean normalized harvest rate over the recent window, if available.
    pub recent_harvest: Option<f64>,
    /// The top local-graph hubs: `(attribute, value, degree)`.
    pub top_hubs: Vec<(String, String, u32)>,
    /// True coverage, when the target size is known.
    pub coverage: Option<f64>,
}

impl CrawlSummary {
    /// Builds the summary from a crawl state, keeping the `top_n` hubs.
    pub fn from_state(state: &CrawlState, top_n: usize) -> Self {
        let mut attrs: Vec<AttrBreakdown> = state
            .attr_names
            .iter()
            .map(|name| AttrBreakdown {
                attr: name.clone(),
                frontier: 0,
                queried: 0,
                undiscovered: 0,
            })
            .collect();
        let mut hubs: Vec<(u32, ValueId)> = Vec::new();
        for v in state.vocab.iter_ids() {
            let slot = &mut attrs[state.vocab.attr_of(v).0 as usize];
            match state.status_of(v) {
                CandStatus::Frontier => slot.frontier += 1,
                CandStatus::Queried => slot.queried += 1,
                CandStatus::Undiscovered => slot.undiscovered += 1,
            }
            let d = state.local.degree(v);
            if d > 0 {
                hubs.push((d, v));
            }
        }
        hubs.sort_unstable_by_key(|&(d, v)| (std::cmp::Reverse(d), v.0));
        hubs.truncate(top_n);
        let top_hubs = hubs
            .into_iter()
            .map(|(d, v)| {
                (
                    state.attr_names[state.vocab.attr_of(v).0 as usize].clone(),
                    state.vocab.value_str(v).to_owned(),
                    d,
                )
            })
            .collect();
        CrawlSummary {
            records: state.local.num_records(),
            local_edges: state.local.num_edges(),
            queries: state.queried.len(),
            attrs,
            recent_harvest: state.recent_harvest_mean(16),
            top_hubs,
            coverage: state.coverage(),
        }
    }

    /// Total frontier size (`|L_to-query|`).
    pub fn frontier_size(&self) -> usize {
        self.attrs.iter().map(|a| a.frontier).sum()
    }
}

impl fmt::Display for CrawlSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "records harvested : {}", self.records)?;
        if let Some(cov) = self.coverage {
            writeln!(f, "coverage          : {:.1}%", cov * 100.0)?;
        }
        writeln!(f, "queries issued    : {}", self.queries)?;
        writeln!(f, "frontier size     : {}", self.frontier_size())?;
        writeln!(f, "local graph edges : {}", self.local_edges)?;
        if let Some(hr) = self.recent_harvest {
            writeln!(f, "recent harvest    : {:.2} of each page is new", hr)?;
        }
        writeln!(f, "per attribute     : (frontier / queried / dormant)")?;
        for a in &self.attrs {
            writeln!(f, "  {:<20} {} / {} / {}", a.attr, a.frontier, a.queried, a.undiscovered)?;
        }
        if !self.top_hubs.is_empty() {
            writeln!(f, "top hubs in G_local:")?;
            for (attr, value, d) in &self.top_hubs {
                writeln!(f, "  degree {d:>6}  {attr} = {value:?}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for FleetReport {
    /// One line per job — harvest, cost, stop reason — plus a scheduler
    /// summary and fault-tolerance tallies when anything noteworthy
    /// happened to the job.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} jobs, {} records, {} elapsed rounds",
            self.sources.len(),
            self.total_records(),
            self.total_rounds
        )?;
        if self.scheduler.slices_completed > 0 {
            writeln!(
                f,
                "  scheduler: {} workers, {} slices ({} stolen), {}/{} rounds executed/granted",
                self.scheduler.workers,
                self.scheduler.slices_completed,
                self.scheduler.steals,
                self.scheduler.rounds_executed,
                self.scheduler.rounds_granted
            )?;
        }
        for (tenant, usage) in &self.usage {
            writeln!(
                f,
                "  tenant {tenant}: {} rounds / {} pages / {} admitted / {} shed / {} \
                 retransmits / {} preemptions",
                usage.rounds,
                usage.pages,
                usage.admitted,
                usage.sheds,
                usage.retransmits,
                usage.preempted
            )?;
        }
        for (i, r) in self.sources.iter().enumerate() {
            write!(
                f,
                "  job {i}: {} records / {} rounds / stop {:?}",
                r.records,
                r.elapsed_rounds(),
                r.stop
            )?;
            if let Some(h) = self.health.get(i) {
                if h.breaker_trips > 0 || h.worker_restarts > 0 || h.abandoned {
                    write!(
                        f,
                        " [trips {}, recoveries {}, restarts {}{}]",
                        h.breaker_trips,
                        h.breaker_recoveries,
                        h.worker_restarts,
                        if h.abandoned { ", ABANDONED" } else { "" }
                    )?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::{CrawlConfig, Crawler};
    use dwc_model::fixtures::figure1_table;
    use dwc_server::{InterfaceSpec, WebDbServer};

    fn summary_after(steps: usize) -> CrawlSummary {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec);
        let config = CrawlConfig { known_target_size: Some(5), ..Default::default() };
        let mut crawler = Crawler::new(&server, PolicyKind::GreedyLink.build(), config);
        crawler.add_seed("A", "a2");
        for _ in 0..steps {
            crawler.step();
        }
        CrawlSummary::from_state(crawler.state(), 3)
    }

    #[test]
    fn summary_reflects_progress() {
        let before = summary_after(0);
        assert_eq!(before.records, 0);
        assert_eq!(before.frontier_size(), 1, "only the seed");
        let after = summary_after(1);
        assert_eq!(after.records, 3, "a2 matches three records");
        assert_eq!(after.queries, 1);
        assert!(after.frontier_size() >= 3, "b2, c1, c2 discovered");
        assert_eq!(after.coverage, Some(0.6));
    }

    #[test]
    fn per_attribute_breakdown_sums() {
        let s = summary_after(2);
        let total: usize = s.attrs.iter().map(|a| a.frontier + a.queried + a.undiscovered).sum();
        assert!(total >= 5, "all interned values are classified");
        assert_eq!(s.attrs.len(), 3);
    }

    #[test]
    fn hubs_ranked_by_degree() {
        let s = summary_after(3);
        assert!(!s.top_hubs.is_empty());
        for w in s.top_hubs.windows(2) {
            assert!(w[0].2 >= w[1].2, "descending degree");
        }
    }

    #[test]
    fn display_renders_sections() {
        let s = summary_after(1);
        let text = s.to_string();
        assert!(text.contains("records harvested : 3"));
        assert!(text.contains("per attribute"));
        assert!(text.contains("top hubs"));
    }

    #[test]
    fn fleet_display_includes_health_when_noteworthy() {
        use crate::fault::{FaultPlan, FaultPlanSource};
        use crate::fleet::{run_fleet_supervised, FleetConfig, FleetJob};
        use crate::health::JobHealth;
        use std::sync::Arc;
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = Arc::new(WebDbServer::new(t, spec));
        let jobs = vec![FleetJob {
            source: FaultPlanSource::new(server, FaultPlan::new()),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), "a2".into())],
            config: CrawlConfig::default(),
            resume: None,
            tenant: None,
        }];
        let mut report = run_fleet_supervised(
            jobs,
            FleetConfig::builder().total_rounds(100).slice(10).build().unwrap(),
        );
        let clean = report.to_string();
        assert!(clean.contains("fleet: 1 jobs"));
        assert!(!clean.contains("trips"), "healthy jobs stay terse");
        report.health[0] = JobHealth {
            breaker_trips: 2,
            breaker_recoveries: 1,
            worker_restarts: 1,
            abandoned: true,
        };
        let sick = report.to_string();
        assert!(sick.contains("trips 2, recoveries 1, restarts 1, ABANDONED"));
    }
}
