//! Durable checkpoint storage: atomic writes, backup rotation, and
//! corruption-aware loading.
//!
//! A [`crate::Checkpoint`] is only worth its rounds if it survives the crash
//! it exists for. [`CheckpointStore`] owns one checkpoint file and writes it
//! the only safe way: serialize to a temporary sibling, flush it to disk,
//! rotate the previous generation to a `.bak` sibling, then atomically
//! rename the temporary into place. At every instant there is a complete
//! checkpoint on disk; a crash mid-save loses at most the snapshot being
//! written, never the previous one.
//!
//! Loading verifies the v2 checksum (via [`Checkpoint::from_text`]) and, when
//! the primary file is corrupt or half-written,
//! [`load_or_backup`](CheckpointStore::load_or_backup) falls back to the
//! rotated previous generation — trading one checkpoint interval of progress
//! for a crawl that resumes at all.

use crate::checkpoint::{Checkpoint, CheckpointError};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A checkpoint slot on disk: `<path>` (latest), `<path>.bak` (previous
/// generation), `<path>.tmp` (in-flight write, never read).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointStore {
    path: PathBuf,
}

/// What a successful [`CheckpointStore::save_with_receipt`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveReceipt {
    /// Whether a previous generation existed and was rotated to `.bak`.
    pub rotated_backup: bool,
}

/// Errors loading from a [`CheckpointStore`].
#[derive(Debug)]
pub enum StoreError {
    /// No checkpoint file exists at the store's path.
    Missing(PathBuf),
    /// The file was read but did not parse (truncated, bit-rotted, foreign).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Why parsing rejected it.
        error: CheckpointError,
    },
    /// The file could not be read at all.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Missing(p) => write!(f, "no checkpoint at {}", p.display()),
            StoreError::Corrupt { path, error } => {
                write!(f, "checkpoint {} is corrupt: {error}", path.display())
            }
            StoreError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Corrupt { error, .. } => Some(error),
            StoreError::Io(e) => Some(e),
            StoreError::Missing(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl CheckpointStore {
    /// A store writing to `path` (created on first save; parent directories
    /// are created as needed).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointStore { path: path.into() }
    }

    /// The primary checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn sibling(&self, suffix: &str) -> PathBuf {
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(suffix);
        self.path.with_file_name(name)
    }

    /// Path of the previous-generation backup.
    pub fn backup_path(&self) -> PathBuf {
        self.sibling(".bak")
    }

    /// Whether a primary checkpoint file exists.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Persists `checkpoint` atomically: write `<path>.tmp`, flush, rotate
    /// the current file (if any) to `<path>.bak`, rename the temporary into
    /// place. A crash at any point leaves either the old or the new
    /// generation intact and loadable.
    pub fn save(&self, checkpoint: &Checkpoint) -> std::io::Result<()> {
        self.save_with_receipt(checkpoint).map(|_| ())
    }

    /// Like [`CheckpointStore::save`], but reports what the save did — event
    /// emitters use the receipt to describe the write
    /// (`CrawlEvent::CheckpointWritten`).
    pub fn save_with_receipt(&self, checkpoint: &Checkpoint) -> std::io::Result<SaveReceipt> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = self.sibling(".tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(checkpoint.to_text().as_bytes())?;
            f.sync_all()?;
        }
        let rotated_backup = self.path.exists();
        if rotated_backup {
            std::fs::rename(&self.path, self.backup_path())?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(SaveReceipt { rotated_backup })
    }

    /// Loads and parses the primary file, strictly: corruption is an error,
    /// the backup is not consulted.
    pub fn load(&self) -> Result<Checkpoint, StoreError> {
        self.load_file(&self.path)
    }

    /// Loads the primary file, falling back to the `.bak` generation when
    /// the primary is missing or corrupt. Returns the checkpoint and whether
    /// the backup was used.
    pub fn load_or_backup(&self) -> Result<(Checkpoint, bool), StoreError> {
        match self.load_file(&self.path) {
            Ok(cp) => Ok((cp, false)),
            Err(primary_err) => match self.load_file(&self.backup_path()) {
                Ok(cp) => Ok((cp, true)),
                Err(_) => Err(primary_err),
            },
        }
    }

    fn load_file(&self, path: &Path) -> Result<Checkpoint, StoreError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::Missing(path.to_path_buf()))
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Checkpoint::from_text(&text)
            .map_err(|error| StoreError::Corrupt { path: path.to_path_buf(), error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::CandStatus;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dwc-store-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("crawl.ckpt")
    }

    fn demo(rounds: u64) -> Checkpoint {
        Checkpoint {
            attr_names: vec!["A".into()],
            attr_queriable: vec![true],
            page_size: 10,
            keyword_mode: false,
            values: vec![(0, "a2".into())],
            status: vec![CandStatus::Frontier],
            queried: vec![],
            records: vec![(1, vec![0])],
            rounds,
            queries: rounds / 2,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let store = CheckpointStore::new(scratch("roundtrip"));
        assert!(!store.exists());
        assert!(matches!(store.load(), Err(StoreError::Missing(_))));
        store.save(&demo(4)).unwrap();
        assert!(store.exists());
        assert_eq!(store.load().unwrap(), demo(4));
        assert!(!store.sibling(".tmp").exists(), "temporary must be renamed away");
    }

    #[test]
    fn save_rotates_previous_generation() {
        let store = CheckpointStore::new(scratch("rotate"));
        let first = store.save_with_receipt(&demo(2)).unwrap();
        assert!(!first.rotated_backup, "nothing to rotate on the first save");
        let second = store.save_with_receipt(&demo(6)).unwrap();
        assert!(second.rotated_backup, "the second save rotates the first");
        assert_eq!(store.load().unwrap(), demo(6));
        let bak = CheckpointStore::new(store.backup_path()).load().unwrap();
        assert_eq!(bak, demo(2), "previous generation survives as .bak");
    }

    #[test]
    fn corrupt_primary_falls_back_to_backup() {
        let store = CheckpointStore::new(scratch("fallback"));
        store.save(&demo(2)).unwrap();
        store.save(&demo(8)).unwrap();
        // Truncate the primary mid-body, as a crash during a non-atomic
        // writer (or disk damage) would.
        let text = std::fs::read_to_string(store.path()).unwrap();
        std::fs::write(store.path(), &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.load(), Err(StoreError::Corrupt { .. })));
        let (cp, from_backup) = store.load_or_backup().unwrap();
        assert!(from_backup, "recovery must come from the .bak generation");
        assert_eq!(cp, demo(2), "one interval of progress lost, crawl still resumable");
    }

    #[test]
    fn corrupt_primary_without_backup_reports_corruption() {
        let store = CheckpointStore::new(scratch("no-backup"));
        store.save(&demo(2)).unwrap();
        std::fs::write(store.path(), "DWC-CHECKPOINT v2 crc=0000000000000000\n").unwrap();
        assert!(matches!(store.load_or_backup(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn save_creates_parent_directories() {
        let store = CheckpointStore::new(scratch("deep").join("a/b/crawl.ckpt"));
        store.save(&demo(2)).unwrap();
        assert_eq!(store.load().unwrap(), demo(2));
    }
}
