//! The domain statistics table (Definition 4.1).
//!
//! "The domain statistics table DT of domain DM consists of a collection of
//! entries in the form of <q_i, P(q_i, DM)>, where q_i stands for a candidate
//! query and P(q_i, DM) is the domain probability that q_i occurs in DM."
//!
//! Built from a *sample database* of the same domain (the paper builds its
//! tables from IMDB subsets before crawling Amazon DVD). Besides the
//! per-value probabilities, the table keeps the sample's postings lists so
//! the policy can maintain `S(L_queried, DM)` — the set of sample records
//! matched by any issued query — incrementally (§4.4).

use dwc_model::{UniversalTable, ValueId};
use dwc_server::InvertedIndex;

/// A domain statistics table over a sample database.
#[derive(Debug, Clone)]
pub struct DomainTable {
    table: UniversalTable,
    index: InvertedIndex,
}

impl DomainTable {
    /// Builds the table from a sample database.
    pub fn build(sample: UniversalTable) -> Self {
        let index = InvertedIndex::build(&sample);
        DomainTable { table: sample, index }
    }

    /// `|DM|`: number of records in the sample.
    pub fn num_records(&self) -> usize {
        self.table.num_records()
    }

    /// Number of distinct values in the sample (candidate pool size).
    pub fn num_values(&self) -> usize {
        self.table.num_distinct_values()
    }

    /// The underlying sample table (read access).
    pub fn sample(&self) -> &UniversalTable {
        &self.table
    }

    /// Looks up a `(attribute name, value string)` pair in the sample,
    /// returning its *sample-side* value id.
    pub fn lookup(&self, attr_name: &str, value: &str) -> Option<ValueId> {
        let attr = self.table.schema().attr_by_name(attr_name)?;
        self.table.interner().get(attr, value)
    }

    /// `num(q, DM)`: records of the sample matched by the value.
    pub fn freq(&self, dm_value: ValueId) -> usize {
        self.index.match_count(dm_value)
    }

    /// Unsmoothed `P(q, DM) = num(q, DM) / |DM|`.
    pub fn probability(&self, dm_value: ValueId) -> f64 {
        if self.num_records() == 0 {
            return 0.0;
        }
        self.freq(dm_value) as f64 / self.num_records() as f64
    }

    /// Sorted sample-record ids matched by the value (`S(q, DM)`).
    pub fn postings(&self, dm_value: ValueId) -> &[u32] {
        self.index.postings(dm_value)
    }

    /// Iterates `(attribute name, value string, sample value id, frequency)`
    /// over every entry of the table.
    pub fn iter_entries(&self) -> impl Iterator<Item = (&str, &str, ValueId, usize)> + '_ {
        self.table.interner().iter_ids().map(move |v| {
            let attr = self.table.interner().attr_of(v);
            (
                self.table.schema().attr(attr).name.as_str(),
                self.table.interner().value_str(v),
                v,
                self.freq(v),
            )
        })
    }
}

/// Incrementally maintained `S(L_queried[1..m], DM)` (§4.4): the set of
/// sample records matched by at least one issued query, with O(|postings|)
/// updates.
///
/// The paper maintains this as a sorted id list merged per query; a bitset
/// over the (dense, known-size) sample record ids gives the same set with the
/// same incremental interface and cheaper unions.
#[derive(Debug, Clone)]
pub struct CoveredSet {
    bits: Vec<u64>,
    count: usize,
    universe: usize,
}

impl CoveredSet {
    /// Empty set over `|DM|` record ids.
    pub fn new(universe: usize) -> Self {
        CoveredSet { bits: vec![0; universe.div_ceil(64)], count: 0, universe }
    }

    /// Number of covered sample records (`|S(L_queried, DM)|`).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no record is covered.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `P(L_queried, DM)`: covered fraction of the sample.
    pub fn fraction(&self) -> f64 {
        if self.universe == 0 {
            return 0.0;
        }
        self.count as f64 / self.universe as f64
    }

    /// Unions one query's postings into the set.
    pub fn union_postings(&mut self, postings: &[u32]) {
        for &id in postings {
            let (w, b) = ((id / 64) as usize, id % 64);
            let mask = 1u64 << b;
            if self.bits[w] & mask == 0 {
                self.bits[w] |= mask;
                self.count += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;

    #[test]
    fn table_stats_match_sample() {
        let dt = DomainTable::build(figure1_table());
        assert_eq!(dt.num_records(), 5);
        assert_eq!(dt.num_values(), 9);
        let a2 = dt.lookup("A", "a2").unwrap();
        assert_eq!(dt.freq(a2), 3);
        assert!((dt.probability(a2) - 0.6).abs() < 1e-12);
        assert_eq!(dt.postings(a2), &[1, 2, 3]);
    }

    #[test]
    fn lookup_misses_return_none() {
        let dt = DomainTable::build(figure1_table());
        assert!(dt.lookup("A", "nope").is_none());
        assert!(dt.lookup("Nope", "a2").is_none());
    }

    #[test]
    fn iter_entries_covers_all_values() {
        let dt = DomainTable::build(figure1_table());
        let entries: Vec<_> = dt.iter_entries().collect();
        assert_eq!(entries.len(), 9);
        let total_freq: usize = entries.iter().map(|e| e.3).sum();
        // Each of the 5 records contributes 3 values.
        assert_eq!(total_freq, 15);
    }

    #[test]
    fn covered_set_counts_distinct() {
        let mut cs = CoveredSet::new(10);
        assert!(cs.is_empty());
        cs.union_postings(&[1, 3, 5]);
        cs.union_postings(&[3, 5, 7]);
        assert_eq!(cs.len(), 4);
        assert!((cs.fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn covered_set_full_coverage() {
        let mut cs = CoveredSet::new(3);
        cs.union_postings(&[0, 1, 2]);
        assert_eq!(cs.fraction(), 1.0);
    }

    #[test]
    fn covered_set_empty_universe() {
        let cs = CoveredSet::new(0);
        assert_eq!(cs.fraction(), 0.0);
    }

    #[test]
    fn covered_matches_paper_merge_semantics() {
        // The paper merges sorted id lists; the bitset must produce the same
        // cardinality as a reference merge.
        let dt = DomainTable::build(figure1_table());
        let a2 = dt.lookup("A", "a2").unwrap();
        let c1 = dt.lookup("C", "c1").unwrap();
        let mut cs = CoveredSet::new(dt.num_records());
        cs.union_postings(dt.postings(a2));
        cs.union_postings(dt.postings(c1));
        let mut reference: Vec<u32> =
            dt.postings(a2).iter().chain(dt.postings(c1)).copied().collect();
        reference.sort_unstable();
        reference.dedup();
        assert_eq!(cs.len(), reference.len());
    }
}
