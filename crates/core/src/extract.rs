//! The Result Extractor: parses XML result pages back into records.
//!
//! The paper's crawler architecture (§2.5) has a Result Extractor that
//! "extracts data records from the result pages and feeds them into
//! DB_local". Amazon's Web Service returns XML (§5), which this module
//! parses. The parser is a small hand-rolled scanner for the wire format of
//! `dwc-server::wire` — no XML dependency, strict enough to reject malformed
//! pages, and round-trip exact with the serializer.

use dwc_server::wire::{unescape_xml, unescape_xml_cow};
use std::borrow::Cow;

/// A record extracted from a result page: source key + field strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedRecord {
    /// The source-assigned stable record key.
    pub key: u64,
    /// `(attribute name, value string)` pairs.
    pub fields: Vec<(String, String)>,
}

/// A parsed result page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedPage {
    /// Zero-based page index.
    pub page_index: usize,
    /// Total match count, when the source reports it.
    pub total_matches: Option<usize>,
    /// Whether more pages follow.
    pub has_more: bool,
    /// The extracted records.
    pub records: Vec<ExtractedRecord>,
}

/// A record borrowed out of a wire buffer: fields are `Cow` slices into the
/// document, owning heap memory only where an escaped entity had to be
/// resolved. The zero-copy counterpart of [`ExtractedRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedRecordRef<'a> {
    /// The source-assigned stable record key.
    pub key: u64,
    /// `(attribute name, value string)` pairs borrowed from the buffer.
    pub fields: Vec<(Cow<'a, str>, Cow<'a, str>)>,
}

impl ExtractedRecordRef<'_> {
    /// Materializes an owned [`ExtractedRecord`] (checkpoint/serde paths).
    pub fn to_owned_record(&self) -> ExtractedRecord {
        ExtractedRecord {
            key: self.key,
            fields: self
                .fields
                .iter()
                .map(|(a, v)| (a.clone().into_owned(), v.clone().into_owned()))
                .collect(),
        }
    }
}

/// A parsed result page borrowing from the wire buffer — the hot-path view
/// produced by [`parse_page_ref`] / [`parse_html_page_ref`] and consumed by
/// `DataSource::visit_page` callbacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedPageRef<'a> {
    /// Zero-based page index.
    pub page_index: usize,
    /// Total match count, when the source reports it.
    pub total_matches: Option<usize>,
    /// Whether more pages follow.
    pub has_more: bool,
    /// The extracted records, borrowing from the buffer.
    pub records: Vec<ExtractedRecordRef<'a>>,
}

impl ExtractedPageRef<'_> {
    /// Materializes an owned [`ExtractedPage`].
    pub fn to_owned_page(&self) -> ExtractedPage {
        ExtractedPage {
            page_index: self.page_index,
            total_matches: self.total_matches,
            has_more: self.has_more,
            records: self.records.iter().map(ExtractedRecordRef::to_owned_record).collect(),
        }
    }

    /// A borrowed view over an owned page — lets legacy `query_page` sources
    /// feed zero-copy consumers without duplicating the strings.
    pub fn borrowed(page: &ExtractedPage) -> ExtractedPageRef<'_> {
        ExtractedPageRef {
            page_index: page.page_index,
            total_matches: page.total_matches,
            has_more: page.has_more,
            records: page
                .records
                .iter()
                .map(|rec| ExtractedRecordRef {
                    key: rec.key,
                    fields: rec
                        .fields
                        .iter()
                        .map(|(a, v)| (Cow::Borrowed(a.as_str()), Cow::Borrowed(v.as_str())))
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The document does not start with a `<results>` element.
    MissingResultsElement,
    /// A required attribute is missing or unparseable.
    BadAttribute(&'static str),
    /// A `<record>` or `<field>` element is malformed.
    MalformedElement(&'static str),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::MissingResultsElement => write!(f, "missing <results> element"),
            ExtractError::BadAttribute(a) => write!(f, "bad or missing attribute {a:?}"),
            ExtractError::MalformedElement(e) => write!(f, "malformed element {e:?}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Parses a template-generated HTML result page (the `dwc-server::html`
/// wrapper): a `#summary` line carrying the page index and optional total, a
/// repeated `div.item` block per record with `span.f` fields, and an `#next`
/// marker on non-final pages.
///
/// This is the "structured data extraction from template-generated result
/// pages" step the paper's §6 cites as the orthogonal companion problem; the
/// wrapper here is known rather than induced, but the crawler-side pipeline
/// (HTML → records) is exercised end-to-end.
pub fn parse_html_page(html: &str) -> Result<ExtractedPage, ExtractError> {
    let summary_start =
        html.find("<div id=\"summary\">").ok_or(ExtractError::MissingResultsElement)?
            + "<div id=\"summary\">".len();
    let summary_end =
        html[summary_start..].find("</div>").ok_or(ExtractError::MissingResultsElement)?
            + summary_start;
    let summary = &html[summary_start..summary_end];
    let page_index: usize = summary
        .strip_prefix("page ")
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .ok_or(ExtractError::BadAttribute("page"))?;
    let total_matches = match summary.find("— ") {
        Some(pos) => Some(
            summary[pos + "— ".len()..]
                .split(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ExtractError::BadAttribute("total"))?,
        ),
        None => None,
    };
    let has_more = html.contains("<a id=\"next\"");
    let mut records = Vec::new();
    let mut rest = &html[summary_end..];
    while let Some(item_start) = rest.find("<div class=\"item\" id=\"item-") {
        let key_start = item_start + "<div class=\"item\" id=\"item-".len();
        let key_end =
            rest[key_start..].find('"').ok_or(ExtractError::MalformedElement("item"))? + key_start;
        let key: u64 =
            rest[key_start..key_end].parse().map_err(|_| ExtractError::BadAttribute("key"))?;
        let body_start =
            rest[key_end..].find('>').ok_or(ExtractError::MalformedElement("item"))? + key_end + 1;
        let body_end =
            rest[body_start..].find("</div>").ok_or(ExtractError::MalformedElement("item"))?
                + body_start;
        let mut fields = Vec::new();
        let mut item_body = &rest[body_start..body_end];
        while let Some(f_start) = item_body.find("<span class=\"f\" title=\"") {
            let attr_start = f_start + "<span class=\"f\" title=\"".len();
            let attr_end =
                item_body[attr_start..].find('"').ok_or(ExtractError::MalformedElement("field"))?
                    + attr_start;
            let val_start =
                item_body[attr_end..].find('>').ok_or(ExtractError::MalformedElement("field"))?
                    + attr_end
                    + 1;
            let val_end = item_body[val_start..]
                .find("</span>")
                .ok_or(ExtractError::MalformedElement("field"))?
                + val_start;
            fields.push((
                unescape_xml(&item_body[attr_start..attr_end]),
                unescape_xml(&item_body[val_start..val_end]),
            ));
            item_body = &item_body[val_end + "</span>".len()..];
        }
        records.push(ExtractedRecord { key, fields });
        rest = &rest[body_end + "</div>".len()..];
    }
    Ok(ExtractedPage { page_index, total_matches, has_more, records })
}

/// Zero-copy flavor of [`parse_html_page`]: the same scanner and the same
/// rejections, but field names/values are `Cow` slices into `html`,
/// allocating only where an entity needs unescaping.
pub fn parse_html_page_ref(html: &str) -> Result<ExtractedPageRef<'_>, ExtractError> {
    let summary_start =
        html.find("<div id=\"summary\">").ok_or(ExtractError::MissingResultsElement)?
            + "<div id=\"summary\">".len();
    let summary_end =
        html[summary_start..].find("</div>").ok_or(ExtractError::MissingResultsElement)?
            + summary_start;
    let summary = &html[summary_start..summary_end];
    let page_index: usize = summary
        .strip_prefix("page ")
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .ok_or(ExtractError::BadAttribute("page"))?;
    let total_matches = match summary.find("— ") {
        Some(pos) => Some(
            summary[pos + "— ".len()..]
                .split(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ExtractError::BadAttribute("total"))?,
        ),
        None => None,
    };
    let has_more = html.contains("<a id=\"next\"");
    let mut records = Vec::new();
    let mut rest = &html[summary_end..];
    while let Some(item_start) = rest.find("<div class=\"item\" id=\"item-") {
        let key_start = item_start + "<div class=\"item\" id=\"item-".len();
        let key_end =
            rest[key_start..].find('"').ok_or(ExtractError::MalformedElement("item"))? + key_start;
        let key: u64 =
            rest[key_start..key_end].parse().map_err(|_| ExtractError::BadAttribute("key"))?;
        let body_start =
            rest[key_end..].find('>').ok_or(ExtractError::MalformedElement("item"))? + key_end + 1;
        let body_end =
            rest[body_start..].find("</div>").ok_or(ExtractError::MalformedElement("item"))?
                + body_start;
        let mut fields = Vec::new();
        let mut item_body = &rest[body_start..body_end];
        while let Some(f_start) = item_body.find("<span class=\"f\" title=\"") {
            let attr_start = f_start + "<span class=\"f\" title=\"".len();
            let attr_end =
                item_body[attr_start..].find('"').ok_or(ExtractError::MalformedElement("field"))?
                    + attr_start;
            let val_start =
                item_body[attr_end..].find('>').ok_or(ExtractError::MalformedElement("field"))?
                    + attr_end
                    + 1;
            let val_end = item_body[val_start..]
                .find("</span>")
                .ok_or(ExtractError::MalformedElement("field"))?
                + val_start;
            fields.push((
                unescape_xml_cow(&item_body[attr_start..attr_end]),
                unescape_xml_cow(&item_body[val_start..val_end]),
            ));
            item_body = &item_body[val_end + "</span>".len()..];
        }
        records.push(ExtractedRecordRef { key, fields });
        rest = &rest[body_end + "</div>".len()..];
    }
    Ok(ExtractedPageRef { page_index, total_matches, has_more, records })
}

/// Reads the value of `name="..."` inside an element's attribute area.
/// `needle` must be the literal `name=\"` prefix — passing it pre-built keeps
/// this allocation-free on the per-field hot path.
fn attr_value<'a>(tag: &'a str, needle: &str) -> Option<&'a str> {
    let start = tag.find(needle)? + needle.len();
    let end = tag[start..].find('"')? + start;
    Some(&tag[start..end])
}

/// Parses one result page in the wire format.
pub fn parse_page(xml: &str) -> Result<ExtractedPage, ExtractError> {
    let xml = xml.trim_start();
    let rest = xml.strip_prefix("<results").ok_or(ExtractError::MissingResultsElement)?;
    let header_end = rest.find('>').ok_or(ExtractError::MissingResultsElement)?;
    let header = &rest[..header_end];
    let page_index: usize = attr_value(header, "page=\"")
        .and_then(|s| s.parse().ok())
        .ok_or(ExtractError::BadAttribute("page"))?;
    let has_more = match attr_value(header, "more=\"") {
        Some("true") => true,
        Some("false") => false,
        _ => return Err(ExtractError::BadAttribute("more")),
    };
    let total_matches = match attr_value(header, "total=\"") {
        Some(s) => Some(s.parse().map_err(|_| ExtractError::BadAttribute("total"))?),
        None => None,
    };
    let mut body = &rest[header_end + 1..];
    let mut records = Vec::new();
    while let Some(rec_start) = body.find("<record") {
        let rec_rest = &body[rec_start + "<record".len()..];
        let rec_header_end = rec_rest.find('>').ok_or(ExtractError::MalformedElement("record"))?;
        let key: u64 = attr_value(&rec_rest[..rec_header_end], "key=\"")
            .and_then(|s| s.parse().ok())
            .ok_or(ExtractError::BadAttribute("key"))?;
        let rec_body_all = &rec_rest[rec_header_end + 1..];
        let rec_end =
            rec_body_all.find("</record>").ok_or(ExtractError::MalformedElement("record"))?;
        let mut rec_body = &rec_body_all[..rec_end];
        let mut fields = Vec::new();
        while let Some(f_start) = rec_body.find("<field") {
            let f_rest = &rec_body[f_start + "<field".len()..];
            let f_header_end = f_rest.find('>').ok_or(ExtractError::MalformedElement("field"))?;
            let attr = attr_value(&f_rest[..f_header_end], "attr=\"")
                .ok_or(ExtractError::BadAttribute("attr"))?;
            let f_body_all = &f_rest[f_header_end + 1..];
            let f_end =
                f_body_all.find("</field>").ok_or(ExtractError::MalformedElement("field"))?;
            fields.push((unescape_xml(attr), unescape_xml(&f_body_all[..f_end])));
            rec_body = &f_body_all[f_end + "</field>".len()..];
        }
        records.push(ExtractedRecord { key, fields });
        body = &rec_body_all[rec_end + "</record>".len()..];
    }
    Ok(ExtractedPage { page_index, total_matches, has_more, records })
}

/// Reads a `name="value"` pair the serializer emits as ` name="` directly at
/// the front of `s` (the only form `dwc-server::wire` produces). Returns the
/// raw value slice and the text after the closing quote. Attribute values are
/// escaped on the wire, so the next `"` always terminates the value.
fn leading_quoted<'a>(s: &'a str, needle: &str) -> Option<(&'a str, &'a str)> {
    let v = s.strip_prefix(needle)?;
    let end = v.find('"')?;
    Some((&v[..end], &v[end + 1..]))
}

/// Zero-copy flavor of [`parse_page`]: same grammar and rejections, but every
/// attribute name and value is a `Cow` slice into `xml`, and the scanner is
/// built for the hot path. Instead of repeated substring searches (whose
/// per-call setup dominates on short elements), it rides two invariants of the
/// wire serializer: element content is escaped, so the next `<` after an open
/// tag is always the closing tag; and attributes are emitted in one canonical
/// spelling (`<record key="..">`, `<field attr="..">`). The only allocations
/// left on a well-formed page are the record/field `Vec`s and any string that
/// actually contains an `&` entity.
pub fn parse_page_ref(xml: &str) -> Result<ExtractedPageRef<'_>, ExtractError> {
    let xml = xml.trim_start();
    let rest = xml.strip_prefix("<results").ok_or(ExtractError::MissingResultsElement)?;
    let header_end = rest.find('>').ok_or(ExtractError::MissingResultsElement)?;
    let header = &rest[..header_end];
    let page_index: usize = attr_value(header, "page=\"")
        .and_then(|s| s.parse().ok())
        .ok_or(ExtractError::BadAttribute("page"))?;
    let has_more = match attr_value(header, "more=\"") {
        Some("true") => true,
        Some("false") => false,
        _ => return Err(ExtractError::BadAttribute("more")),
    };
    let total_matches = match attr_value(header, "total=\"") {
        Some(s) => Some(s.parse().map_err(|_| ExtractError::BadAttribute("total"))?),
        None => None,
    };
    let mut cur = &rest[header_end + 1..];
    let mut records = Vec::new();
    'scan: while let Some(lt) = cur.find('<') {
        let tag = &cur[lt..];
        let Some(rec_hdr) = tag.strip_prefix("<record") else {
            // Not a record ("</results>" or stray text): skip past the `<`.
            cur = &tag[1..];
            continue;
        };
        let (key_str, mut rec_body) = leading_quoted(rec_hdr, " key=\"")
            .and_then(|(k, after)| Some((k, after.strip_prefix('>')?)))
            .ok_or(ExtractError::BadAttribute("key"))?;
        let key: u64 = key_str.parse().map_err(|_| ExtractError::BadAttribute("key"))?;
        let mut fields = Vec::new();
        loop {
            let flt = rec_body.find('<').ok_or(ExtractError::MalformedElement("record"))?;
            let ftag = &rec_body[flt..];
            if let Some(f_hdr) = ftag.strip_prefix("<field") {
                let (attr, val_area) = leading_quoted(f_hdr, " attr=\"")
                    .and_then(|(a, after)| Some((a, after.strip_prefix('>')?)))
                    .ok_or(ExtractError::BadAttribute("attr"))?;
                // Content is escaped, so this `<` is the closing tag — or the
                // element never closes and the page is damaged.
                let val_end = val_area.find('<').ok_or(ExtractError::MalformedElement("field"))?;
                if !val_area[val_end..].starts_with("</field>") {
                    return Err(ExtractError::MalformedElement("field"));
                }
                fields.push((unescape_xml_cow(attr), unescape_xml_cow(&val_area[..val_end])));
                rec_body = &val_area[val_end + "</field>".len()..];
            } else if let Some(after) = ftag.strip_prefix("</record>") {
                records.push(ExtractedRecordRef { key, fields });
                cur = after;
                continue 'scan;
            } else {
                return Err(ExtractError::MalformedElement("record"));
            }
        }
    }
    Ok(ExtractedPageRef { page_index, total_matches, has_more, records })
}

/// Serializes an extracted page back to the XML wire format — the crawler-side
/// inverse of [`parse_page`]. Round-trip exact for any page (names and values
/// are XML-escaped).
///
/// Used by the fault-injection harness ([`crate::fault::FaultPlanSource`]) to
/// materialize a page as wire bytes, truncate them, and demonstrate that the
/// extractor rejects the damage; also handy for recording crawls.
pub fn page_to_wire(page: &ExtractedPage) -> String {
    use dwc_server::wire::escape_xml;
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + page.records.len() * 128);
    let _ = write!(out, "<results page=\"{}\" more=\"{}\"", page.page_index, page.has_more);
    if let Some(total) = page.total_matches {
        let _ = write!(out, " total=\"{total}\"");
    }
    out.push_str(">\n");
    for rec in &page.records {
        let _ = writeln!(out, "  <record key=\"{}\">", rec.key);
        for (attr, value) in &rec.fields {
            let _ = writeln!(
                out,
                "    <field attr=\"{}\">{}</field>",
                escape_xml(attr),
                escape_xml(value)
            );
        }
        out.push_str("  </record>\n");
    }
    out.push_str("</results>\n");
    out
}

/// Re-encodes a borrowed [`ExtractedPageRef`] into the XML wire format,
/// byte-identical to [`page_to_wire`] on the equivalent owned page. This is
/// the serving-tier frame encoder: a [`crate::serve::SourceService`] worker
/// visits the inner source's page zero-copy, encodes the view straight off
/// the borrow, and ships the frame — no owned [`ExtractedPage`] detour.
pub fn page_ref_to_wire(page: &ExtractedPageRef<'_>) -> String {
    use dwc_server::wire::escape_xml;
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + page.records.len() * 128);
    let _ = write!(out, "<results page=\"{}\" more=\"{}\"", page.page_index, page.has_more);
    if let Some(total) = page.total_matches {
        let _ = write!(out, " total=\"{total}\"");
    }
    out.push_str(">\n");
    for rec in &page.records {
        let _ = writeln!(out, "  <record key=\"{}\">", rec.key);
        for (attr, value) in &rec.fields {
            let _ = writeln!(
                out,
                "    <field attr=\"{}\">{}</field>",
                escape_xml(attr),
                escape_xml(value)
            );
        }
        out.push_str("  </record>\n");
    }
    out.push_str("</results>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_model::AttrId;
    use dwc_server::wire::page_to_xml;
    use dwc_server::{InterfaceSpec, Query, WebDbServer};

    fn roundtrip_page() -> (ExtractedPage, usize) {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 2);
        let s = WebDbServer::new(t, spec);
        let a2 = s.table().interner().get(AttrId(0), "a2").unwrap();
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        let xml = page_to_xml(&page, s.table());
        (parse_page(&xml).unwrap(), page.records.len())
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (parsed, n) = roundtrip_page();
        assert_eq!(parsed.page_index, 0);
        assert_eq!(parsed.total_matches, Some(3));
        assert!(parsed.has_more);
        assert_eq!(parsed.records.len(), n);
        let r0 = &parsed.records[0];
        assert!(r0.fields.iter().any(|(a, v)| a == "A" && v == "a2"));
        assert_eq!(r0.fields.len(), 3);
    }

    #[test]
    fn roundtrip_with_escaped_characters() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        let schema = Schema::new(vec![AttrSpec::queriable("T&C")]);
        let mut t = UniversalTable::new(schema);
        t.push_record_strs([(AttrId(0), "a<b>&\"c\"")]);
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec);
        let q = Query::ByString { attr: "T&C".into(), value: "a<b>&\"c\"".into() };
        let page = s.query_page(&q, 0).unwrap();
        let xml = page_to_xml(&page, s.table());
        let parsed = parse_page(&xml).unwrap();
        assert_eq!(parsed.records[0].fields[0], ("T&C".to_string(), "a<b>&\"c\"".to_string()));
    }

    #[test]
    fn crawler_side_serializer_roundtrips() {
        let (page, _) = roundtrip_page();
        let wire = page_to_wire(&page);
        assert_eq!(parse_page(&wire).unwrap(), page);
        let nasty = ExtractedPage {
            page_index: 2,
            total_matches: None,
            has_more: true,
            records: vec![ExtractedRecord {
                key: 9,
                fields: vec![("T&C".into(), "a<b>&\"c\"".into())],
            }],
        };
        assert_eq!(parse_page(&page_to_wire(&nasty)).unwrap(), nasty);
    }

    #[test]
    fn empty_page_parses() {
        let parsed =
            parse_page("<results page=\"3\" more=\"false\" total=\"0\">\n</results>\n").unwrap();
        assert_eq!(parsed.page_index, 3);
        assert!(!parsed.has_more);
        assert_eq!(parsed.total_matches, Some(0));
        assert!(parsed.records.is_empty());
    }

    #[test]
    fn total_is_optional() {
        let parsed = parse_page("<results page=\"0\" more=\"false\">\n</results>\n").unwrap();
        assert_eq!(parsed.total_matches, None);
    }

    #[test]
    fn malformed_documents_rejected() {
        assert_eq!(parse_page("<html>"), Err(ExtractError::MissingResultsElement));
        assert_eq!(
            parse_page("<results more=\"false\"></results>"),
            Err(ExtractError::BadAttribute("page"))
        );
        assert_eq!(
            parse_page("<results page=\"0\" more=\"maybe\"></results>"),
            Err(ExtractError::BadAttribute("more"))
        );
        assert_eq!(
            parse_page("<results page=\"0\" more=\"false\"><record key=\"1\">"),
            Err(ExtractError::MalformedElement("record"))
        );
        assert_eq!(
            parse_page("<results page=\"0\" more=\"false\"><record key=\"x\"></record></results>"),
            Err(ExtractError::BadAttribute("key"))
        );
    }

    #[test]
    fn html_roundtrip_matches_xml_roundtrip() {
        use dwc_server::html::page_to_html;
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 2);
        let s = WebDbServer::new(t, spec);
        let a2 = s.table().interner().get(AttrId(0), "a2").unwrap();
        let page = s.query_page(&Query::Value(a2), 0).unwrap();
        let from_xml = parse_page(&page_to_xml(&page, s.table())).unwrap();
        let from_html = parse_html_page(&page_to_html(&page, s.table())).unwrap();
        assert_eq!(from_xml, from_html, "both wrappers extract the same records");
    }

    #[test]
    fn html_handles_empty_and_no_total_pages() {
        let doc = "<html><body>\n<div id=\"summary\">page 3 of results</div>\n</body></html>\n";
        let parsed = parse_html_page(doc).unwrap();
        assert_eq!(parsed.page_index, 3);
        assert_eq!(parsed.total_matches, None);
        assert!(!parsed.has_more);
        assert!(parsed.records.is_empty());
    }

    #[test]
    fn html_escaped_values_roundtrip() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        use dwc_server::html::page_to_html;
        let schema = Schema::new(vec![AttrSpec::queriable("T&C")]);
        let mut t = UniversalTable::new(schema);
        t.push_record_strs([(AttrId(0), "a<b> & \"c\"")]);
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec);
        let q = Query::ByString { attr: "T&C".into(), value: "a<b> & \"c\"".into() };
        let page = s.query_page(&q, 0).unwrap();
        let parsed = parse_html_page(&page_to_html(&page, s.table())).unwrap();
        assert_eq!(parsed.records[0].fields[0], ("T&C".to_string(), "a<b> & \"c\"".to_string()));
    }

    #[test]
    fn html_malformed_documents_rejected() {
        assert_eq!(parse_html_page("<html></html>"), Err(ExtractError::MissingResultsElement));
        assert_eq!(
            parse_html_page("<div id=\"summary\">nonsense</div>"),
            Err(ExtractError::BadAttribute("page"))
        );
        let bad_key =
            "<div id=\"summary\">page 0 of results</div><div class=\"item\" id=\"item-xyz\"></div>";
        assert_eq!(parse_html_page(bad_key), Err(ExtractError::BadAttribute("key")));
    }

    #[test]
    fn field_without_close_is_rejected() {
        let doc = "<results page=\"0\" more=\"false\"><record key=\"1\"><field attr=\"A\">oops</record></results>";
        assert_eq!(parse_page(doc), Err(ExtractError::MalformedElement("field")));
        assert_eq!(parse_page_ref(doc).unwrap_err(), ExtractError::MalformedElement("field"));
    }

    #[test]
    fn zero_copy_parser_agrees_with_owned_on_fixtures() {
        let (page, _) = roundtrip_page();
        let wire = page_to_wire(&page);
        let by_ref = parse_page_ref(&wire).unwrap();
        assert_eq!(by_ref.to_owned_page(), parse_page(&wire).unwrap());
        // No field in the figure-1 fixture needs unescaping, so every slice
        // borrows straight from the wire buffer.
        for rec in &by_ref.records {
            for (a, v) in &rec.fields {
                assert!(matches!(a, Cow::Borrowed(_)), "attr {a:?} should borrow");
                assert!(matches!(v, Cow::Borrowed(_)), "value {v:?} should borrow");
            }
        }
    }

    #[test]
    fn zero_copy_allocates_only_where_escapes_demand_it() {
        let nasty = ExtractedPage {
            page_index: 1,
            total_matches: Some(2),
            has_more: false,
            records: vec![ExtractedRecord {
                key: 7,
                fields: vec![
                    ("T&C".into(), "a<b>&\"c\"".into()),
                    ("Plain".into(), "clean value".into()),
                ],
            }],
        };
        let wire = page_to_wire(&nasty);
        let by_ref = parse_page_ref(&wire).unwrap();
        assert_eq!(by_ref.to_owned_page(), nasty);
        let fields = &by_ref.records[0].fields;
        assert!(matches!(fields[0].0, Cow::Owned(_)), "escaped attr must own");
        assert!(matches!(fields[0].1, Cow::Owned(_)), "escaped value must own");
        assert!(matches!(fields[1].0, Cow::Borrowed(_)), "clean attr borrows");
        assert!(matches!(fields[1].1, Cow::Borrowed(_)), "clean value borrows");
    }

    #[test]
    fn zero_copy_html_parser_agrees_with_owned() {
        use dwc_model::{AttrSpec, Schema, UniversalTable};
        use dwc_server::html::page_to_html;
        let schema = Schema::new(vec![AttrSpec::queriable("T&C")]);
        let mut t = UniversalTable::new(schema);
        t.push_record_strs([(AttrId(0), "a<b> & \"c\"")]);
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let s = WebDbServer::new(t, spec);
        let q = Query::ByString { attr: "T&C".into(), value: "a<b> & \"c\"".into() };
        let page = s.query_page(&q, 0).unwrap();
        let html = page_to_html(&page, s.table());
        let by_ref = parse_html_page_ref(&html).unwrap();
        assert_eq!(by_ref.to_owned_page(), parse_html_page(&html).unwrap());
    }

    #[test]
    fn borrowed_view_roundtrips_an_owned_page() {
        let (page, _) = roundtrip_page();
        let view = ExtractedPageRef::borrowed(&page);
        assert_eq!(view.to_owned_page(), page);
    }
}
