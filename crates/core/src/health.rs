//! Per-source circuit breakers and fleet job health accounting.
//!
//! A crawler hammering a sick source wastes budget: every request costs a
//! round (Definition 2.3) whether it succeeds or not. The supervisor keeps a
//! [`CircuitBreaker`] per job and samples the worker's consecutive-failure
//! streak at every slice boundary:
//!
//! * **Closed** — the job is healthy and competes for budget normally.
//! * **Open** — the streak reached [`BreakerConfig::trip_after`]; the job is
//!   paused and excluded from allocation for
//!   [`BreakerConfig::cooldown`] allocation rounds, so its budget flows to
//!   healthy jobs instead of being burned on a source that is down. On the
//!   pooled scheduler "paused" means *removed from the run queue*: the
//!   job's crawler stays parked in its coordinator slot and no slice is
//!   submitted for it, so a tripped job holds no pool worker (and blocks no
//!   thread) while it cools down.
//! * **HalfOpen** — cooldown elapsed; the job gets one probe slice. A clean
//!   slice closes the breaker (a *recovery*); more faults re-open it.
//!
//! The breaker itself keeps no tallies: [`CircuitBreaker::observe`] and
//! [`CircuitBreaker::tick`] *return* the phase transition they caused (if
//! any), and the supervisor records each one as a
//! [`crate::events::CrawlEvent::BreakerTransition`] on the job's metrics
//! registry. Trips, recoveries, and worker restarts are then derived into
//! [`JobHealth`] and surfaced through `FleetReport`.

use crate::events::BreakerPhase;

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient-class failures (worker fault streak observed at
    /// a slice boundary) that trip the breaker open.
    pub trip_after: u32,
    /// Allocation rounds an open breaker waits before probing (minimum 1).
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 8, cooldown: 2 }
    }
}

/// Where a breaker currently is in its Closed → Open → HalfOpen cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: slices flow normally.
    Closed,
    /// Tripped: the job is paused for `remaining` more allocation rounds.
    Open {
        /// Allocation rounds left before the half-open probe.
        remaining: u32,
    },
    /// Cooled down: the next slice is a probe.
    HalfOpen,
}

impl BreakerState {
    /// The coarse phase of this state, as carried by breaker events.
    pub fn phase(self) -> BreakerPhase {
        match self {
            BreakerState::Closed => BreakerPhase::Closed,
            BreakerState::Open { .. } => BreakerPhase::Open,
            BreakerState::HalfOpen => BreakerPhase::HalfOpen,
        }
    }
}

/// One job's breaker: a pure state machine whose methods return the phase
/// transitions they cause (the caller records them as events).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker { config, state: BreakerState::Closed }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the job is paused (open breaker): excluded from allocation.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Feeds the worker-reported consecutive-failure streak at a slice
    /// boundary into the state machine. Returns the `(from, to)` phase
    /// transition when the observation changed phase: a trip
    /// (`… → Open`) or a clean-probe recovery (`HalfOpen → Closed`).
    pub fn observe(&mut self, fault_streak: u32) -> Option<(BreakerPhase, BreakerPhase)> {
        match self.state {
            BreakerState::Closed => {
                if fault_streak >= self.config.trip_after {
                    return Some(self.trip());
                }
                None
            }
            BreakerState::HalfOpen => {
                if fault_streak == 0 {
                    self.state = BreakerState::Closed;
                    Some((BreakerPhase::HalfOpen, BreakerPhase::Closed))
                } else {
                    Some(self.trip())
                }
            }
            // An open job receives no slices; a stale report changes nothing.
            BreakerState::Open { .. } => None,
        }
    }

    /// Advances one allocation round: open breakers cool toward half-open.
    /// Returns `(Open, HalfOpen)` on the round the cooldown elapses.
    pub fn tick(&mut self) -> Option<(BreakerPhase, BreakerPhase)> {
        if let BreakerState::Open { remaining } = &mut self.state {
            *remaining = remaining.saturating_sub(1);
            if *remaining == 0 {
                self.state = BreakerState::HalfOpen;
                return Some((BreakerPhase::Open, BreakerPhase::HalfOpen));
            }
        }
        None
    }

    fn trip(&mut self) -> (BreakerPhase, BreakerPhase) {
        let from = self.state.phase();
        self.state = BreakerState::Open { remaining: self.config.cooldown.max(1) };
        (from, BreakerPhase::Open)
    }
}

/// Fault-tolerance counters for one fleet job, reported in `FleetReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobHealth {
    /// Times this job's breaker tripped open.
    pub breaker_trips: u64,
    /// Times this job's breaker recovered via a clean half-open probe.
    pub breaker_recoveries: u64,
    /// Times this job's worker was restarted after a panic.
    pub worker_restarts: u32,
    /// Whether the job was abandoned after exhausting its restart budget.
    pub abandoned: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_breaker_ignores_small_streaks() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 3, cooldown: 2 });
        assert_eq!(b.observe(0), None);
        assert_eq!(b.observe(2), None);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn full_trip_cooldown_probe_recovery_cycle() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 3, cooldown: 2 });
        assert_eq!(b.observe(3), Some((BreakerPhase::Closed, BreakerPhase::Open)));
        assert!(b.is_open());
        assert_eq!(b.tick(), None, "cooldown not yet elapsed");
        assert!(b.is_open());
        assert_eq!(b.tick(), Some((BreakerPhase::Open, BreakerPhase::HalfOpen)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(
            b.observe(0),
            Some((BreakerPhase::HalfOpen, BreakerPhase::Closed)),
            "clean probe closes"
        );
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn dirty_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 2, cooldown: 1 });
        assert_eq!(b.observe(2), Some((BreakerPhase::Closed, BreakerPhase::Open)));
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(
            b.observe(1),
            Some((BreakerPhase::HalfOpen, BreakerPhase::Open)),
            "any fault during the probe re-opens"
        );
        assert!(b.is_open());
    }

    #[test]
    fn observations_while_open_change_nothing() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 1, cooldown: 3 });
        assert!(b.observe(1).is_some());
        let state = b.state();
        assert_eq!(b.observe(5), None);
        assert_eq!(b.state(), state);
    }

    #[test]
    fn zero_cooldown_still_waits_one_round() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 1, cooldown: 0 });
        b.observe(1);
        assert_eq!(b.state(), BreakerState::Open { remaining: 1 });
        assert_eq!(b.tick(), Some((BreakerPhase::Open, BreakerPhase::HalfOpen)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
