//! Per-source circuit breakers and fleet job health accounting.
//!
//! A crawler hammering a sick source wastes budget: every request costs a
//! round (Definition 2.3) whether it succeeds or not. The supervisor keeps a
//! [`CircuitBreaker`] per job and samples the worker's consecutive-failure
//! streak at every slice boundary:
//!
//! * **Closed** — the job is healthy and competes for budget normally.
//! * **Open** — the streak reached [`BreakerConfig::trip_after`]; the job is
//!   paused and excluded from allocation for
//!   [`BreakerConfig::cooldown`] allocation rounds, so its budget flows to
//!   healthy jobs instead of being burned on a source that is down.
//! * **HalfOpen** — cooldown elapsed; the job gets one probe slice. A clean
//!   slice closes the breaker (a *recovery*); more faults re-open it.
//!
//! Trips, recoveries, and worker restarts are tallied per job in
//! [`JobHealth`] and surfaced through `FleetReport`.

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient-class failures (worker fault streak observed at
    /// a slice boundary) that trip the breaker open.
    pub trip_after: u32,
    /// Allocation rounds an open breaker waits before probing (minimum 1).
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 8, cooldown: 2 }
    }
}

/// Where a breaker currently is in its Closed → Open → HalfOpen cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: slices flow normally.
    Closed,
    /// Tripped: the job is paused for `remaining` more allocation rounds.
    Open {
        /// Allocation rounds left before the half-open probe.
        remaining: u32,
    },
    /// Cooled down: the next slice is a probe.
    HalfOpen,
}

/// One job's breaker: state machine plus trip/recovery tallies.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    trips: u64,
    recoveries: u64,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker { config, state: BreakerState::Closed, trips: 0, recoveries: 0 }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the job is paused (open breaker): excluded from allocation.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a half-open probe came back clean and the breaker re-closed.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Feeds the worker-reported consecutive-failure streak at a slice
    /// boundary into the state machine.
    pub fn observe(&mut self, fault_streak: u32) {
        match self.state {
            BreakerState::Closed => {
                if fault_streak >= self.config.trip_after {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => {
                if fault_streak == 0 {
                    self.state = BreakerState::Closed;
                    self.recoveries += 1;
                } else {
                    self.trip();
                }
            }
            // An open job receives no slices; a stale report changes nothing.
            BreakerState::Open { .. } => {}
        }
    }

    /// Advances one allocation round: open breakers cool toward half-open.
    pub fn tick(&mut self) {
        if let BreakerState::Open { remaining } = &mut self.state {
            *remaining = remaining.saturating_sub(1);
            if *remaining == 0 {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    fn trip(&mut self) {
        self.trips += 1;
        self.state = BreakerState::Open { remaining: self.config.cooldown.max(1) };
    }
}

/// Fault-tolerance counters for one fleet job, reported in `FleetReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobHealth {
    /// Times this job's breaker tripped open.
    pub breaker_trips: u64,
    /// Times this job's breaker recovered via a clean half-open probe.
    pub breaker_recoveries: u64,
    /// Times this job's worker was restarted after a panic.
    pub worker_restarts: u32,
    /// Whether the job was abandoned after exhausting its restart budget.
    pub abandoned: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_breaker_ignores_small_streaks() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 3, cooldown: 2 });
        b.observe(0);
        b.observe(2);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn full_trip_cooldown_probe_recovery_cycle() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 3, cooldown: 2 });
        b.observe(3);
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        b.tick();
        assert!(b.is_open(), "cooldown not yet elapsed");
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.observe(0);
        assert_eq!(b.state(), BreakerState::Closed, "clean probe closes");
        assert_eq!(b.recoveries(), 1);
    }

    #[test]
    fn dirty_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 2, cooldown: 1 });
        b.observe(2);
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.observe(1);
        assert!(b.is_open(), "any fault during the probe re-opens");
        assert_eq!(b.trips(), 2);
        assert_eq!(b.recoveries(), 0);
    }

    #[test]
    fn observations_while_open_change_nothing() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 1, cooldown: 3 });
        b.observe(1);
        let state = b.state();
        b.observe(5);
        assert_eq!(b.state(), state);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn zero_cooldown_still_waits_one_round() {
        let mut b = CircuitBreaker::new(BreakerConfig { trip_after: 1, cooldown: 0 });
        b.observe(1);
        assert_eq!(b.state(), BreakerState::Open { remaining: 1 });
        b.tick();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }
}
