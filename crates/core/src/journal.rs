//! Incremental crawl-state journal: per-query delta frames over a
//! checkpointed base.
//!
//! Periodic checkpoints ([`crate::store::CheckpointStore`]) bound recovery
//! loss to one checkpoint *interval* — up to [`crate::crawler::DEFAULT_CHECKPOINT_EVERY`]
//! queries of re-spent communication rounds. The [`StateJournal`] closes that
//! gap with a log-structured append per completed query: frame 0 holds a
//! full v2 checkpoint blob (the *base*), every later frame a small text
//! *delta* describing exactly what one query changed — new vocabulary
//! entries, status transitions, `L_queried` growth, harvested records, and
//! the cost counters. Both layers share the same trust model: the base is a
//! checksummed checkpoint, each delta frame is independently checksummed by
//! the [`dwc_store::FrameLog`] framing, and recovery replays the longest
//! valid prefix — a crash mid-append loses at most the query being framed.
//!
//! When the periodic checkpointer succeeds, the crawler rewrites the journal
//! base from the freshly persisted snapshot and truncates the deltas: the
//! journal never grows past one checkpoint interval of frames.
//!
//! Delta frame payload (line-oriented, same percent-escaping as the
//! checkpoint format):
//!
//! ```text
//! d\t<rounds>\t<queries>          cost counters after the query
//! v\t<attr>\t<string>\t<status>   one per new vocabulary id, in id order
//! s\t<index>\t<status>            status change of a pre-existing id
//! qa\t<id,id,...>                 ids appended to L_queried
//! qf\t<id,id,...>                 full L_queried replacement (requeue path)
//! r\t<key>\t<id,id,...>           one per newly harvested record
//! ```

use crate::checkpoint::{escape, unescape, Checkpoint, CheckpointError};
use crate::state::{CandStatus, CrawlState};
use dwc_store::FrameLog;
use std::io;
use std::path::Path;

fn status_char(s: CandStatus) -> char {
    match s {
        CandStatus::Undiscovered => 'U',
        CandStatus::Frontier => 'F',
        CandStatus::Queried => 'Q',
    }
}

fn status_from(c: &str) -> Result<CandStatus, CheckpointError> {
    match c {
        "U" => Ok(CandStatus::Undiscovered),
        "F" => Ok(CandStatus::Frontier),
        "Q" => Ok(CandStatus::Queried),
        _ => Err(CheckpointError::Malformed("journal status char")),
    }
}

fn parse_ids(s: &str, what: &'static str) -> Result<Vec<u32>, CheckpointError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|t| t.parse().map_err(|_| CheckpointError::Malformed(what))).collect()
}

/// What [`StateJournal::recover`] found on disk.
#[derive(Debug)]
pub struct JournalRecovery {
    /// The state at the last intact delta frame (or the base, if no delta
    /// survived), ready for [`crate::Crawler::resume`].
    pub checkpoint: Checkpoint,
    /// Delta frames applied on top of the base.
    pub deltas_applied: u64,
    /// Whether a torn or corrupt tail was discarded during replay.
    pub torn: bool,
}

/// Append-only per-query state journal over a [`FrameLog`].
#[derive(Debug)]
pub struct StateJournal {
    log: FrameLog,
    /// Shadow of the crawl state at the last appended frame, used to diff.
    shadow_status: Vec<CandStatus>,
    shadow_vocab_len: usize,
    shadow_records_len: usize,
    shadow_queried: Vec<u32>,
    has_base: bool,
}

impl StateJournal {
    /// Creates (truncating) a journal at `path`. The base frame is written
    /// by the first [`StateJournal::write_base`].
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(StateJournal {
            log: FrameLog::create(path)?,
            shadow_status: Vec::new(),
            shadow_vocab_len: 0,
            shadow_records_len: 0,
            shadow_queried: Vec::new(),
            has_base: false,
        })
    }

    /// Whether the base frame has been written yet.
    pub fn has_base(&self) -> bool {
        self.has_base
    }

    /// Frames in the journal (base + deltas).
    pub fn frames(&self) -> u64 {
        self.log.frames()
    }

    /// Resets the journal to a fresh base snapshot: truncates every frame
    /// and writes `cp` as frame 0. Called at crawl start (after seeds are
    /// planted) and after every successful periodic checkpoint — the journal
    /// then only carries deltas newer than durable state elsewhere.
    pub fn write_base(&mut self, cp: &Checkpoint) -> io::Result<()> {
        self.log.reset()?;
        self.log.append(cp.to_text().as_bytes())?;
        self.log.sync()?;
        self.shadow_status = cp.status.clone();
        self.shadow_vocab_len = cp.values.len();
        self.shadow_records_len = cp.records.len();
        self.shadow_queried = cp.queried.clone();
        self.has_base = true;
        Ok(())
    }

    /// Appends one delta frame: everything `state` changed since the last
    /// frame, plus the cost counters. No-op diff still writes a frame (the
    /// counters advanced).
    ///
    /// # Panics
    /// Panics if called before [`StateJournal::write_base`].
    pub fn append_delta(
        &mut self,
        state: &CrawlState,
        rounds: u64,
        queries: u64,
    ) -> io::Result<()> {
        assert!(self.has_base, "journal delta before base frame");
        let mut out = String::new();
        out.push_str(&format!("d\t{rounds}\t{queries}\n"));
        for i in self.shadow_vocab_len..state.vocab.len() {
            let v = dwc_model::ValueId(i as u32);
            out.push_str(&format!(
                "v\t{}\t{}\t{}\n",
                state.vocab.attr_of(v).0,
                escape(state.vocab.value_str(v)),
                status_char(state.status[i]),
            ));
        }
        for i in 0..self.shadow_vocab_len {
            if state.status[i] != self.shadow_status[i] {
                out.push_str(&format!("s\t{i}\t{}\n", status_char(state.status[i])));
            }
        }
        let queried: Vec<u32> = state.queried.iter().map(|v| v.0).collect();
        if queried.len() >= self.shadow_queried.len()
            && queried[..self.shadow_queried.len()] == self.shadow_queried[..]
        {
            if queried.len() > self.shadow_queried.len() {
                let appended: Vec<String> =
                    queried[self.shadow_queried.len()..].iter().map(u32::to_string).collect();
                out.push_str(&format!("qa\t{}\n", appended.join(",")));
            }
        } else {
            // Requeue (or any reordering): frame the whole list. L_queried
            // holds one id per issued query, so this stays small.
            let full: Vec<String> = queried.iter().map(u32::to_string).collect();
            out.push_str(&format!("qf\t{}\n", full.join(",")));
        }
        for (key, vals) in state.local.keyed_since(self.shadow_records_len) {
            let ids: Vec<String> = vals.iter().map(|v| v.0.to_string()).collect();
            out.push_str(&format!("r\t{key}\t{}\n", ids.join(",")));
        }
        self.log.append(out.as_bytes())?;
        self.shadow_status.clear();
        self.shadow_status.extend_from_slice(&state.status);
        self.shadow_vocab_len = state.vocab.len();
        self.shadow_records_len = state.local.num_records();
        self.shadow_queried = queried;
        Ok(())
    }

    /// Replays the journal at `path`: parses the base checkpoint from frame
    /// 0 and folds every intact delta frame into it. Returns `Ok(None)` when
    /// the file is missing or holds no valid base frame.
    pub fn recover(path: &Path) -> io::Result<Option<JournalRecovery>> {
        let replay = FrameLog::replay(path)?;
        let Some(base) = replay.frames.first() else {
            return Ok(None);
        };
        let text = std::str::from_utf8(base)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "journal base not UTF-8"))?;
        let mut cp = Checkpoint::from_text(text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("journal base: {e}"))
        })?;
        let mut deltas_applied = 0u64;
        for frame in &replay.frames[1..] {
            let text = std::str::from_utf8(frame).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "journal delta not UTF-8")
            })?;
            apply_delta(&mut cp, text).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("journal delta: {e}"))
            })?;
            deltas_applied += 1;
        }
        Ok(Some(JournalRecovery { checkpoint: cp, deltas_applied, torn: replay.torn }))
    }
}

/// Folds one delta frame into a checkpoint.
fn apply_delta(cp: &mut Checkpoint, text: &str) -> Result<(), CheckpointError> {
    for line in text.lines() {
        let mut parts = line.split('\t');
        let op = parts.next().unwrap_or("");
        match op {
            "d" => {
                let rounds = parts.next().ok_or(CheckpointError::Malformed("journal rounds"))?;
                let queries = parts.next().ok_or(CheckpointError::Malformed("journal queries"))?;
                cp.rounds =
                    rounds.parse().map_err(|_| CheckpointError::Malformed("journal rounds"))?;
                cp.queries =
                    queries.parse().map_err(|_| CheckpointError::Malformed("journal queries"))?;
            }
            "v" => {
                let attr: u16 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(CheckpointError::Malformed("journal value attr"))?;
                let s = unescape(parts.next().ok_or(CheckpointError::Malformed("journal value"))?)?;
                let st =
                    status_from(parts.next().ok_or(CheckpointError::Malformed("journal value"))?)?;
                cp.values.push((attr, s));
                cp.status.push(st);
            }
            "s" => {
                let idx: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(CheckpointError::Malformed("journal status index"))?;
                let st =
                    status_from(parts.next().ok_or(CheckpointError::Malformed("journal status"))?)?;
                *cp.status
                    .get_mut(idx)
                    .ok_or(CheckpointError::Malformed("journal status index"))? = st;
            }
            "qa" => {
                let ids = parse_ids(parts.next().unwrap_or(""), "journal queried id")?;
                cp.queried.extend(ids);
            }
            "qf" => {
                cp.queried = parse_ids(parts.next().unwrap_or(""), "journal queried id")?;
            }
            "r" => {
                let key: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(CheckpointError::Malformed("journal record key"))?;
                let ids = parse_ids(parts.next().unwrap_or(""), "journal record value")?;
                cp.records.push((key, ids));
            }
            _ => return Err(CheckpointError::Malformed("journal op")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dwc-journal-{}-{n}-{name}.jnl", std::process::id()))
    }

    fn base_cp() -> Checkpoint {
        Checkpoint {
            attr_names: vec!["A".into()],
            attr_queriable: vec![true],
            page_size: 10,
            keyword_mode: false,
            values: vec![(0, "a1".into())],
            status: vec![CandStatus::Frontier],
            queried: vec![],
            records: vec![],
            rounds: 0,
            queries: 0,
        }
    }

    #[test]
    fn base_only_recovers_the_checkpoint() {
        let path = scratch("base");
        let mut j = StateJournal::create(&path).unwrap();
        assert!(!j.has_base());
        j.write_base(&base_cp()).unwrap();
        let rec = StateJournal::recover(&path).unwrap().unwrap();
        assert_eq!(rec.checkpoint, base_cp());
        assert_eq!(rec.deltas_applied, 0);
        assert!(!rec.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_or_baseless_journal_recovers_none() {
        let path = scratch("missing");
        assert!(StateJournal::recover(&path).unwrap().is_none());
        let _ = StateJournal::create(&path).unwrap();
        assert!(StateJournal::recover(&path).unwrap().is_none(), "no base frame yet");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deltas_replay_state_changes() {
        let path = scratch("deltas");
        let mut j = StateJournal::create(&path).unwrap();
        j.write_base(&base_cp()).unwrap();

        // Simulate one completed query directly on a CrawlState.
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let a1 = st.intern(dwc_model::AttrId(0), "a1");
        st.status[a1.index()] = CandStatus::Queried;
        st.queried.push(a1);
        let a2 = st.intern(dwc_model::AttrId(0), "a2");
        st.status[a2.index()] = CandStatus::Frontier;
        st.local.insert(7, vec![a1, a2]);
        j.append_delta(&st, 3, 1).unwrap();

        let rec = StateJournal::recover(&path).unwrap().unwrap();
        assert_eq!(rec.deltas_applied, 1);
        let cp = rec.checkpoint;
        assert_eq!(cp.rounds, 3);
        assert_eq!(cp.queries, 1);
        assert_eq!(cp.values, vec![(0, "a1".into()), (0, "a2".into())]);
        assert_eq!(cp.status, vec![CandStatus::Queried, CandStatus::Frontier]);
        assert_eq!(cp.queried, vec![0]);
        assert_eq!(cp.records, vec![(7, vec![0, 1])]);

        // A requeue pops L_queried and flips the status back: the journal
        // frames the full list.
        st.queried.pop();
        st.status[a1.index()] = CandStatus::Frontier;
        j.append_delta(&st, 4, 2).unwrap();
        let rec = StateJournal::recover(&path).unwrap().unwrap();
        assert_eq!(rec.checkpoint.queried, Vec::<u32>::new());
        assert_eq!(rec.checkpoint.status[0], CandStatus::Frontier);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rebased_journal_truncates_deltas() {
        let path = scratch("rebase");
        let mut j = StateJournal::create(&path).unwrap();
        j.write_base(&base_cp()).unwrap();
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let a1 = st.intern(dwc_model::AttrId(0), "a1");
        st.status[a1.index()] = CandStatus::Frontier;
        j.append_delta(&st, 1, 1).unwrap();
        assert_eq!(j.frames(), 2);
        let mut cp2 = base_cp();
        cp2.rounds = 9;
        j.write_base(&cp2).unwrap();
        assert_eq!(j.frames(), 1, "rebase drops absorbed deltas");
        let rec = StateJournal::recover(&path).unwrap().unwrap();
        assert_eq!(rec.checkpoint.rounds, 9);
        assert_eq!(rec.deltas_applied, 0);
        let _ = std::fs::remove_file(&path);
    }
}
