//! Query-selection crawler for structured web sources.
//!
//! This crate is the reproduction of the paper's primary contribution:
//! a hidden-web database crawler built around the *query–harvest–decompose*
//! loop of Section 1, with pluggable **query selection policies**:
//!
//! * naive breadth-first / depth-first / random selection (§3.1),
//! * the greedy relational-link-based policy **GL** (§3.2),
//! * GL + min–max mutual-information re-ranking **MMMI** for the
//!   low-marginal-benefit regime (§3.3),
//! * heuristic query abortion (§3.4),
//! * the domain-knowledge policy **DM** with the harvest-rate estimators of
//!   Section 4 (equations 4.1–4.3, Q_DT hit-rate estimation, lazy evaluation,
//!   incremental `P(L_queried, DM)` maintenance).
//!
//! Architecture (paper §2.5): the **Query Selector** (a
//! [`policy::SelectionPolicy`]), the **Database Prober**
//! ([`source::ProberMode`]) and the **Result Extractor** ([`extract`]).
//! The crawler maintains `L_to-query` / `L_queried`, a statistics table, and
//! the local database `DB_local` ([`local::LocalDb`]).
//!
//! The crawler reaches its target exclusively through the [`source::DataSource`]
//! trait — a [`source::SourceRequest`]/[`source::SourceResponse`] envelope per
//! page request, `&self`, atomically billed — which makes an in-process
//! [`dwc_server::WebDbServer`], a fault-injecting decorator
//! ([`source::FaultySource`]), and a protocol-backed [`serve::Connection`]
//! into a [`serve::SourceService`] (bounded queue, admission control,
//! deadlines, cancellation) interchangeable.
//! Because the trait is implemented for `&S` and `Arc<S>` too, the same
//! generic [`Crawler`] covers both exclusive borrow-style use and fleets of
//! workers sharing one source ([`fleet`]).
//!
//! The crawler-side vocabulary is its own [`dwc_model::ValueInterner`]: the
//! crawler never shares an id space with the server — queries go out as
//! attribute-name + value-string form fills, results come back as strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abort;
pub mod chaos;
pub mod checkpoint;
pub mod config;
pub mod crawler;
pub mod domain_table;
pub mod events;
pub mod extract;
pub mod fault;
pub mod fleet;
pub mod health;
pub mod journal;
pub mod local;
pub mod metrics;
pub mod policy;
pub mod report;
pub mod sched;
pub mod serve;
pub mod source;
pub mod stage;
pub mod state;
pub mod store;
pub mod tenant;
pub mod trace;

pub use abort::AbortPolicy;
pub use chaos::{shrink_plan, ChaosKind, ChaosPlan, ChaosSpecError, ChaosState, ChaosTally};
pub use checkpoint::Checkpoint;
pub use config::{ConfigError, RetryPolicy};
pub use crawler::{CrawlConfig, CrawlReport, Crawler, ProberMode, QueryMode, StopReason};
pub use domain_table::DomainTable;
pub use events::{BreakerPhase, CrawlEvent, EventBus, EventSink, JsonlSink, MemorySink};
pub use fault::{FaultKind, FaultPlan, FaultPlanSource, FaultTally};
pub use fleet::{
    run_fleet, run_fleet_controlled, run_fleet_supervised, run_fleet_thread_per_job,
    AllocationStrategy, Allocator, EvenAllocator, FleetConfig, FleetController, FleetJob, FleetOps,
    FleetReport, HarvestAllocator, WeightedFairAllocator,
};
pub use health::{BreakerConfig, BreakerState, CircuitBreaker, JobHealth};
pub use journal::{JournalRecovery, StateJournal};
pub use local::LocalDb;
pub use metrics::{replay_report, replay_service_report, replay_usage, MetricsRegistry};
pub use policy::{PolicyKind, SelectionPolicy};
pub use report::CrawlSummary;
pub use sched::{Pool, SchedulerStats, TaskCtx, WorkerStats};
pub use serve::{
    ClientPool, Connection, LatencyModel, ServeConfig, ServeConfigBuilder, ServiceReport,
    SourceService,
};
pub use source::{
    CancelToken, CrawlError, DataSource, FaultySource, PageMeta, ServiceMeta, SourceRequest,
    SourceResponse,
};
pub use stage::{Executor, Ingestor, Planner};
pub use state::{CandStatus, CrawlState, QueryOutcome};
pub use store::{CheckpointStore, SaveReceipt, StoreError};
pub use tenant::{RateLimit, Tenant, TenantId, TokenBucket, UsageLedger};
pub use trace::{CrawlTrace, TraceError};
