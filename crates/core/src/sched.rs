//! Bounded work-stealing slice pool for fleet scheduling.
//!
//! The fleet used to spawn one OS thread per crawl job — at 1k+ sources
//! that is ~8 MB of stack per job and a coordinator drowning in context
//! switches. This module multiplexes any number of queued *slices* (one
//! budget grant for one job) onto `N` worker threads:
//!
//! * the coordinator [`Pool::submit`]s tasks into a global
//!   [`crossbeam::deque::Injector`] FIFO;
//! * each worker owns a local FIFO deque and refills it from the injector
//!   in batches ([`crossbeam::deque::Injector::steal_batch_and_pop`]), so
//!   the global queue is not hammered per task;
//! * an idle worker steals from a sibling's deque before parking, so one
//!   slow slice never strands queued work behind it;
//! * results flow back over a single `mpsc` channel ([`Pool::recv`]) — one
//!   injector + one result channel total, not a channel pair per job.
//!
//! With one worker the pool drains the injector strictly in submission
//! order (local refills preserve the global FIFO prefix and there is no
//! sibling to steal from), which is what makes `workers = 1` fleet runs
//! bit-for-bit deterministic.
//!
//! The pool is deliberately oblivious to crawling: it moves `T`s through a
//! `Fn(TaskCtx, T) -> R` handler. Budget accounting, supervision, and
//! breaker policy all stay in [`crate::fleet`], which also re-submits a
//! job's next slice only after folding the previous one — a job is never
//! in flight on two workers at once.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Where and how a task ended up running, passed to the pool handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// Index of the worker thread executing the task (`0..workers`).
    pub worker: u32,
    /// Whether the task was stolen from a sibling's deque rather than
    /// taken from the global injector or the worker's own refill batch.
    pub stolen: bool,
}

/// Per-worker lifetime counters, returned by [`Pool::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Index of the worker thread these counters belong to.
    pub worker: u32,
    /// Tasks this worker executed (from any source).
    pub slices: u64,
    /// Tasks this worker stole from a sibling's deque.
    pub steals: u64,
    /// Batch refills this worker pulled from the global injector.
    pub refills: u64,
}

/// Scheduler-level counters for a whole fleet run, derived from
/// [`crate::events::CrawlEvent::SliceScheduled`] /
/// [`crate::events::CrawlEvent::SliceCompleted`] streams by
/// [`crate::metrics::MetricsRegistry::scheduler_stats`] and surfaced as
/// [`crate::fleet::FleetReport`]`::scheduler`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedulerStats {
    /// Worker threads the pool ran with.
    pub workers: u32,
    /// Budget slices handed to the pool by the coordinator.
    pub slices_scheduled: u64,
    /// Slices that came back from a worker without panicking.
    pub slices_completed: u64,
    /// Rounds granted across all scheduled slices.
    pub rounds_granted: u64,
    /// Elapsed rounds actually billed across all completed slices.
    pub rounds_executed: u64,
    /// Completed slices that ran on a worker which stole them.
    pub steals: u64,
    /// Completed slices per worker, indexed by worker id.
    pub per_worker_slices: Vec<u64>,
}

/// Coordination state shared between the pool handle and its workers.
struct Shared {
    shutdown: AtomicBool,
    gate: Mutex<()>,
    cv: Condvar,
}

/// A bounded pool of worker threads draining a global task queue.
///
/// Submit with [`Pool::submit`], collect with [`Pool::recv`] (results
/// arrive in completion order, each tagged however the handler tags them),
/// and tear down with [`Pool::join`] once every submitted task has been
/// received. The handler must not panic — wrap fallible work in
/// `catch_unwind` and encode the failure in `R`, as the fleet does.
pub struct Pool<T, R> {
    workers: usize,
    injector: Arc<Injector<T>>,
    shared: Arc<Shared>,
    result_rx: mpsc::Receiver<R>,
    handles: Vec<std::thread::JoinHandle<WorkerStats>>,
}

impl<T: Send + 'static, R: Send + 'static> Pool<T, R> {
    /// Spawns `workers` threads (clamped to at least 1) running `handler`
    /// over submitted tasks.
    pub fn new<F>(workers: usize, handler: F) -> Pool<T, R>
    where
        F: Fn(TaskCtx, T) -> R + Send + Clone + 'static,
    {
        let workers = workers.max(1);
        let injector = Arc::new(Injector::new());
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        });
        let (result_tx, result_rx) = mpsc::channel::<R>();
        let locals: Vec<Worker<T>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<T>> = locals.iter().map(Worker::stealer).collect();
        let handles = locals
            .into_iter()
            .enumerate()
            .map(|(id, local)| {
                let injector = Arc::clone(&injector);
                let stealers = stealers.clone();
                let shared = Arc::clone(&shared);
                let handler = handler.clone();
                let result_tx = result_tx.clone();
                std::thread::spawn(move || {
                    worker_loop(
                        id as u32, local, &injector, &stealers, &shared, handler, &result_tx,
                    )
                })
            })
            .collect();
        Pool { workers, injector, shared, result_rx, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a task on the global injector and wakes a parked worker.
    pub fn submit(&self, task: T) {
        self.injector.push(task);
        // Lock/unlock pairs with the workers' wait: a worker between its
        // empty-check and its park will see the push after the timeout at
        // the latest; one already parked is woken now.
        drop(self.shared.gate.lock().expect("pool gate poisoned"));
        self.shared.cv.notify_one();
    }

    /// Enqueues a batch of prioritized tasks: the batch is stable-sorted
    /// by priority (highest first) and pushed onto the global injector in
    /// that order, then every parked worker is woken.
    ///
    /// Priority is *dispatch order within the batch*, nothing more: with
    /// one worker the batch executes exactly in the sorted order (so a
    /// high-priority tenant's slice always starts first), and batches stay
    /// FIFO relative to each other. Equal priorities keep their submission
    /// order, which is what keeps `workers = 1` runs bit-for-bit
    /// deterministic — and makes an all-equal-priority batch identical to
    /// a sequence of plain [`Pool::submit`] calls.
    pub fn submit_batch(&self, mut batch: Vec<(u8, T)>) {
        batch.sort_by_key(|&(priority, _)| std::cmp::Reverse(priority));
        let count = batch.len();
        for (_, task) in batch {
            self.injector.push(task);
        }
        if count > 0 {
            drop(self.shared.gate.lock().expect("pool gate poisoned"));
            self.shared.cv.notify_all();
        }
    }

    /// Blocks until the next result arrives. Call exactly once per
    /// submitted task; calling with nothing in flight deadlocks by design
    /// (the workers are still alive waiting for work).
    pub fn recv(&self) -> R {
        self.result_rx.recv().expect("pool workers alive")
    }

    /// Shuts the pool down and returns per-worker counters, indexed by
    /// worker id. Any still-queued tasks are dropped unexecuted; call only
    /// after every submitted task has been [`Pool::recv`]'d.
    pub fn join(mut self) -> Vec<WorkerStats> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        let handles = std::mem::take(&mut self.handles);
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    }
}

impl<T, R> Drop for Pool<T, R> {
    /// Signals shutdown so workers exit instead of parking forever when the
    /// pool is dropped without [`Pool::join`] (e.g. while the coordinator
    /// unwinds from a panic). Threads are detached, not joined — joining
    /// during a panic could deadlock on a worker mid-task.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }
}

fn worker_loop<T, R, F>(
    id: u32,
    local: Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    shared: &Shared,
    handler: F,
    result_tx: &mpsc::Sender<R>,
) -> WorkerStats
where
    F: Fn(TaskCtx, T) -> R,
{
    let mut stats = WorkerStats { worker: id, ..WorkerStats::default() };
    loop {
        // Own deque first, then a batch refill from the global queue, then
        // steal from a sibling — the classic work-stealing order.
        let next = local.pop().map(|t| (t, false)).or_else(|| {
            if let Steal::Success(t) = injector.steal_batch_and_pop(&local) {
                stats.refills += 1;
                return Some((t, false));
            }
            stealers
                .iter()
                .enumerate()
                .filter(|&(victim, _)| victim != id as usize)
                .find_map(|(_, s)| s.steal().success())
                .map(|t| {
                    stats.steals += 1;
                    (t, true)
                })
        });
        match next {
            Some((task, stolen)) => {
                stats.slices += 1;
                let result = handler(TaskCtx { worker: id, stolen }, task);
                if result_tx.send(result).is_err() {
                    break; // coordinator gone; nothing left to report to
                }
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let guard = shared.gate.lock().expect("pool gate poisoned");
                // Timeout bounds the cost of a wake-up lost between the
                // empty-check above and this park.
                let _unused = shared
                    .cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("pool gate poisoned");
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = Pool::new(4, |_ctx: TaskCtx, x: u64| x * x);
        for x in 0..100u64 {
            pool.submit(x);
        }
        let mut sum = 0u64;
        for _ in 0..100 {
            sum += pool.recv();
        }
        assert_eq!(sum, (0..100u64).map(|x| x * x).sum());
        let stats = pool.join();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats.iter().map(|s| s.slices).sum::<u64>(), 100);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.worker, i as u32, "stats come back indexed by worker id");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0, |_ctx: TaskCtx, x: u32| x + 1);
        pool.submit(41);
        assert_eq!(pool.recv(), 42);
        assert_eq!(pool.join().len(), 1);
    }

    #[test]
    fn single_worker_preserves_submission_order() {
        let pool = Pool::new(1, |_ctx: TaskCtx, x: u32| x);
        for x in 0..50u32 {
            pool.submit(x);
        }
        let got: Vec<u32> = (0..50).map(|_| pool.recv()).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "one worker drains FIFO in order");
        let stats = pool.join();
        assert_eq!(stats[0].steals, 0, "nobody to steal from");
    }

    #[test]
    fn slow_task_does_not_strand_queued_work() {
        // Two workers, one long task submitted first: the second worker
        // must drain the rest (refilled or stolen) while the first sleeps.
        let pool = Pool::new(2, |_ctx: TaskCtx, ms: u64| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        pool.submit(60);
        for _ in 0..8 {
            pool.submit(0);
        }
        let start = std::time::Instant::now();
        let mut got = Vec::new();
        for _ in 0..9 {
            got.push(pool.recv());
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 0, 0, 0, 0, 0, 0, 0, 60]);
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "quick tasks must not serialize behind the sleeper"
        );
        pool.join();
    }

    #[test]
    fn batch_submit_dispatches_by_priority_then_fifo() {
        let pool = Pool::new(1, |_ctx: TaskCtx, x: u32| x);
        // Unsorted priorities; ties (priority 2) must keep submission order.
        pool.submit_batch(vec![(0, 10), (2, 20), (1, 30), (2, 21)]);
        let first: Vec<u32> = (0..4).map(|_| pool.recv()).collect();
        assert_eq!(first, vec![20, 21, 30, 10], "highest priority first, stable ties");
        // A later batch never jumps ahead of an earlier one.
        pool.submit_batch(vec![(0, 40)]);
        pool.submit_batch(vec![(9, 50)]);
        assert_eq!(pool.recv(), 40);
        assert_eq!(pool.recv(), 50);
        pool.join();
    }

    #[test]
    fn all_equal_priority_batch_matches_plain_submits() {
        let pool = Pool::new(1, |_ctx: TaskCtx, x: u32| x);
        pool.submit_batch((0..50u32).map(|x| (0u8, x)).collect());
        let got: Vec<u32> = (0..50).map(|_| pool.recv()).collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        pool.join();
    }

    #[test]
    fn handler_sees_worker_ids_within_range() {
        let pool = Pool::new(3, |ctx: TaskCtx, _x: u8| ctx.worker);
        for _ in 0..30 {
            pool.submit(0);
        }
        for _ in 0..30 {
            assert!(pool.recv() < 3);
        }
        pool.join();
    }
}
