//! Deterministic chaos injection for the serving tier.
//!
//! The serving seam ([`crate::serve`]) models queueing, shedding and
//! deadlines, but a well-behaved queue is still a fantasy transport: real
//! wires drop, duplicate, reorder, truncate and stall frames, and real
//! services crash holding requests. This module supplies the fault model —
//! the *machinery that survives it* (idempotent request ids, service-side
//! dedup, retransmission, hedging, crash recovery) lives in
//! [`crate::serve`].
//!
//! A [`ChaosPlan`] is a deterministic schedule: it maps 1-based **wire frame
//! indices** to [`ChaosKind`]s. Every transmission the client attempts —
//! request frames and reply frames alike — consumes one index from a shared
//! monotone counter ([`ChaosState::next_frame`]), so a plan names exact
//! frames ("the 12th frame on this wire is dropped") and a run with the same
//! plan injects exactly the same faults. Plans come from three places:
//!
//! * [`ChaosPlan::seeded`] — pseudo-random schedules from a seed, the chaos
//!   harness's bread and butter;
//! * builder methods ([`drop_at`](ChaosPlan::drop_at) …) — hand-written
//!   regression schedules;
//! * [`ChaosPlan::from_spec`] — parsed from a compact `"12:drop,40:stall"`
//!   string, the format `dwc chaos --chaos-plan` prints so a failing
//!   schedule can be replayed from the command line.
//!
//! When a seeded schedule breaks an invariant, [`shrink_plan`] ddmin-shrinks
//! it to a minimal failing subset — the smallest set of frame faults that
//! still reproduces the failure — which is what gets printed and archived.
//!
//! The invariants the harness checks against any plan (see `tests/chaos.rs`):
//!
//! 1. **Crawl parity** — the crawl report is bit-identical to the fault-free
//!    run with the same crawl seed: chaos is fully absorbed below the
//!    `respond()` seam.
//! 2. **Billing conservation** — `rounds_used` equals `executed + shed +
//!    cancelled + retransmitted`: every frame that reached the service is
//!    billed exactly once, dropped request frames bill nothing.
//! 3. **Replay parity** — service reports still fold deterministically from
//!    their recorded event streams.

use crate::fault::{splitmix64, SPLITMIX_STEP};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One kind of injected fault, attached to a single wire frame.
///
/// The same kind means different things on a *request* frame (client →
/// service) and a *reply* frame (service → client); both readings are
/// documented per variant. Frames are allocated in pairs per transmission
/// attempt: first the request frame, then the reply frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChaosKind {
    /// The frame vanishes. Request: never reaches the service, bills
    /// nothing, the client retransmits. Reply: the request was executed and
    /// billed, the client retransmits and is served from the dedup cache.
    Drop,
    /// The frame arrives twice. Request: a duplicate job with the same
    /// request id is enqueued (billed, dedup-served, never re-executed).
    /// Reply: the duplicate is discarded by the client; tallied only.
    Duplicate,
    /// The frame is delayed behind later traffic by the reorder window.
    Reorder,
    /// The frame is truncated in transit. Request: fails service-side
    /// framing and is discarded — observably a drop. Reply: the client's
    /// checksum rejects it and it retransmits; the intact frame is served
    /// from the dedup cache.
    Corrupt,
    /// The frame stalls on the wire for the plan's stall duration before
    /// delivery. This is the fault hedging exists for.
    Stall,
    /// The link carrying the frame goes down. Same observable as [`Drop`]
    /// (the frame is lost); tallied separately.
    Disconnect,
    /// The worker holding this frame's request crashes. Before execution:
    /// the request is billed cancelled and the retransmit re-executes.
    /// After execution (reply frame): the outcome survives in the dedup
    /// cache and the retransmit is served from it — exactly-once holds
    /// across the crash.
    Crash,
    /// The whole service halts permanently: every later transmission fails
    /// unbilled. The crash-recovery harness resumes the crawl from its last
    /// checkpoint against a fresh service.
    Halt,
}

impl ChaosKind {
    /// Every kind, in spec order.
    pub const ALL: [ChaosKind; 8] = [
        ChaosKind::Drop,
        ChaosKind::Duplicate,
        ChaosKind::Reorder,
        ChaosKind::Corrupt,
        ChaosKind::Stall,
        ChaosKind::Disconnect,
        ChaosKind::Crash,
        ChaosKind::Halt,
    ];

    /// The spec-string token for this kind (`"drop"`, `"stall"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosKind::Drop => "drop",
            ChaosKind::Duplicate => "dup",
            ChaosKind::Reorder => "reorder",
            ChaosKind::Corrupt => "corrupt",
            ChaosKind::Stall => "stall",
            ChaosKind::Disconnect => "disconnect",
            ChaosKind::Crash => "crash",
            ChaosKind::Halt => "halt",
        }
    }

    /// Parses a spec-string token. Accepts exactly what [`as_str`]
    /// (ChaosKind::as_str) produces.
    pub fn parse(token: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.into_iter().find(|k| k.as_str() == token)
    }
}

impl fmt::Display for ChaosKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A deterministic fault schedule: wire-frame index → fault, plus the two
/// duration knobs ([`stall`](ChaosPlan::stall_for) /
/// [`reorder`](ChaosPlan::reorder_for)) shared by every timed fault in the
/// plan. Frame indices are 1-based: frame 1 is the first transmission on
/// the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    faults: BTreeMap<u64, ChaosKind>,
    stall: Option<Duration>,
    reorder: Option<Duration>,
}

/// How long a stalled frame sits on the wire when the plan doesn't say.
const DEFAULT_STALL: Duration = Duration::from_millis(2);
/// How far a reordered frame slips when the plan doesn't say.
const DEFAULT_REORDER: Duration = Duration::from_micros(200);

impl ChaosPlan {
    /// An empty plan: no faults, a chaos-free wire.
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Schedules `kind` on 1-based wire frame `frame` (replacing any fault
    /// already there). Frame 0 is not a frame; it is ignored.
    pub fn at(mut self, frame: u64, kind: ChaosKind) -> Self {
        if frame > 0 {
            self.faults.insert(frame, kind);
        }
        self
    }

    /// Schedules a [`ChaosKind::Drop`] on frame `frame`.
    pub fn drop_at(self, frame: u64) -> Self {
        self.at(frame, ChaosKind::Drop)
    }

    /// Schedules a [`ChaosKind::Duplicate`] on frame `frame`.
    pub fn duplicate_at(self, frame: u64) -> Self {
        self.at(frame, ChaosKind::Duplicate)
    }

    /// Schedules a [`ChaosKind::Corrupt`] on frame `frame`.
    pub fn corrupt_at(self, frame: u64) -> Self {
        self.at(frame, ChaosKind::Corrupt)
    }

    /// Schedules a [`ChaosKind::Stall`] on frame `frame`.
    pub fn stall_at(self, frame: u64) -> Self {
        self.at(frame, ChaosKind::Stall)
    }

    /// Schedules a [`ChaosKind::Crash`] on frame `frame`.
    pub fn crash_at(self, frame: u64) -> Self {
        self.at(frame, ChaosKind::Crash)
    }

    /// Schedules a [`ChaosKind::Halt`] on frame `frame`.
    pub fn halt_at(self, frame: u64) -> Self {
        self.at(frame, ChaosKind::Halt)
    }

    /// Sets how long [`ChaosKind::Stall`] holds a frame (default 2 ms).
    pub fn stall_for(mut self, stall: Duration) -> Self {
        self.stall = Some(stall);
        self
    }

    /// Sets how far [`ChaosKind::Reorder`] delays a frame (default 200 µs).
    pub fn reorder_for(mut self, reorder: Duration) -> Self {
        self.reorder = Some(reorder);
        self
    }

    /// A pseudo-random schedule over the first `horizon` wire frames: each
    /// frame independently draws a fault with probability `rate`, choosing
    /// uniformly among `kinds` (all kinds when `kinds` is empty). The same
    /// `(seed, horizon, rate, kinds)` always yields the same plan — the
    /// draw is the same splitmix64 scheme [`crate::fault::FaultPlan::seeded`]
    /// uses, so chaos schedules and source-fault schedules decorrelate by
    /// seed alone.
    pub fn seeded(seed: u64, horizon: u64, rate: f64, kinds: &[ChaosKind]) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let threshold = (rate * u64::MAX as f64) as u64;
        let pool: &[ChaosKind] = if kinds.is_empty() { &ChaosKind::ALL } else { kinds };
        let mut plan = ChaosPlan::new();
        for frame in 1..=horizon {
            let draw = splitmix64(seed.wrapping_add(frame.wrapping_mul(SPLITMIX_STEP)));
            if draw <= threshold {
                // A second decorrelated draw picks the kind, so changing the
                // kind pool never shifts *which* frames fault.
                let pick = splitmix64(draw ^ SPLITMIX_STEP) as usize % pool.len();
                plan.faults.insert(frame, pool[pick]);
            }
        }
        plan
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault scheduled on `frame`, if any.
    pub fn kind_at(&self, frame: u64) -> Option<ChaosKind> {
        self.faults.get(&frame).copied()
    }

    /// Iterates `(frame, kind)` pairs in frame order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, ChaosKind)> + '_ {
        self.faults.iter().map(|(&f, &k)| (f, k))
    }

    /// How long stalled frames sit on the wire.
    pub fn stall(&self) -> Duration {
        self.stall.unwrap_or(DEFAULT_STALL)
    }

    /// How far reordered frames slip.
    pub fn reorder(&self) -> Duration {
        self.reorder.unwrap_or(DEFAULT_REORDER)
    }

    /// Renders the plan as the compact spec `dwc chaos --chaos-plan`
    /// accepts: `"12:drop,40:stall"`, frames in order. Empty plans render
    /// as an empty string.
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for (frame, kind) in self.iter() {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(&format!("{frame}:{kind}"));
        }
        out
    }

    /// Parses a spec produced by [`to_spec`](ChaosPlan::to_spec). Whitespace
    /// around entries is tolerated; an empty string is the empty plan.
    pub fn from_spec(spec: &str) -> Result<Self, ChaosSpecError> {
        let mut plan = ChaosPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (frame, kind) =
                entry.split_once(':').ok_or_else(|| ChaosSpecError { entry: entry.to_owned() })?;
            let frame: u64 =
                frame.trim().parse().map_err(|_| ChaosSpecError { entry: entry.to_owned() })?;
            let kind = ChaosKind::parse(kind.trim())
                .ok_or_else(|| ChaosSpecError { entry: entry.to_owned() })?;
            if frame == 0 {
                return Err(ChaosSpecError { entry: entry.to_owned() });
            }
            plan.faults.insert(frame, kind);
        }
        Ok(plan)
    }

    /// The plan restricted to a subset of its faults — the shrinking
    /// primitive: same duration knobs, only the given frames keep their
    /// faults.
    pub fn restricted_to(&self, frames: &[u64]) -> Self {
        let mut sub = self.clone();
        sub.faults.retain(|frame, _| frames.contains(frame));
        sub
    }
}

/// A spec entry [`ChaosPlan::from_spec`] could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpecError {
    /// The offending `frame:kind` entry, verbatim.
    pub entry: String,
}

impl fmt::Display for ChaosSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad chaos spec entry {:?} (want FRAME:KIND, e.g. 12:drop)", self.entry)
    }
}

impl std::error::Error for ChaosSpecError {}

/// Delta-debugging (ddmin) shrink: given a plan whose schedule makes
/// `fails` return `true`, finds a subset of its faults that still fails but
/// from which no single fault can be removed without the failure vanishing
/// (1-minimality). `fails` is re-run on candidate sub-plans, so it should
/// be a full deterministic reproduction of the failing run.
///
/// Returns the plan unchanged when it no longer fails (non-reproducible
/// failure) — shrinking only ever preserves a real failure.
pub fn shrink_plan<F: FnMut(&ChaosPlan) -> bool>(plan: &ChaosPlan, mut fails: F) -> ChaosPlan {
    if !fails(plan) {
        return plan.clone();
    }
    let mut frames: Vec<u64> = plan.iter().map(|(f, _)| f).collect();
    let mut chunks = 2usize;
    while frames.len() > 1 {
        let chunk_len = frames.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < frames.len() {
            let end = (start + chunk_len).min(frames.len());
            // Try deleting frames[start..end] — the complement must still fail.
            let complement: Vec<u64> =
                frames[..start].iter().chain(frames[end..].iter()).copied().collect();
            if !complement.is_empty() && fails(&plan.restricted_to(&complement)) {
                frames = complement;
                chunks = chunks.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunks >= frames.len() {
                break;
            }
            chunks = (chunks * 2).min(frames.len());
        }
    }
    plan.restricted_to(&frames)
}

/// Running totals of injected faults, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosTally {
    /// Frames eaten by [`ChaosKind::Drop`].
    pub dropped: u64,
    /// Frames doubled by [`ChaosKind::Duplicate`].
    pub duplicated: u64,
    /// Frames slipped by [`ChaosKind::Reorder`].
    pub reordered: u64,
    /// Frames truncated by [`ChaosKind::Corrupt`].
    pub corrupted: u64,
    /// Frames held by [`ChaosKind::Stall`].
    pub stalled: u64,
    /// Frames lost to [`ChaosKind::Disconnect`].
    pub disconnects: u64,
    /// Worker crashes injected by [`ChaosKind::Crash`].
    pub crashes: u64,
    /// Whether a [`ChaosKind::Halt`] took the service down.
    pub halted: bool,
}

impl ChaosTally {
    /// Total injected faults (halt counted once).
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.corrupted
            + self.stalled
            + self.disconnects
            + self.crashes
            + u64::from(self.halted)
    }
}

/// Live chaos bookkeeping shared by every connection on a wire: the plan,
/// the monotone frame counter, the injected-fault tallies and the halt
/// latch. One `Arc<ChaosState>` per service under test — the frame counter
/// is global across the client pool, which is what makes plan indices mean
/// "the N-th transmission anywhere on this wire".
#[derive(Debug)]
pub struct ChaosState {
    plan: ChaosPlan,
    cursor: AtomicU64,
    halted: AtomicBool,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    corrupted: AtomicU64,
    stalled: AtomicU64,
    disconnects: AtomicU64,
    crashes: AtomicU64,
}

impl ChaosState {
    /// Arms a plan: frame counter at zero, nothing injected yet.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosState {
            plan,
            cursor: AtomicU64::new(0),
            halted: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Allocates the next 1-based wire frame index and looks up its
    /// scheduled fault. Every transmission attempt — request or reply —
    /// consumes exactly one index, faulted or not.
    pub fn next_frame(&self) -> (u64, Option<ChaosKind>) {
        let frame = self.cursor.fetch_add(1, Ordering::Relaxed) + 1;
        (frame, self.plan.kind_at(frame))
    }

    /// Frames transmitted so far.
    pub fn frames_sent(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Whether a [`ChaosKind::Halt`] fired: the service is gone for good.
    pub fn is_halted(&self) -> bool {
        self.halted.load(Ordering::Relaxed)
    }

    /// Latches the halt.
    pub fn set_halted(&self) {
        self.halted.store(true, Ordering::Relaxed);
    }

    /// Records one injected fault of `kind` in the tallies.
    pub(crate) fn note(&self, kind: ChaosKind) {
        match kind {
            ChaosKind::Drop => self.dropped.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Duplicate => self.duplicated.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Reorder => self.reordered.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Corrupt => self.corrupted.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Stall => self.stalled.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Disconnect => self.disconnects.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Crash => self.crashes.fetch_add(1, Ordering::Relaxed),
            ChaosKind::Halt => {
                self.set_halted();
                0
            }
        };
    }

    /// Snapshot of the injected-fault totals.
    pub fn tally(&self) -> ChaosTally {
        ChaosTally {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            halted: self.is_halted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_rate_bounded() {
        let a = ChaosPlan::seeded(42, 1000, 0.1, &[]);
        let b = ChaosPlan::seeded(42, 1000, 0.1, &[]);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, ChaosPlan::seeded(43, 1000, 0.1, &[]), "different seed, different plan");
        // ~10% of 1000 frames; loose 4x bounds keep this robust across seeds.
        assert!(a.len() > 25 && a.len() < 400, "rate ~0.1 of 1000, got {}", a.len());
        assert!(ChaosPlan::seeded(42, 1000, 0.0, &[]).is_empty());
        assert_eq!(ChaosPlan::seeded(42, 1000, 1.0, &[]).len(), 1000);
    }

    #[test]
    fn kind_pool_restricts_draws_without_moving_frames() {
        let all = ChaosPlan::seeded(7, 500, 0.2, &[]);
        let drops = ChaosPlan::seeded(7, 500, 0.2, &[ChaosKind::Drop]);
        assert_eq!(
            all.iter().map(|(f, _)| f).collect::<Vec<_>>(),
            drops.iter().map(|(f, _)| f).collect::<Vec<_>>(),
            "kind pool must not shift which frames fault"
        );
        assert!(drops.iter().all(|(_, k)| k == ChaosKind::Drop));
    }

    #[test]
    fn spec_roundtrips_and_rejects_garbage() {
        let plan = ChaosPlan::new().drop_at(12).stall_at(40).at(7, ChaosKind::Disconnect);
        let spec = plan.to_spec();
        assert_eq!(spec, "7:disconnect,12:drop,40:stall");
        assert_eq!(ChaosPlan::from_spec(&spec).unwrap(), plan);
        assert_eq!(ChaosPlan::from_spec("").unwrap(), ChaosPlan::new());
        assert_eq!(ChaosPlan::from_spec(" 3:crash , 9:halt ").unwrap().len(), 2);
        assert!(ChaosPlan::from_spec("12").is_err());
        assert!(ChaosPlan::from_spec("x:drop").is_err());
        assert!(ChaosPlan::from_spec("12:sneeze").is_err());
        assert!(ChaosPlan::from_spec("0:drop").is_err(), "frames are 1-based");
        for kind in ChaosKind::ALL {
            assert_eq!(ChaosKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn state_allocates_frames_and_tallies_faults() {
        let state = ChaosState::new(ChaosPlan::new().drop_at(2).crash_at(3));
        assert_eq!(state.next_frame(), (1, None));
        assert_eq!(state.next_frame(), (2, Some(ChaosKind::Drop)));
        assert_eq!(state.next_frame(), (3, Some(ChaosKind::Crash)));
        assert_eq!(state.frames_sent(), 3);
        state.note(ChaosKind::Drop);
        state.note(ChaosKind::Crash);
        state.note(ChaosKind::Halt);
        let tally = state.tally();
        assert_eq!(tally.dropped, 1);
        assert_eq!(tally.crashes, 1);
        assert!(tally.halted);
        assert!(state.is_halted());
        assert_eq!(tally.total(), 3);
    }

    #[test]
    fn shrink_finds_the_single_culprit_fault() {
        let plan = ChaosPlan::seeded(11, 400, 0.15, &[ChaosKind::Drop, ChaosKind::Stall]);
        assert!(plan.len() > 10, "need a non-trivial plan to shrink");
        let culprit = plan.iter().nth(plan.len() / 2).unwrap().0;
        // "Fails" iff the culprit frame's fault is present.
        let shrunk = shrink_plan(&plan, |p| p.kind_at(culprit).is_some());
        assert_eq!(shrunk.len(), 1);
        assert!(shrunk.kind_at(culprit).is_some());
    }

    #[test]
    fn shrink_keeps_interacting_pairs_together() {
        let plan =
            ChaosPlan::new().drop_at(3).drop_at(8).stall_at(21).crash_at(34).duplicate_at(55);
        // The failure needs *both* frame 8 and frame 34.
        let shrunk = shrink_plan(&plan, |p| p.kind_at(8).is_some() && p.kind_at(34).is_some());
        assert_eq!(shrunk.len(), 2);
        assert_eq!(shrunk.kind_at(8), Some(ChaosKind::Drop));
        assert_eq!(shrunk.kind_at(34), Some(ChaosKind::Crash));
    }

    #[test]
    fn shrink_returns_nonreproducible_plans_untouched() {
        let plan = ChaosPlan::new().drop_at(1).drop_at(2);
        assert_eq!(shrink_plan(&plan, |_| false), plan);
    }

    #[test]
    fn restricted_plans_keep_duration_knobs() {
        let plan = ChaosPlan::new()
            .stall_at(5)
            .drop_at(9)
            .stall_for(Duration::from_millis(7))
            .reorder_for(Duration::from_micros(50));
        let sub = plan.restricted_to(&[5]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.stall(), Duration::from_millis(7));
        assert_eq!(sub.reorder(), Duration::from_micros(50));
    }
}
