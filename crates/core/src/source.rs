//! The crawler-side boundary to a data source.
//!
//! A crawler sees a hidden-web source only through its query interface:
//! queries go out, paginated result pages come back, and every page request
//! — successful or not — costs one communication round (Definition 2.3).
//! [`DataSource`] captures exactly that contract, so [`crate::Crawler`] can
//! drive an in-process [`WebDbServer`], a fault-injecting decorator
//! ([`FaultySource`]), or a future real-HTTP backend interchangeably.
//!
//! Results cross the boundary in *extracted* form
//! ([`crate::extract::ExtractedPage`]: attribute names + value strings) —
//! the crawler never touches server-side id spaces or backing tables. How a
//! page is materialized (direct translation, XML wire round-trip, HTML
//! wrapper extraction) is the source's business, selected per request by
//! [`ProberMode`].
//!
//! Sharing: `DataSource` takes `&self`, and blanket impls cover `&S` and
//! `Arc<S>`. N crawler workers can therefore target one server —
//! `Arc<WebDbServer>` clones hand every worker the same atomic round
//! counter, so the source is billed globally no matter who asks.

use crate::extract::{parse_page, ExtractedPage, ExtractedRecord};
use dwc_server::html::page_to_html;
use dwc_server::wire::page_to_xml;
use dwc_server::{InterfaceSpec, Query, ServerError, WebDbServer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the Database Prober materializes result pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProberMode {
    /// Read the in-process result page directly (fast path for large
    /// simulations; identical observable content).
    #[default]
    InProcess,
    /// Serialize each page to the XML wire format and re-parse it with the
    /// Result Extractor — the full pipeline the paper's crawler runs against
    /// Amazon's Web Service.
    Wire,
    /// Render each page as a template-generated HTML document and run the
    /// HTML wrapper extractor — the pipeline against ordinary result pages
    /// ("records … may be in the form of HTML Web pages", §1).
    Html,
}

/// Why a page request failed, from the crawler's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlError {
    /// A transient condition (throttling, timeout, 5xx). Retrying the same
    /// request may succeed; the failed round is still billed.
    Transient,
    /// The request stalled — a response that never arrived in time. The
    /// failed round is billed like any other, and the wait itself costs
    /// `wasted_rounds` additional simulated rounds (Definition 2.3 bills
    /// time, not just served pages). Retrying may succeed.
    Stalled {
        /// Extra elapsed rounds the caller must bill for the wait.
        wasted_rounds: u64,
    },
    /// A result page arrived but was truncated or otherwise garbled and the
    /// Result Extractor rejected it. Retrying may return an intact page.
    CorruptPage,
    /// A definitive interface rejection — retrying the identical request
    /// cannot succeed.
    Fatal(ServerError),
}

impl CrawlError {
    /// Whether a retry of the same request can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, CrawlError::Transient | CrawlError::Stalled { .. } | CrawlError::CorruptPage)
    }
}

impl From<ServerError> for CrawlError {
    fn from(e: ServerError) -> Self {
        match e {
            ServerError::Transient => CrawlError::Transient,
            fatal => CrawlError::Fatal(fatal),
        }
    }
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Transient => write!(f, "transient source failure"),
            CrawlError::Stalled { wasted_rounds } => {
                write!(f, "request stalled ({wasted_rounds} rounds wasted waiting)")
            }
            CrawlError::CorruptPage => write!(f, "corrupt result page rejected by extractor"),
            CrawlError::Fatal(e) => write!(f, "fatal source error: {e}"),
        }
    }
}

impl std::error::Error for CrawlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrawlError::Fatal(e) => Some(e),
            _ => None,
        }
    }
}

/// A queryable structured web source, as a crawler sees it.
///
/// All methods take `&self`: implementations do their own (atomic) request
/// accounting so one source instance can serve concurrent crawlers.
pub trait DataSource {
    /// Requests one result page of `query`, materialized per `prober`.
    /// Every call costs one communication round, including failed ones.
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError>;

    /// The source's advertised interface: form fields, queriability, page
    /// size, caps. Everything a crawler knows about the source up front.
    fn interface(&self) -> &InterfaceSpec;

    /// Total communication rounds billed to this source so far.
    fn rounds_used(&self) -> u64;
}

impl<S: DataSource + ?Sized> DataSource for &S {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        (**self).query_page(query, page_index, prober)
    }

    fn interface(&self) -> &InterfaceSpec {
        (**self).interface()
    }

    fn rounds_used(&self) -> u64 {
        (**self).rounds_used()
    }
}

impl<S: DataSource + ?Sized> DataSource for Arc<S> {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        (**self).query_page(query, page_index, prober)
    }

    fn interface(&self) -> &InterfaceSpec {
        (**self).interface()
    }

    fn rounds_used(&self) -> u64 {
        (**self).rounds_used()
    }
}

impl DataSource for WebDbServer {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let page = WebDbServer::query_page(self, query, page_index)?;
        Ok(match prober {
            ProberMode::InProcess => {
                let table = self.table();
                ExtractedPage {
                    page_index: page.page_index,
                    total_matches: page.total_matches,
                    has_more: page.has_more,
                    records: page
                        .records
                        .iter()
                        .map(|r| ExtractedRecord {
                            key: r.key,
                            fields: r
                                .values
                                .iter()
                                .map(|&sv| {
                                    let attr = table.interner().attr_of(sv);
                                    (
                                        table.schema().attr(attr).name.clone(),
                                        table.interner().value_str(sv).to_owned(),
                                    )
                                })
                                .collect(),
                        })
                        .collect(),
                }
            }
            ProberMode::Wire => {
                let xml = page_to_xml(&page, self.table());
                parse_page(&xml).expect("wire format must round-trip")
            }
            ProberMode::Html => {
                let html = page_to_html(&page, self.table());
                crate::extract::parse_html_page(&html).expect("HTML wrapper must round-trip")
            }
        })
    }

    fn interface(&self) -> &InterfaceSpec {
        WebDbServer::interface(self)
    }

    fn rounds_used(&self) -> u64 {
        WebDbServer::rounds_used(self)
    }
}

/// A decorator that injects transient faults in front of any source.
///
/// [`WebDbServer`] has built-in fault injection; this wrapper provides the
/// same deterministic schedule for sources that don't (a real HTTP backend,
/// a shared server whose own policy is disabled). An injected fault consumes
/// the request *before* it reaches the inner source — the round is billed
/// here, so `rounds_used` is inner rounds plus injected faults.
pub struct FaultySource<S> {
    inner: S,
    policy: dwc_server::FaultPolicy,
    state: dwc_server::fault::FaultState,
    requests: AtomicU64,
}

impl<S: DataSource> FaultySource<S> {
    /// Wraps `inner`, failing requests per `policy`.
    pub fn new(inner: S, policy: dwc_server::FaultPolicy) -> Self {
        FaultySource {
            inner,
            policy,
            state: dwc_server::fault::FaultState::new(),
            requests: AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of faults injected by this wrapper so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.injected()
    }
}

impl<S: DataSource> DataSource for FaultySource<S> {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let request_no = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.state.try_inject(&self.policy, request_no) {
            return Err(CrawlError::Transient);
        }
        self.inner.query_page(query, page_index, prober)
    }

    fn interface(&self) -> &InterfaceSpec {
        self.inner.interface()
    }

    fn rounds_used(&self) -> u64 {
        self.inner.rounds_used() + self.faults_injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::FaultPolicy;

    fn server() -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn a2_query() -> Query {
        Query::ByString { attr: "A".into(), value: "a2".into() }
    }

    /// Calls through the trait even where an inherent method would shadow it.
    fn fetch<S: DataSource>(
        s: &S,
        query: &Query,
        page: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        s.query_page(query, page, prober)
    }

    #[test]
    fn all_prober_modes_extract_identical_content() {
        let s = server();
        let base = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        assert_eq!(base.records.len(), 3);
        assert_eq!(base, fetch(&s, &a2_query(), 0, ProberMode::Wire).unwrap());
        assert_eq!(base, fetch(&s, &a2_query(), 0, ProberMode::Html).unwrap());
        assert_eq!(DataSource::rounds_used(&s), 3);
    }

    #[test]
    fn fatal_and_transient_errors_are_distinguished() {
        let s = server().with_faults(FaultPolicy::every(2));
        let bad = Query::ByString { attr: "Nope".into(), value: "x".into() };
        let err = fetch(&s, &bad, 0, ProberMode::InProcess).unwrap_err();
        assert!(!err.is_transient());
        assert!(matches!(err, CrawlError::Fatal(ServerError::UnknownAttribute { .. })));
        let err = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap_err();
        assert!(err.is_transient(), "request 2 hits the fault schedule");
    }

    #[test]
    fn blanket_impls_share_the_billing() {
        let s = Arc::new(server());
        let a = Arc::clone(&s);
        fetch(&a, &a2_query(), 0, ProberMode::InProcess).unwrap();
        fetch(&&*s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        assert_eq!(DataSource::rounds_used(&s), 2, "one counter behind every handle");
    }

    #[test]
    fn faulty_source_bills_injected_rounds() {
        let f = FaultySource::new(server(), FaultPolicy::every(2));
        assert!(fetch(&f, &a2_query(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(fetch(&f, &a2_query(), 0, ProberMode::InProcess), Err(CrawlError::Transient));
        assert!(fetch(&f, &a2_query(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(f.faults_injected(), 1);
        assert_eq!(DataSource::rounds_used(&f), 3, "2 served + 1 injected");
        assert_eq!(f.inner().rounds_used(), 2, "the fault never reached the server");
    }
}
