//! The crawler-side boundary to a data source.
//!
//! A crawler sees a hidden-web source only through its query interface:
//! queries go out, paginated result pages come back, and every page request
//! — successful or not — costs one communication round (Definition 2.3).
//! [`DataSource`] captures exactly that contract, so [`crate::Crawler`] can
//! drive an in-process [`WebDbServer`], a fault-injecting decorator
//! ([`FaultySource`]), or a protocol-backed connection
//! ([`crate::serve::Connection`]) interchangeably.
//!
//! The boundary is a request/response seam: the crawler submits a
//! [`SourceRequest`] envelope (query, page index, prober mode, and the
//! service-level intent — an optional deadline and a [`CancelToken`]) and
//! receives a [`SourceResponse`] (page facts plus, when the source really is
//! a service, the [`ServiceMeta`] observed for the request). The single
//! entry point is [`DataSource::respond`]; the older
//! [`query_page`](DataSource::query_page) / [`visit_page`](DataSource::visit_page)
//! methods survive one release as thin deprecated shims over it.
//!
//! Results cross the boundary in *extracted* form
//! ([`crate::extract::ExtractedPage`]: attribute names + value strings) —
//! the crawler never touches server-side id spaces or backing tables. How a
//! page is materialized (direct translation, XML wire round-trip, HTML
//! wrapper extraction) is the source's business, selected per request by
//! [`ProberMode`].
//!
//! Sharing: `DataSource` takes `&self`, and blanket impls cover `&S` and
//! `Arc<S>`. N crawler workers can therefore target one server —
//! `Arc<WebDbServer>` clones hand every worker the same atomic round
//! counter, so the source is billed globally no matter who asks.

#[cfg(any(feature = "compat", test))]
use crate::extract::ExtractedPage;
use crate::extract::{parse_html_page_ref, parse_page_ref, ExtractedPageRef, ExtractedRecordRef};
use dwc_server::{InterfaceSpec, Query, RenderFormat, ServerError, WebDbServer};
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How the Database Prober materializes result pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProberMode {
    /// Read the in-process result page directly (fast path for large
    /// simulations; identical observable content).
    #[default]
    InProcess,
    /// Serialize each page to the XML wire format and re-parse it with the
    /// Result Extractor — the full pipeline the paper's crawler runs against
    /// Amazon's Web Service.
    Wire,
    /// Render each page as a template-generated HTML document and run the
    /// HTML wrapper extractor — the pipeline against ordinary result pages
    /// ("records … may be in the form of HTML Web pages", §1).
    Html,
}

/// Why a page request failed, from the crawler's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlError {
    /// A transient condition (throttling, timeout, 5xx). Retrying the same
    /// request may succeed; the failed round is still billed.
    Transient,
    /// The request stalled — a response that never arrived in time. The
    /// failed round is billed like any other, and the wait itself costs
    /// `wasted_rounds` additional simulated rounds (Definition 2.3 bills
    /// time, not just served pages). Retrying may succeed.
    Stalled {
        /// Extra elapsed rounds the caller must bill for the wait.
        wasted_rounds: u64,
    },
    /// A result page arrived but was truncated or otherwise garbled and the
    /// Result Extractor rejected it. Retrying may return an intact page.
    CorruptPage,
    /// The serving tier refused the request at admission — its bounded queue
    /// was full and the load was shed. The round is billed (the request
    /// reached the service), and retrying after backoff may be admitted:
    /// this is the client half of the backpressure loop.
    Rejected,
    /// The request was cancelled before execution: its deadline expired
    /// while queued, or its [`CancelToken`] fired. The round is billed; a
    /// retry with a fresh deadline may succeed, while a fired token makes
    /// the executor stop re-submitting entirely.
    Cancelled,
    /// A definitive interface rejection — retrying the identical request
    /// cannot succeed.
    Fatal(ServerError),
}

impl CrawlError {
    /// Whether a retry of the same request can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CrawlError::Transient
                | CrawlError::Stalled { .. }
                | CrawlError::CorruptPage
                | CrawlError::Rejected
                | CrawlError::Cancelled
        )
    }
}

impl From<ServerError> for CrawlError {
    fn from(e: ServerError) -> Self {
        match e {
            ServerError::Transient => CrawlError::Transient,
            fatal => CrawlError::Fatal(fatal),
        }
    }
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Transient => write!(f, "transient source failure"),
            CrawlError::Stalled { wasted_rounds } => {
                write!(f, "request stalled ({wasted_rounds} rounds wasted waiting)")
            }
            CrawlError::CorruptPage => write!(f, "corrupt result page rejected by extractor"),
            CrawlError::Rejected => write!(f, "request shed at admission (service queue full)"),
            CrawlError::Cancelled => write!(f, "request cancelled (deadline or token)"),
            CrawlError::Fatal(e) => write!(f, "fatal source error: {e}"),
        }
    }
}

impl std::error::Error for CrawlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrawlError::Fatal(e) => Some(e),
            _ => None,
        }
    }
}

/// A shared cancellation flag: cloning hands out another handle to the same
/// flag, so a driver can cancel every in-flight and future request built
/// from the token. Cancellation is cooperative — the serving tier checks it
/// at dequeue, the executor before each attempt; neither interrupts an
/// execution already running.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Irrevocable; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One page request, as an explicit envelope.
///
/// The crawl semantics (`query`, `page_index`, `prober`) say *what* to
/// fetch; the service intent (`deadline`, `cancel`) says *how long the
/// caller is willing to wait*. In-process sources answer immediately and
/// ignore the service fields — which is exactly what keeps single-worker
/// crawls bit-for-bit reproducible — while the serving tier
/// ([`crate::serve`]) enforces them against its queue.
#[derive(Debug, Clone, Copy)]
pub struct SourceRequest<'a> {
    /// The query to execute.
    pub query: &'a Query,
    /// Zero-based result page requested.
    pub page_index: usize,
    /// How the result page is materialized.
    pub prober: ProberMode,
    /// Absolute point after which the caller no longer wants the response.
    /// A queued request past its deadline is cancelled (and billed).
    pub deadline: Option<Instant>,
    /// Cooperative cancellation handle for this request.
    pub cancel: Option<&'a CancelToken>,
}

impl<'a> SourceRequest<'a> {
    /// An envelope with no deadline and no cancellation token.
    pub fn new(query: &'a Query, page_index: usize, prober: ProberMode) -> Self {
        SourceRequest { query, page_index, prober, deadline: None, cancel: None }
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: &'a CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Whether the envelope is already dead on arrival: its token fired.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }
}

/// Page-level facts a successful [`DataSource::respond`] call reports
/// alongside the borrowed records it hands to the visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Zero-based page index served.
    pub page_index: usize,
    /// Total match count, when the source reports it.
    pub total_matches: Option<usize>,
    /// Whether more pages follow.
    pub has_more: bool,
    /// Whether the source served this page from a render cache (the round is
    /// billed either way — Definition 2.3 counts requests, not CPU).
    pub served_from_cache: bool,
}

/// What the serving tier observed while handling one request. In-process
/// sources never attach this — their responses are function returns, not
/// service completions — so its presence is also the marker that a response
/// crossed a real request/response boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceMeta {
    /// Queue depth right after this request was admitted.
    pub queue_depth: u32,
    /// Wall-clock latency from admission to reply, in microseconds (queue
    /// wait + modeled service latency + execution + decode cost).
    pub latency_us: u64,
}

/// The response envelope paired with [`SourceRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceResponse {
    /// Page-level facts (the records themselves went to the visitor).
    pub meta: PageMeta,
    /// Service-level observations, when the source is a real service.
    pub service: Option<ServiceMeta>,
}

impl SourceResponse {
    /// A response straight from an in-process source: page facts only.
    pub fn in_process(meta: PageMeta) -> Self {
        SourceResponse { meta, service: None }
    }
}

/// A queryable structured web source, as a crawler sees it.
///
/// All methods take `&self`: implementations do their own (atomic) request
/// accounting so one source instance can serve concurrent crawlers.
pub trait DataSource {
    /// Executes one [`SourceRequest`]. On success the page is handed to
    /// `visit` as a borrowed [`ExtractedPageRef`] (fields are `Cow` slices
    /// into the source's wire buffer — the zero-copy hot path) and the
    /// envelope-level facts come back as a [`SourceResponse`]. `visit` runs
    /// at most once, and only on success — errors propagate before any
    /// visitation, so decorators inherit correct behavior by wrapping this
    /// one method.
    ///
    /// Every call costs one communication round, including failed, shed,
    /// and cancelled ones (Definition 2.3 counts requests, not outcomes).
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError>;

    /// Requests one result page of `query`, materialized per `prober`, as an
    /// owned [`ExtractedPage`].
    ///
    /// Pre-envelope compatibility shim, gated behind the `compat` feature.
    /// No in-tree caller remains; external callers should migrate to
    /// [`respond`](DataSource::respond).
    #[cfg(feature = "compat")]
    #[deprecated(note = "use `respond` with a `SourceRequest` envelope")]
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let mut owned = None;
        self.respond(&SourceRequest::new(query, page_index, prober), &mut |page| {
            owned = Some(page.to_owned_page());
        })?;
        Ok(owned.expect("respond visits exactly once on success"))
    }

    /// Zero-copy page fetch without the envelope.
    ///
    /// Pre-envelope compatibility shim, gated behind the `compat` feature.
    #[cfg(feature = "compat")]
    #[deprecated(note = "use `respond` with a `SourceRequest` envelope")]
    fn visit_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<PageMeta, CrawlError> {
        self.respond(&SourceRequest::new(query, page_index, prober), visit).map(|r| r.meta)
    }

    /// The source's advertised interface: form fields, queriability, page
    /// size, caps. Everything a crawler knows about the source up front.
    fn interface(&self) -> &InterfaceSpec;

    /// Total communication rounds billed to this source so far.
    fn rounds_used(&self) -> u64;
}

impl<S: DataSource + ?Sized> DataSource for &S {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        (**self).respond(request, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        (**self).interface()
    }

    fn rounds_used(&self) -> u64 {
        (**self).rounds_used()
    }
}

impl<S: DataSource + ?Sized> DataSource for Arc<S> {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        (**self).respond(request, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        (**self).interface()
    }

    fn rounds_used(&self) -> u64 {
        (**self).rounds_used()
    }
}

impl DataSource for WebDbServer {
    /// The allocation-free in-process path. `InProcess` builds the borrowed
    /// view straight off the server's interner (no render, no parse, no
    /// string copies); `Wire`/`Html` go through [`WebDbServer::rendered_page`],
    /// so overlapping fleet workers reuse cached renders and the zero-copy
    /// parsers slice the shared buffer in place. The request's deadline and
    /// token are ignored: an in-process call returns before either could
    /// matter, which keeps single-worker crawls deterministic.
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let (query, page_index) = (request.query, request.page_index);
        match request.prober {
            ProberMode::InProcess => {
                let page = WebDbServer::query_page(self, query, page_index)?;
                let (interner, schema) = (self.interner(), self.schema());
                let view = ExtractedPageRef {
                    page_index: page.page_index,
                    total_matches: page.total_matches,
                    has_more: page.has_more,
                    records: page
                        .records
                        .iter()
                        .map(|r| ExtractedRecordRef {
                            key: r.key,
                            fields: r
                                .values
                                .iter()
                                .map(|&sv| {
                                    let attr = interner.attr_of(sv);
                                    (
                                        Cow::Borrowed(schema.attr(attr).name.as_str()),
                                        Cow::Borrowed(interner.value_str(sv)),
                                    )
                                })
                                .collect(),
                        })
                        .collect(),
                };
                let meta = PageMeta {
                    page_index: page.page_index,
                    total_matches: page.total_matches,
                    has_more: page.has_more,
                    served_from_cache: false,
                };
                visit(&view);
                Ok(SourceResponse::in_process(meta))
            }
            ProberMode::Wire => {
                let rendered = self.rendered_page(query, page_index, RenderFormat::Xml)?;
                let view = parse_page_ref(rendered.text()).expect("wire format must round-trip");
                let meta = PageMeta {
                    page_index: view.page_index,
                    total_matches: view.total_matches,
                    has_more: view.has_more,
                    served_from_cache: rendered.cache_hit(),
                };
                visit(&view);
                Ok(SourceResponse::in_process(meta))
            }
            ProberMode::Html => {
                let rendered = self.rendered_page(query, page_index, RenderFormat::Html)?;
                let view =
                    parse_html_page_ref(rendered.text()).expect("HTML wrapper must round-trip");
                let meta = PageMeta {
                    page_index: view.page_index,
                    total_matches: view.total_matches,
                    has_more: view.has_more,
                    served_from_cache: rendered.cache_hit(),
                };
                visit(&view);
                Ok(SourceResponse::in_process(meta))
            }
        }
    }

    fn interface(&self) -> &InterfaceSpec {
        WebDbServer::interface(self)
    }

    fn rounds_used(&self) -> u64 {
        WebDbServer::rounds_used(self)
    }
}

/// A decorator that injects transient faults in front of any source.
///
/// [`WebDbServer`] has built-in fault injection; this wrapper provides the
/// same deterministic schedule for sources that don't (a real HTTP backend,
/// a shared server whose own policy is disabled). An injected fault consumes
/// the request *before* it reaches the inner source — the round is billed
/// here, so `rounds_used` is inner rounds plus injected faults.
pub struct FaultySource<S> {
    inner: S,
    policy: dwc_server::FaultPolicy,
    state: dwc_server::fault::FaultState,
    requests: AtomicU64,
}

impl<S: DataSource> FaultySource<S> {
    /// Wraps `inner`, failing requests per `policy`.
    pub fn new(inner: S, policy: dwc_server::FaultPolicy) -> Self {
        FaultySource {
            inner,
            policy,
            state: dwc_server::fault::FaultState::new(),
            requests: AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of faults injected by this wrapper so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.injected()
    }
}

impl<S: DataSource> DataSource for FaultySource<S> {
    fn respond(
        &self,
        request: &SourceRequest<'_>,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<SourceResponse, CrawlError> {
        let request_no = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.state.try_inject(&self.policy, request_no) {
            return Err(CrawlError::Transient);
        }
        self.inner.respond(request, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        self.inner.interface()
    }

    fn rounds_used(&self) -> u64 {
        self.inner.rounds_used() + self.faults_injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::FaultPolicy;

    fn server() -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn a2_query() -> Query {
        Query::ByString { attr: "A".into(), value: "a2".into() }
    }

    /// Fetches one page as an owned value through the envelope path.
    fn fetch<S: DataSource>(
        s: &S,
        query: &Query,
        page: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let mut owned = None;
        s.respond(&SourceRequest::new(query, page, prober), &mut |view| {
            owned = Some(view.to_owned_page());
        })?;
        Ok(owned.expect("respond visits exactly once on success"))
    }

    #[test]
    fn all_prober_modes_extract_identical_content() {
        let s = server();
        let base = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        assert_eq!(base.records.len(), 3);
        assert_eq!(base, fetch(&s, &a2_query(), 0, ProberMode::Wire).unwrap());
        assert_eq!(base, fetch(&s, &a2_query(), 0, ProberMode::Html).unwrap());
        assert_eq!(DataSource::rounds_used(&s), 3);
    }

    #[test]
    fn fatal_and_transient_errors_are_distinguished() {
        let s = server().with_faults(FaultPolicy::every(2));
        let bad = Query::ByString { attr: "Nope".into(), value: "x".into() };
        let err = fetch(&s, &bad, 0, ProberMode::InProcess).unwrap_err();
        assert!(!err.is_transient());
        assert!(matches!(err, CrawlError::Fatal(ServerError::UnknownAttribute { .. })));
        let err = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap_err();
        assert!(err.is_transient(), "request 2 hits the fault schedule");
    }

    #[test]
    fn service_taxonomy_is_transient_class() {
        assert!(CrawlError::Rejected.is_transient(), "shed load retries after backoff");
        assert!(CrawlError::Cancelled.is_transient(), "a fresh deadline may succeed");
    }

    #[test]
    fn cancel_token_fires_once_for_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        let q = a2_query();
        let req = SourceRequest::new(&q, 0, ProberMode::InProcess).with_cancel(&clone);
        assert!(!req.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(req.is_cancelled(), "the envelope observes the shared flag");
    }

    #[test]
    fn blanket_impls_share_the_billing() {
        let s = Arc::new(server());
        let a = Arc::clone(&s);
        fetch(&a, &a2_query(), 0, ProberMode::InProcess).unwrap();
        fetch(&&*s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        assert_eq!(DataSource::rounds_used(&s), 2, "one counter behind every handle");
    }

    /// Materializes a page and its metadata through the envelope path.
    fn visit_owned<S: DataSource>(
        s: &S,
        query: &Query,
        page: usize,
        prober: ProberMode,
    ) -> Result<(PageMeta, ExtractedPage), CrawlError> {
        let mut owned = None;
        let resp = s.respond(&SourceRequest::new(query, page, prober), &mut |view| {
            owned = Some(view.to_owned_page())
        })?;
        Ok((resp.meta, owned.expect("visit runs on success")))
    }

    #[test]
    fn visit_page_matches_query_page_in_every_prober_mode() {
        let s = server();
        let base = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        for prober in [ProberMode::InProcess, ProberMode::Wire, ProberMode::Html] {
            let (meta, owned) = visit_owned(&s, &a2_query(), 0, prober).unwrap();
            assert_eq!(owned, base, "{prober:?}");
            assert_eq!(meta.page_index, 0);
            assert_eq!(meta.total_matches, base.total_matches);
            assert_eq!(meta.has_more, base.has_more);
        }
        assert_eq!(DataSource::rounds_used(&s), 4, "every visit bills a round");
    }

    #[test]
    fn respond_reports_no_service_meta_in_process() {
        let s = server();
        let q = a2_query();
        for prober in [ProberMode::InProcess, ProberMode::Wire, ProberMode::Html] {
            let resp = s.respond(&SourceRequest::new(&q, 0, prober), &mut |_| {}).unwrap();
            assert_eq!(resp.service, None, "{prober:?}: no service boundary was crossed");
        }
    }

    #[test]
    fn in_process_respond_ignores_deadline_and_token() {
        // The envelope may carry service intent, but an in-process source
        // answers immediately — determinism requires it never consults them.
        let s = server();
        let q = a2_query();
        let token = CancelToken::new();
        token.cancel();
        let req = SourceRequest::new(&q, 0, ProberMode::InProcess)
            .with_deadline(Instant::now() - std::time::Duration::from_secs(1))
            .with_cancel(&token);
        let mut visited = false;
        let resp = s.respond(&req, &mut |_| visited = true).unwrap();
        assert!(visited);
        assert_eq!(resp.meta.page_index, 0);
    }

    #[test]
    fn repeated_wire_visits_hit_the_page_cache() {
        let s = Arc::new(server());
        let (first, _) = visit_owned(&s, &a2_query(), 0, ProberMode::Wire).unwrap();
        assert!(!first.served_from_cache);
        let (second, owned) = visit_owned(&s, &a2_query(), 0, ProberMode::Wire).unwrap();
        assert!(second.served_from_cache, "same (query, page) reuses the render");
        assert_eq!(owned, fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap());
        assert_eq!(s.page_cache().hits(), 1);
    }

    #[test]
    fn respond_propagates_errors_without_visiting() {
        let s = server();
        let bad = Query::ByString { attr: "Nope".into(), value: "x".into() };
        let mut visited = false;
        let err = s
            .respond(&SourceRequest::new(&bad, 0, ProberMode::Wire), &mut |_| visited = true)
            .unwrap_err();
        assert!(matches!(err, CrawlError::Fatal(_)));
        assert!(!visited, "errors must not invoke the visitor");
    }

    #[test]
    fn faulty_source_injects_on_respond() {
        let f = FaultySource::new(server(), FaultPolicy::every(2));
        assert!(visit_owned(&f, &a2_query(), 0, ProberMode::Wire).is_ok());
        assert_eq!(
            visit_owned(&f, &a2_query(), 0, ProberMode::Wire).unwrap_err(),
            CrawlError::Transient
        );
        let (meta, _) = visit_owned(&f, &a2_query(), 0, ProberMode::Wire).unwrap();
        assert!(meta.served_from_cache, "retry after the fault reuses the cached render");
        assert_eq!(f.faults_injected(), 1);
    }

    #[test]
    fn faulty_source_bills_injected_rounds() {
        let f = FaultySource::new(server(), FaultPolicy::every(2));
        assert!(fetch(&f, &a2_query(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(fetch(&f, &a2_query(), 0, ProberMode::InProcess), Err(CrawlError::Transient));
        assert!(fetch(&f, &a2_query(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(f.faults_injected(), 1);
        assert_eq!(DataSource::rounds_used(&f), 3, "2 served + 1 injected");
        assert_eq!(f.inner().rounds_used(), 2, "the fault never reached the server");
    }
}
