//! The crawler-side boundary to a data source.
//!
//! A crawler sees a hidden-web source only through its query interface:
//! queries go out, paginated result pages come back, and every page request
//! — successful or not — costs one communication round (Definition 2.3).
//! [`DataSource`] captures exactly that contract, so [`crate::Crawler`] can
//! drive an in-process [`WebDbServer`], a fault-injecting decorator
//! ([`FaultySource`]), or a future real-HTTP backend interchangeably.
//!
//! Results cross the boundary in *extracted* form
//! ([`crate::extract::ExtractedPage`]: attribute names + value strings) —
//! the crawler never touches server-side id spaces or backing tables. How a
//! page is materialized (direct translation, XML wire round-trip, HTML
//! wrapper extraction) is the source's business, selected per request by
//! [`ProberMode`].
//!
//! Sharing: `DataSource` takes `&self`, and blanket impls cover `&S` and
//! `Arc<S>`. N crawler workers can therefore target one server —
//! `Arc<WebDbServer>` clones hand every worker the same atomic round
//! counter, so the source is billed globally no matter who asks.

use crate::extract::{
    parse_html_page_ref, parse_page, parse_page_ref, ExtractedPage, ExtractedPageRef,
    ExtractedRecord, ExtractedRecordRef,
};
use dwc_server::html::page_to_html;
use dwc_server::wire::page_to_xml;
use dwc_server::{InterfaceSpec, Query, RenderFormat, ServerError, WebDbServer};
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the Database Prober materializes result pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProberMode {
    /// Read the in-process result page directly (fast path for large
    /// simulations; identical observable content).
    #[default]
    InProcess,
    /// Serialize each page to the XML wire format and re-parse it with the
    /// Result Extractor — the full pipeline the paper's crawler runs against
    /// Amazon's Web Service.
    Wire,
    /// Render each page as a template-generated HTML document and run the
    /// HTML wrapper extractor — the pipeline against ordinary result pages
    /// ("records … may be in the form of HTML Web pages", §1).
    Html,
}

/// Why a page request failed, from the crawler's point of view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlError {
    /// A transient condition (throttling, timeout, 5xx). Retrying the same
    /// request may succeed; the failed round is still billed.
    Transient,
    /// The request stalled — a response that never arrived in time. The
    /// failed round is billed like any other, and the wait itself costs
    /// `wasted_rounds` additional simulated rounds (Definition 2.3 bills
    /// time, not just served pages). Retrying may succeed.
    Stalled {
        /// Extra elapsed rounds the caller must bill for the wait.
        wasted_rounds: u64,
    },
    /// A result page arrived but was truncated or otherwise garbled and the
    /// Result Extractor rejected it. Retrying may return an intact page.
    CorruptPage,
    /// A definitive interface rejection — retrying the identical request
    /// cannot succeed.
    Fatal(ServerError),
}

impl CrawlError {
    /// Whether a retry of the same request can possibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, CrawlError::Transient | CrawlError::Stalled { .. } | CrawlError::CorruptPage)
    }
}

impl From<ServerError> for CrawlError {
    fn from(e: ServerError) -> Self {
        match e {
            ServerError::Transient => CrawlError::Transient,
            fatal => CrawlError::Fatal(fatal),
        }
    }
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrawlError::Transient => write!(f, "transient source failure"),
            CrawlError::Stalled { wasted_rounds } => {
                write!(f, "request stalled ({wasted_rounds} rounds wasted waiting)")
            }
            CrawlError::CorruptPage => write!(f, "corrupt result page rejected by extractor"),
            CrawlError::Fatal(e) => write!(f, "fatal source error: {e}"),
        }
    }
}

impl std::error::Error for CrawlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrawlError::Fatal(e) => Some(e),
            _ => None,
        }
    }
}

/// Page-level facts a [`DataSource::visit_page`] call reports alongside the
/// borrowed records it hands to the visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Zero-based page index served.
    pub page_index: usize,
    /// Total match count, when the source reports it.
    pub total_matches: Option<usize>,
    /// Whether more pages follow.
    pub has_more: bool,
    /// Whether the source served this page from a render cache (the round is
    /// billed either way — Definition 2.3 counts requests, not CPU).
    pub served_from_cache: bool,
}

/// A queryable structured web source, as a crawler sees it.
///
/// All methods take `&self`: implementations do their own (atomic) request
/// accounting so one source instance can serve concurrent crawlers.
pub trait DataSource {
    /// Requests one result page of `query`, materialized per `prober`.
    /// Every call costs one communication round, including failed ones.
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError>;

    /// Zero-copy flavor of [`DataSource::query_page`]: on success the page is
    /// handed to `visit` as a borrowed [`ExtractedPageRef`] (fields are `Cow`
    /// slices into the source's wire buffer) and the page-level facts come
    /// back as [`PageMeta`]. `visit` runs at most once, and only on success —
    /// errors propagate before any visitation, so decorators that wrap
    /// `query_page` inherit correct behavior from this default impl.
    fn visit_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<PageMeta, CrawlError> {
        let page = self.query_page(query, page_index, prober)?;
        visit(&ExtractedPageRef::borrowed(&page));
        Ok(PageMeta {
            page_index: page.page_index,
            total_matches: page.total_matches,
            has_more: page.has_more,
            served_from_cache: false,
        })
    }

    /// The source's advertised interface: form fields, queriability, page
    /// size, caps. Everything a crawler knows about the source up front.
    fn interface(&self) -> &InterfaceSpec;

    /// Total communication rounds billed to this source so far.
    fn rounds_used(&self) -> u64;
}

impl<S: DataSource + ?Sized> DataSource for &S {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        (**self).query_page(query, page_index, prober)
    }

    fn visit_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<PageMeta, CrawlError> {
        (**self).visit_page(query, page_index, prober, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        (**self).interface()
    }

    fn rounds_used(&self) -> u64 {
        (**self).rounds_used()
    }
}

impl<S: DataSource + ?Sized> DataSource for Arc<S> {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        (**self).query_page(query, page_index, prober)
    }

    fn visit_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<PageMeta, CrawlError> {
        (**self).visit_page(query, page_index, prober, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        (**self).interface()
    }

    fn rounds_used(&self) -> u64 {
        (**self).rounds_used()
    }
}

impl DataSource for WebDbServer {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let page = WebDbServer::query_page(self, query, page_index)?;
        Ok(match prober {
            ProberMode::InProcess => {
                let table = self.table();
                ExtractedPage {
                    page_index: page.page_index,
                    total_matches: page.total_matches,
                    has_more: page.has_more,
                    records: page
                        .records
                        .iter()
                        .map(|r| ExtractedRecord {
                            key: r.key,
                            fields: r
                                .values
                                .iter()
                                .map(|&sv| {
                                    let attr = table.interner().attr_of(sv);
                                    (
                                        table.schema().attr(attr).name.clone(),
                                        table.interner().value_str(sv).to_owned(),
                                    )
                                })
                                .collect(),
                        })
                        .collect(),
                }
            }
            ProberMode::Wire => {
                let xml = page_to_xml(&page, self.table());
                parse_page(&xml).expect("wire format must round-trip")
            }
            ProberMode::Html => {
                let html = page_to_html(&page, self.table());
                crate::extract::parse_html_page(&html).expect("HTML wrapper must round-trip")
            }
        })
    }

    /// The allocation-free hot path. `InProcess` builds the borrowed view
    /// straight off the server's interner (no render, no parse, no string
    /// copies); `Wire`/`Html` go through [`WebDbServer::rendered_page`], so
    /// overlapping fleet workers reuse cached renders and the zero-copy
    /// parsers slice the shared buffer in place.
    fn visit_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<PageMeta, CrawlError> {
        match prober {
            ProberMode::InProcess => {
                let page = WebDbServer::query_page(self, query, page_index)?;
                let table = self.table();
                let view = ExtractedPageRef {
                    page_index: page.page_index,
                    total_matches: page.total_matches,
                    has_more: page.has_more,
                    records: page
                        .records
                        .iter()
                        .map(|r| ExtractedRecordRef {
                            key: r.key,
                            fields: r
                                .values
                                .iter()
                                .map(|&sv| {
                                    let attr = table.interner().attr_of(sv);
                                    (
                                        Cow::Borrowed(table.schema().attr(attr).name.as_str()),
                                        Cow::Borrowed(table.interner().value_str(sv)),
                                    )
                                })
                                .collect(),
                        })
                        .collect(),
                };
                let meta = PageMeta {
                    page_index: page.page_index,
                    total_matches: page.total_matches,
                    has_more: page.has_more,
                    served_from_cache: false,
                };
                visit(&view);
                Ok(meta)
            }
            ProberMode::Wire => {
                let rendered = self.rendered_page(query, page_index, RenderFormat::Xml)?;
                let view = parse_page_ref(rendered.text()).expect("wire format must round-trip");
                let meta = PageMeta {
                    page_index: view.page_index,
                    total_matches: view.total_matches,
                    has_more: view.has_more,
                    served_from_cache: rendered.cache_hit(),
                };
                visit(&view);
                Ok(meta)
            }
            ProberMode::Html => {
                let rendered = self.rendered_page(query, page_index, RenderFormat::Html)?;
                let view =
                    parse_html_page_ref(rendered.text()).expect("HTML wrapper must round-trip");
                let meta = PageMeta {
                    page_index: view.page_index,
                    total_matches: view.total_matches,
                    has_more: view.has_more,
                    served_from_cache: rendered.cache_hit(),
                };
                visit(&view);
                Ok(meta)
            }
        }
    }

    fn interface(&self) -> &InterfaceSpec {
        WebDbServer::interface(self)
    }

    fn rounds_used(&self) -> u64 {
        WebDbServer::rounds_used(self)
    }
}

/// A decorator that injects transient faults in front of any source.
///
/// [`WebDbServer`] has built-in fault injection; this wrapper provides the
/// same deterministic schedule for sources that don't (a real HTTP backend,
/// a shared server whose own policy is disabled). An injected fault consumes
/// the request *before* it reaches the inner source — the round is billed
/// here, so `rounds_used` is inner rounds plus injected faults.
pub struct FaultySource<S> {
    inner: S,
    policy: dwc_server::FaultPolicy,
    state: dwc_server::fault::FaultState,
    requests: AtomicU64,
}

impl<S: DataSource> FaultySource<S> {
    /// Wraps `inner`, failing requests per `policy`.
    pub fn new(inner: S, policy: dwc_server::FaultPolicy) -> Self {
        FaultySource {
            inner,
            policy,
            state: dwc_server::fault::FaultState::new(),
            requests: AtomicU64::new(0),
        }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of faults injected by this wrapper so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.injected()
    }
}

impl<S: DataSource> DataSource for FaultySource<S> {
    fn query_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        let request_no = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.state.try_inject(&self.policy, request_no) {
            return Err(CrawlError::Transient);
        }
        self.inner.query_page(query, page_index, prober)
    }

    fn visit_page(
        &self,
        query: &Query,
        page_index: usize,
        prober: ProberMode,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> Result<PageMeta, CrawlError> {
        let request_no = self.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if self.state.try_inject(&self.policy, request_no) {
            return Err(CrawlError::Transient);
        }
        self.inner.visit_page(query, page_index, prober, visit)
    }

    fn interface(&self) -> &InterfaceSpec {
        self.inner.interface()
    }

    fn rounds_used(&self) -> u64 {
        self.inner.rounds_used() + self.faults_injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::FaultPolicy;

    fn server() -> WebDbServer {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn a2_query() -> Query {
        Query::ByString { attr: "A".into(), value: "a2".into() }
    }

    /// Calls through the trait even where an inherent method would shadow it.
    fn fetch<S: DataSource>(
        s: &S,
        query: &Query,
        page: usize,
        prober: ProberMode,
    ) -> Result<ExtractedPage, CrawlError> {
        s.query_page(query, page, prober)
    }

    #[test]
    fn all_prober_modes_extract_identical_content() {
        let s = server();
        let base = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        assert_eq!(base.records.len(), 3);
        assert_eq!(base, fetch(&s, &a2_query(), 0, ProberMode::Wire).unwrap());
        assert_eq!(base, fetch(&s, &a2_query(), 0, ProberMode::Html).unwrap());
        assert_eq!(DataSource::rounds_used(&s), 3);
    }

    #[test]
    fn fatal_and_transient_errors_are_distinguished() {
        let s = server().with_faults(FaultPolicy::every(2));
        let bad = Query::ByString { attr: "Nope".into(), value: "x".into() };
        let err = fetch(&s, &bad, 0, ProberMode::InProcess).unwrap_err();
        assert!(!err.is_transient());
        assert!(matches!(err, CrawlError::Fatal(ServerError::UnknownAttribute { .. })));
        let err = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap_err();
        assert!(err.is_transient(), "request 2 hits the fault schedule");
    }

    #[test]
    fn blanket_impls_share_the_billing() {
        let s = Arc::new(server());
        let a = Arc::clone(&s);
        fetch(&a, &a2_query(), 0, ProberMode::InProcess).unwrap();
        fetch(&&*s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        assert_eq!(DataSource::rounds_used(&s), 2, "one counter behind every handle");
    }

    /// Materializes a page through `visit_page` for comparisons.
    fn visit_owned<S: DataSource>(
        s: &S,
        query: &Query,
        page: usize,
        prober: ProberMode,
    ) -> Result<(PageMeta, ExtractedPage), CrawlError> {
        let mut owned = None;
        let meta =
            s.visit_page(query, page, prober, &mut |view| owned = Some(view.to_owned_page()))?;
        Ok((meta, owned.expect("visit runs on success")))
    }

    #[test]
    fn visit_page_matches_query_page_in_every_prober_mode() {
        let s = server();
        let base = fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap();
        for prober in [ProberMode::InProcess, ProberMode::Wire, ProberMode::Html] {
            let (meta, owned) = visit_owned(&s, &a2_query(), 0, prober).unwrap();
            assert_eq!(owned, base, "{prober:?}");
            assert_eq!(meta.page_index, 0);
            assert_eq!(meta.total_matches, base.total_matches);
            assert_eq!(meta.has_more, base.has_more);
        }
        assert_eq!(DataSource::rounds_used(&s), 4, "every visit bills a round");
    }

    #[test]
    fn repeated_wire_visits_hit_the_page_cache() {
        let s = Arc::new(server());
        let (first, _) = visit_owned(&s, &a2_query(), 0, ProberMode::Wire).unwrap();
        assert!(!first.served_from_cache);
        let (second, owned) = visit_owned(&s, &a2_query(), 0, ProberMode::Wire).unwrap();
        assert!(second.served_from_cache, "same (query, page) reuses the render");
        assert_eq!(owned, fetch(&s, &a2_query(), 0, ProberMode::InProcess).unwrap());
        assert_eq!(s.page_cache().hits(), 1);
    }

    #[test]
    fn visit_page_propagates_errors_without_visiting() {
        let s = server();
        let bad = Query::ByString { attr: "Nope".into(), value: "x".into() };
        let mut visited = false;
        let err = s.visit_page(&bad, 0, ProberMode::Wire, &mut |_| visited = true).unwrap_err();
        assert!(matches!(err, CrawlError::Fatal(_)));
        assert!(!visited, "errors must not invoke the visitor");
    }

    #[test]
    fn faulty_source_injects_on_visit_too() {
        let f = FaultySource::new(server(), FaultPolicy::every(2));
        assert!(visit_owned(&f, &a2_query(), 0, ProberMode::Wire).is_ok());
        assert_eq!(
            visit_owned(&f, &a2_query(), 0, ProberMode::Wire).unwrap_err(),
            CrawlError::Transient
        );
        let (meta, _) = visit_owned(&f, &a2_query(), 0, ProberMode::Wire).unwrap();
        assert!(meta.served_from_cache, "retry after the fault reuses the cached render");
        assert_eq!(f.faults_injected(), 1);
    }

    #[test]
    fn faulty_source_bills_injected_rounds() {
        let f = FaultySource::new(server(), FaultPolicy::every(2));
        assert!(fetch(&f, &a2_query(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(fetch(&f, &a2_query(), 0, ProberMode::InProcess), Err(CrawlError::Transient));
        assert!(fetch(&f, &a2_query(), 0, ProberMode::InProcess).is_ok());
        assert_eq!(f.faults_injected(), 1);
        assert_eq!(DataSource::rounds_used(&f), 3, "2 served + 1 injected");
        assert_eq!(f.inner().rounds_used(), 2, "the fault never reached the server");
    }
}
