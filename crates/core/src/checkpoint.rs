//! Crawl checkpointing: snapshot a running crawl to a text blob and resume it
//! later (possibly in another process).
//!
//! A real deployment of the paper's crawler runs for days against rate-limited
//! sources; surviving restarts without re-spending communication rounds is
//! table stakes. A [`Checkpoint`] captures everything the crawler owns — the
//! vocabulary, candidate statuses, `L_queried`, the harvested records, and the
//! cost counters. Policy-internal structures (heaps, covered sets, PMI caches)
//! are *not* serialized; they are deterministically rebuilt from the shared
//! state by [`crate::policy::SelectionPolicy::resume`].
//!
//! The format is a line-oriented, versioned text format with percent-escaping
//! for the three metacharacters (tab, newline, `%`) — dependency-free and
//! diff-friendly.
//!
//! Version 2 (current) carries an FNV-1a checksum of the entire body in the
//! header line, so *any* truncation or bit-rot — down to a lost trailing
//! newline — is detected at parse time instead of resuming from silently
//! damaged state. Version 1 blobs (no checksum) are still accepted; unknown
//! future versions are rejected with [`CheckpointError::UnsupportedVersion`].
//! Durable storage (atomic writes, backup rotation) is [`crate::store`]'s
//! job; this module only defines the blob.

use crate::state::CandStatus;
use dwc_model::ValueId;
use std::fmt::Write as _;

/// A serialized crawl snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Interface attribute names, in id order.
    pub attr_names: Vec<String>,
    /// Queriability flags, parallel to `attr_names`.
    pub attr_queriable: Vec<bool>,
    /// Interface page size.
    pub page_size: usize,
    /// Whether the crawl runs in keyword mode.
    pub keyword_mode: bool,
    /// Vocabulary entries `(attr index, value string)` in [`ValueId`] order.
    pub values: Vec<(u16, String)>,
    /// Status per value, parallel to `values`.
    pub status: Vec<CandStatus>,
    /// `L_queried` in issue order.
    pub queried: Vec<u32>,
    /// Harvested records: `(source key, value ids)`.
    pub records: Vec<(u64, Vec<u32>)>,
    /// Communication rounds spent so far.
    pub rounds: u64,
    /// Queries issued so far.
    pub queries: u64,
}

/// Errors while parsing a checkpoint blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong or missing header line.
    BadHeader,
    /// A header from a format version this build does not understand.
    UnsupportedVersion(String),
    /// The body does not hash to the checksum recorded in the header —
    /// truncation or bit-rot.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the body actually read.
        actual: u64,
    },
    /// A section or field is malformed.
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "not a DWC checkpoint (bad header)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v:?} (this build reads v1 and v2)")
            }
            CheckpointError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint corrupt: checksum {actual:016x} does not match recorded {expected:016x}"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint section: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> Result<String, CheckpointError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next().ok_or(CheckpointError::Malformed("escape"))?;
        let lo = chars.next().ok_or(CheckpointError::Malformed("escape"))?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
            .map_err(|_| CheckpointError::Malformed("escape"))?;
        out.push(byte as char);
    }
    Ok(out)
}

const HEADER_V1: &str = "DWC-CHECKPOINT v1";
const HEADER_V2_PREFIX: &str = "DWC-CHECKPOINT v2 crc=";
const HEADER_ANY_PREFIX: &str = "DWC-CHECKPOINT ";

/// FNV-1a over the raw bytes — dependency-free, stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Checkpoint {
    /// Serializes to the current (v2) text format: a header line carrying the
    /// FNV-1a checksum of everything after it, then the body sections.
    pub fn to_text(&self) -> String {
        let body = self.body_text();
        let mut out = String::with_capacity(HEADER_V2_PREFIX.len() + 17 + body.len());
        let _ = writeln!(out, "{HEADER_V2_PREFIX}{:016x}", fnv1a64(body.as_bytes()));
        out.push_str(&body);
        out
    }

    /// The body sections (everything after the header line).
    fn body_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "meta\t{}\t{}\t{}\t{}",
            self.page_size,
            u8::from(self.keyword_mode),
            self.rounds,
            self.queries
        );
        let _ = writeln!(out, "attrs\t{}", self.attr_names.len());
        for (name, q) in self.attr_names.iter().zip(&self.attr_queriable) {
            let _ = writeln!(out, "a\t{}\t{}", escape(name), u8::from(*q));
        }
        let _ = writeln!(out, "values\t{}", self.values.len());
        for (attr, s) in &self.values {
            let _ = writeln!(out, "v\t{attr}\t{}", escape(s));
        }
        // Statuses as one compact line: U / F / Q per value.
        let mut st = String::with_capacity(self.status.len());
        for s in &self.status {
            st.push(match s {
                CandStatus::Undiscovered => 'U',
                CandStatus::Frontier => 'F',
                CandStatus::Queried => 'Q',
            });
        }
        let _ = writeln!(out, "status\t{st}");
        let _ = writeln!(
            out,
            "queried\t{}",
            self.queried.iter().map(|q| q.to_string()).collect::<Vec<_>>().join(",")
        );
        let _ = writeln!(out, "records\t{}", self.records.len());
        for (key, vals) in &self.records {
            let _ = writeln!(
                out,
                "r\t{key}\t{}",
                vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Parses the text format, negotiating the version from the header: v2
    /// (checksum verified before anything else), v1 (legacy, no checksum),
    /// or an error for anything newer or foreign.
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let newline = text.find('\n');
        let header = match newline {
            Some(i) => &text[..i],
            None => text,
        };
        let body = match newline {
            Some(i) => &text[i + 1..],
            None => "",
        };
        if let Some(crc_hex) = header.strip_prefix(HEADER_V2_PREFIX) {
            let expected = u64::from_str_radix(crc_hex, 16)
                .map_err(|_| CheckpointError::Malformed("header checksum"))?;
            let actual = fnv1a64(body.as_bytes());
            if actual != expected {
                return Err(CheckpointError::ChecksumMismatch { expected, actual });
            }
        } else if header != HEADER_V1 {
            return Err(match header.strip_prefix(HEADER_ANY_PREFIX) {
                Some(version) => CheckpointError::UnsupportedVersion(
                    version.split(' ').next().unwrap_or(version).to_string(),
                ),
                None => CheckpointError::BadHeader,
            });
        }
        Self::body_from_text(body)
    }

    /// Parses the body sections (everything after the header line).
    fn body_from_text(body: &str) -> Result<Self, CheckpointError> {
        let mut lines = body.lines();
        let meta_line = lines.next().ok_or(CheckpointError::Malformed("meta"))?;
        let meta: Vec<&str> = meta_line.split('\t').collect();
        if meta.len() != 5 || meta[0] != "meta" {
            return Err(CheckpointError::Malformed("meta"));
        }
        let parse_u64 = |s: &str, what: &'static str| -> Result<u64, CheckpointError> {
            s.parse().map_err(|_| CheckpointError::Malformed(what))
        };
        let page_size = parse_u64(meta[1], "page_size")? as usize;
        let keyword_mode = meta[2] == "1";
        let rounds = parse_u64(meta[3], "rounds")?;
        let queries = parse_u64(meta[4], "queries")?;

        let attrs_header = lines.next().ok_or(CheckpointError::Malformed("attrs"))?;
        let n_attrs: usize = attrs_header
            .strip_prefix("attrs\t")
            .and_then(|s| s.parse().ok())
            .ok_or(CheckpointError::Malformed("attrs"))?;
        let mut attr_names = Vec::with_capacity(n_attrs);
        let mut attr_queriable = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            let line = lines.next().ok_or(CheckpointError::Malformed("attr line"))?;
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 3 || parts[0] != "a" {
                return Err(CheckpointError::Malformed("attr line"));
            }
            attr_names.push(unescape(parts[1])?);
            attr_queriable.push(parts[2] == "1");
        }

        let values_header = lines.next().ok_or(CheckpointError::Malformed("values"))?;
        let n_values: usize = values_header
            .strip_prefix("values\t")
            .and_then(|s| s.parse().ok())
            .ok_or(CheckpointError::Malformed("values"))?;
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            let line = lines.next().ok_or(CheckpointError::Malformed("value line"))?;
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 3 || parts[0] != "v" {
                return Err(CheckpointError::Malformed("value line"));
            }
            let attr: u16 =
                parts[1].parse().map_err(|_| CheckpointError::Malformed("value attr"))?;
            values.push((attr, unescape(parts[2])?));
        }

        let status_line = lines.next().ok_or(CheckpointError::Malformed("status"))?;
        let st =
            status_line.strip_prefix("status\t").ok_or(CheckpointError::Malformed("status"))?;
        if st.len() != n_values {
            return Err(CheckpointError::Malformed("status length"));
        }
        let status: Vec<CandStatus> = st
            .chars()
            .map(|c| match c {
                'U' => Ok(CandStatus::Undiscovered),
                'F' => Ok(CandStatus::Frontier),
                'Q' => Ok(CandStatus::Queried),
                _ => Err(CheckpointError::Malformed("status char")),
            })
            .collect::<Result<_, _>>()?;

        let queried_line = lines.next().ok_or(CheckpointError::Malformed("queried"))?;
        let q =
            queried_line.strip_prefix("queried\t").ok_or(CheckpointError::Malformed("queried"))?;
        let queried: Vec<u32> = if q.is_empty() {
            Vec::new()
        } else {
            q.split(',')
                .map(|s| s.parse().map_err(|_| CheckpointError::Malformed("queried id")))
                .collect::<Result<_, _>>()?
        };

        let records_header = lines.next().ok_or(CheckpointError::Malformed("records"))?;
        let n_records: usize = records_header
            .strip_prefix("records\t")
            .and_then(|s| s.parse().ok())
            .ok_or(CheckpointError::Malformed("records"))?;
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let line = lines.next().ok_or(CheckpointError::Malformed("record line"))?;
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 3 || parts[0] != "r" {
                return Err(CheckpointError::Malformed("record line"));
            }
            let key: u64 =
                parts[1].parse().map_err(|_| CheckpointError::Malformed("record key"))?;
            let vals: Vec<u32> = if parts[2].is_empty() {
                Vec::new()
            } else {
                parts[2]
                    .split(',')
                    .map(|s| s.parse().map_err(|_| CheckpointError::Malformed("record value")))
                    .collect::<Result<_, _>>()?
            };
            records.push((key, vals));
        }
        Ok(Checkpoint {
            attr_names,
            attr_queriable,
            page_size,
            keyword_mode,
            values,
            status,
            queried,
            records,
            rounds,
            queries,
        })
    }

    /// Convenience: value ids of the frontier.
    pub fn frontier(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == CandStatus::Frontier)
            .map(|(i, _)| ValueId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Checkpoint {
        Checkpoint {
            attr_names: vec!["A".into(), "weird\tname %".into()],
            attr_queriable: vec![true, false],
            page_size: 10,
            keyword_mode: false,
            values: vec![(0, "a2".into()), (1, "tab\there".into()), (0, "x".into())],
            status: vec![CandStatus::Queried, CandStatus::Frontier, CandStatus::Undiscovered],
            queried: vec![0],
            records: vec![(7, vec![0, 1]), (9, vec![2])],
            rounds: 42,
            queries: 3,
        }
    }

    #[test]
    fn roundtrip_exact() {
        let cp = demo();
        let text = cp.to_text();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(cp, back);
    }

    #[test]
    fn escaping_handles_metacharacters() {
        assert_eq!(unescape(&escape("a\tb\nc%d\r")).unwrap(), "a\tb\nc%d\r");
        let cp = demo();
        let text = cp.to_text();
        // One line per value, despite embedded tabs/newlines in strings.
        assert_eq!(text.lines().filter(|l| l.starts_with("v\t")).count(), 3);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(Checkpoint::from_text("nope"), Err(CheckpointError::BadHeader));
        assert_eq!(Checkpoint::from_text(""), Err(CheckpointError::BadHeader));
        assert_eq!(
            Checkpoint::from_text("DWC-CHECKPOINT v1\nmeta\tx"),
            Err(CheckpointError::Malformed("meta"))
        );
        let truncated = demo().to_text().lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(Checkpoint::from_text(&truncated).is_err());
    }

    #[test]
    fn v1_blobs_still_parse() {
        let cp = demo();
        let text = cp.to_text();
        let body = &text[text.find('\n').unwrap() + 1..];
        let v1 = format!("DWC-CHECKPOINT v1\n{body}");
        assert_eq!(Checkpoint::from_text(&v1).unwrap(), cp);
    }

    #[test]
    fn future_versions_rejected_with_version_error() {
        assert_eq!(
            Checkpoint::from_text("DWC-CHECKPOINT v3 crc=0\nmeta\t1\t0\t0\t0"),
            Err(CheckpointError::UnsupportedVersion("v3".into()))
        );
    }

    #[test]
    fn bit_flip_anywhere_in_body_is_detected() {
        let text = demo().to_text();
        let body_start = text.find('\n').unwrap() + 1;
        for i in body_start..text.len() {
            let mut bytes = text.as_bytes().to_vec();
            bytes[i] ^= 0x01;
            let Ok(flipped) = String::from_utf8(bytes) else { continue };
            assert!(
                matches!(
                    Checkpoint::from_text(&flipped),
                    Err(CheckpointError::ChecksumMismatch { .. })
                ),
                "flip at byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn truncation_at_every_byte_is_detected() {
        let text = demo().to_text();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            assert!(
                Checkpoint::from_text(&text[..cut]).is_err(),
                "prefix of {cut} bytes must not parse as a valid checkpoint"
            );
        }
    }

    #[test]
    fn frontier_iterates_frontier_only() {
        let cp = demo();
        assert_eq!(cp.frontier().collect::<Vec<_>>(), vec![ValueId(1)]);
    }

    #[test]
    fn empty_sections_roundtrip() {
        let cp = Checkpoint {
            attr_names: vec!["A".into()],
            attr_queriable: vec![true],
            page_size: 5,
            keyword_mode: true,
            values: vec![],
            status: vec![],
            queried: vec![],
            records: vec![],
            rounds: 0,
            queries: 0,
        };
        assert_eq!(Checkpoint::from_text(&cp.to_text()).unwrap(), cp);
    }
}
