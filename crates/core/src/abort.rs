//! Heuristic query abortion (paper §3.4).
//!
//! Fetching every page of a query whose remaining pages are mostly duplicates
//! wastes communication rounds. The paper sketches two heuristics:
//!
//! 1. **Total-count heuristic** — "most Web sources report the number of
//!    total query results in the first return page. Therefore, a crawler is
//!    able to accurately calculate the exact number of new records in the
//!    following pages and thus can abort a query if the harvest rate is below
//!    some threshold."
//! 2. **Duplicate-window heuristic** — "when such information is not
//!    available, one can still apply other heuristics to abort queries that
//!    retrieve significant number of duplicate records in the first several
//!    pages."

/// Configuration of the per-query abortion heuristics.
#[derive(Debug, Clone, PartialEq)]
pub struct AbortPolicy {
    /// Total-count heuristic: abort (before fetching the next page) when the
    /// best-case remaining harvest rate — remaining-new records per remaining
    /// result slot — falls below this threshold. `None` disables.
    pub min_remaining_rate: Option<f64>,
    /// Duplicate-window heuristic: abort after `dup_pages` consecutive pages
    /// whose duplicate ratio is at least `dup_ratio`. `dup_pages = 0`
    /// disables.
    pub dup_pages: usize,
    /// Duplicate-ratio threshold of the window heuristic.
    pub dup_ratio: f64,
}

impl AbortPolicy {
    /// Abortion disabled: fetch every accessible page (the paper's default
    /// cost model).
    pub fn never() -> Self {
        AbortPolicy { min_remaining_rate: None, dup_pages: 0, dup_ratio: 1.0 }
    }

    /// The configuration used by the ablation experiments: total-count
    /// threshold 0.1, or two consecutive ≥90%-duplicate pages.
    pub fn standard() -> Self {
        AbortPolicy { min_remaining_rate: Some(0.1), dup_pages: 2, dup_ratio: 0.9 }
    }

    /// Whether anything is enabled.
    pub fn is_enabled(&self) -> bool {
        self.min_remaining_rate.is_some() || self.dup_pages > 0
    }
}

impl Default for AbortPolicy {
    fn default() -> Self {
        Self::never()
    }
}

/// Per-query incremental abortion decision state.
#[derive(Debug)]
pub struct AbortState {
    policy: AbortPolicy,
    page_size: usize,
    /// `num(q, DB_local)` at query start: records matching q already held.
    local_before: u64,
    reported_total: Option<u64>,
    new_so_far: u64,
    returned_so_far: u64,
    consecutive_dup_pages: usize,
}

impl AbortState {
    /// Starts tracking one query.
    pub fn new(policy: AbortPolicy, page_size: usize, local_before: u64) -> Self {
        AbortState {
            policy,
            page_size,
            local_before,
            reported_total: None,
            new_so_far: 0,
            returned_so_far: 0,
            consecutive_dup_pages: 0,
        }
    }

    /// Feed one fetched page's outcome: the reported total (first page),
    /// records returned on the page and how many of them were new.
    pub fn observe_page(&mut self, reported_total: Option<usize>, returned: u64, new: u64) {
        if let Some(t) = reported_total {
            self.reported_total = Some(t as u64);
        }
        self.new_so_far += new;
        self.returned_so_far += returned;
        let dup = returned.saturating_sub(new);
        if returned > 0 && dup as f64 / returned as f64 >= self.policy.dup_ratio {
            self.consecutive_dup_pages += 1;
        } else {
            self.consecutive_dup_pages = 0;
        }
    }

    /// Decide whether to abort before fetching the next page.
    pub fn should_abort(&self) -> bool {
        if self.policy.dup_pages > 0 && self.consecutive_dup_pages >= self.policy.dup_pages {
            return true;
        }
        if let (Some(threshold), Some(total)) =
            (self.policy.min_remaining_rate, self.reported_total)
        {
            let remaining_slots = total.saturating_sub(self.returned_so_far);
            if remaining_slots == 0 {
                return false; // pagination will stop naturally
            }
            // Upper bound on new records still retrievable: matches we have
            // not yet retrieved minus matched records already in DB_local
            // (which must eventually reappear as duplicates).
            let dups_owed =
                self.local_before.saturating_sub(self.returned_so_far - self.new_so_far);
            let max_new_remaining = remaining_slots.saturating_sub(dups_owed);
            let remaining_pages = remaining_slots.div_ceil(self.page_size as u64);
            let rate = max_new_remaining as f64 / (remaining_pages * self.page_size as u64) as f64;
            if rate < threshold {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_never_aborts() {
        let p = AbortPolicy::never();
        let mut st = AbortState::new(p.clone(), 10, 100);
        st.observe_page(Some(1000), 10, 0);
        st.observe_page(None, 10, 0);
        assert!(!st.should_abort());
        assert!(!p.is_enabled());
    }

    #[test]
    fn total_count_heuristic_aborts_when_everything_is_owed_as_dup() {
        let p = AbortPolicy { min_remaining_rate: Some(0.1), dup_pages: 0, dup_ratio: 1.0 };
        // 100 matches total, we already hold 95 of them locally.
        let mut st = AbortState::new(p.clone(), 10, 95);
        st.observe_page(Some(100), 10, 0);
        // Remaining 90 slots, dups owed 85 → at most 5 new in 9 pages = 0.055.
        assert!(st.should_abort());
    }

    #[test]
    fn total_count_heuristic_continues_when_plenty_is_new() {
        let p = AbortPolicy { min_remaining_rate: Some(0.1), dup_pages: 0, dup_ratio: 1.0 };
        let mut st = AbortState::new(p.clone(), 10, 5);
        st.observe_page(Some(100), 10, 8);
        assert!(!st.should_abort(), "most remaining records are new");
    }

    #[test]
    fn dup_window_heuristic_needs_consecutive_pages() {
        let p = AbortPolicy { min_remaining_rate: None, dup_pages: 2, dup_ratio: 0.9 };
        let mut st = AbortState::new(p.clone(), 10, 0);
        st.observe_page(None, 10, 0); // 100% dup
        assert!(!st.should_abort(), "one page is not enough");
        st.observe_page(None, 10, 5); // 50% dup resets the streak
        assert!(!st.should_abort());
        st.observe_page(None, 10, 1); // 90% dup
        st.observe_page(None, 10, 0); // 100% dup
        assert!(st.should_abort());
    }

    #[test]
    fn natural_end_of_pagination_is_not_an_abort() {
        let p = AbortPolicy::standard();
        let mut st = AbortState::new(p.clone(), 10, 0);
        st.observe_page(Some(10), 10, 10);
        assert!(!st.should_abort());
    }

    #[test]
    fn standard_policy_is_enabled() {
        assert!(AbortPolicy::standard().is_enabled());
    }
}
