//! The cross-layer structured event bus.
//!
//! Every observable thing that happens during a crawl — a query planned, a
//! page requested, a retry billed, records ingested, a checkpoint written, a
//! breaker transition, a worker restart — is a [`CrawlEvent`]. Events are
//! emitted exactly once, at the layer where the fact is established
//! (executor, ingestor, checkpoint loop, fleet supervisor), and flow through
//! an [`EventBus`] to any number of [`EventSink`]s. The first, mandatory
//! sink is the [`crate::metrics::MetricsRegistry`]: the *single source of
//! truth* from which [`crate::CrawlReport`], `FleetReport::health` and
//! [`crate::CrawlTrace`] are derived, so reports can no longer drift from
//! what actually happened. Additional sinks stream the same events elsewhere
//! — [`JsonlSink`] writes one JSON object per line for offline analysis
//! (`dwc crawl --events <path>`), [`MemorySink`] buffers them for tests.
//!
//! The JSONL encoding round-trips: [`CrawlEvent::to_json`] /
//! [`CrawlEvent::from_json`] are inverses, and replaying a recorded stream
//! through a fresh registry ([`crate::metrics::replay_report`]) rebuilds the
//! exact [`crate::CrawlReport`] the crawl returned.

use std::io::Write;
use std::sync::{Arc, Mutex};

/// Why a crawl ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `L_to-query` is empty: every reachable candidate was issued.
    FrontierExhausted,
    /// The round budget was exhausted.
    RoundBudget,
    /// The query budget was exhausted.
    QueryBudget,
    /// The coverage target was reached.
    CoverageReached,
    /// A supervised fleet abandoned the job after its worker exceeded the
    /// restart budget ([`crate::fleet::FleetConfig::max_restarts`]).
    WorkerFailed,
    /// The crawl's [`crate::source::CancelToken`] fired: the driver stopped
    /// issuing requests and finalized the report at the current state.
    Cancelled,
    /// The job's tenant exhausted its round quota
    /// ([`crate::tenant::Tenant::round_quota`]) and the fleet parked the job
    /// at a slice boundary (cooperative preemption).
    QuotaExhausted,
}

impl StopReason {
    /// Stable identifier used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::FrontierExhausted => "frontier_exhausted",
            StopReason::RoundBudget => "round_budget",
            StopReason::QueryBudget => "query_budget",
            StopReason::CoverageReached => "coverage_reached",
            StopReason::WorkerFailed => "worker_failed",
            StopReason::Cancelled => "cancelled",
            StopReason::QuotaExhausted => "quota_exhausted",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "frontier_exhausted" => StopReason::FrontierExhausted,
            "round_budget" => StopReason::RoundBudget,
            "query_budget" => StopReason::QueryBudget,
            "coverage_reached" => StopReason::CoverageReached,
            "worker_failed" => StopReason::WorkerFailed,
            "cancelled" => StopReason::Cancelled,
            "quota_exhausted" => StopReason::QuotaExhausted,
            _ => return None,
        })
    }
}

/// A circuit breaker's position, flattened for event reporting (the
/// cooldown countdown of [`crate::health::BreakerState::Open`] is supervisor
/// detail, not an observable transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Healthy: slices flow normally.
    Closed,
    /// Tripped: the job is paused.
    Open,
    /// Cooled down: the next slice is a probe.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable identifier used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "closed" => BreakerPhase::Closed,
            "open" => BreakerPhase::Open,
            "half_open" => BreakerPhase::HalfOpen,
            _ => return None,
        })
    }
}

/// One structured fact about a crawl, emitted where it happens.
///
/// The taxonomy spans all layers: planner (`QueryPlanned`), executor
/// (`PageRequested` through `QueryAborted`), ingestor (`PageFetched`
/// carries the harvest), the driver's bookkeeping (`QueryCompleted`,
/// `QueryRequeued`, checkpoint events, `CrawlResumed`/`CrawlFinished`),
/// the fleet coordinator (`SliceScheduled` through `TenantPreempted`), the
/// fleet supervisor (`BreakerTransition`, `WorkerRestarted`,
/// `JobAbandoned`) and the serving tier (`RequestEnqueued` through
/// `ServiceRestarted`).
///
/// Every variant folds into exactly the report/registry fields below —
/// [`crate::metrics::MetricsRegistry::record`] is the *only* place a
/// counter changes, so this table is the complete map from facts to
/// figures:
///
/// | Variant | Folds into |
/// |---|---|
/// | `QueryPlanned` | nothing (selection visibility only) |
/// | `PageRequested` | [`crate::CrawlReport`] `rounds` |
/// | `PageFetched` | `CrawlReport::records`; resets the fault streak |
/// | `PageCacheHit` | `CrawlReport::page_cache_hits` |
/// | `TransientFailure` | `CrawlReport::transient_failures` / `corrupt_pages`; fault streak |
/// | `BackoffBilled` | `CrawlReport::backoff_rounds` |
/// | `StallBilled` | `CrawlReport::stall_rounds` |
/// | `QueryAborted` | `CrawlReport::aborted_queries` |
/// | `QueryCompleted` | `CrawlReport::queries`; pushes a [`crate::CrawlTrace`] point |
/// | `QueryRequeued` | `CrawlReport::requeued_queries` |
/// | `CheckpointWritten` | `CrawlReport::checkpoints_written` |
/// | `CheckpointFailed` | `CrawlReport::checkpoint_failures` |
/// | `CrawlResumed` | seeds `rounds`/`queries`/`records`; pushes a trace point |
/// | `CrawlFinished` | `CrawlReport::stop` / `final_coverage` |
/// | `BreakerTransition` | [`crate::JobHealth`] `breaker_trips` / `breaker_recoveries` |
/// | `WorkerRestarted` | `JobHealth::worker_restarts` |
/// | `JobAbandoned` | `JobHealth::abandoned` |
/// | `SliceScheduled` | [`crate::SchedulerStats`] `slices_scheduled` / `rounds_granted` |
/// | `SliceCompleted` | `SchedulerStats` `slices_completed` / `rounds_executed` / `steals` / `per_worker_slices`; [`crate::UsageLedger`] `rounds` / `pages` (per-job maxima) |
/// | `JobAttached` | `UsageLedger` `rounds` / `pages` baselines; tenant↔job membership |
/// | `JobDetached` | `UsageLedger` `rounds` / `pages` (final per-job maxima) |
/// | `TenantPreempted` | `UsageLedger::preempted` |
/// | `TenantAdmitted` | `UsageLedger::admitted` |
/// | `TenantThrottled` | `UsageLedger::sheds` |
/// | `RequestEnqueued` | [`crate::ServiceReport`] `enqueued` / queue-depth stats |
/// | `RequestShed` | `ServiceReport::shed` |
/// | `RequestCancelled` | `ServiceReport::cancelled` |
/// | `RequestCompleted` | `ServiceReport::completed`; latency histogram |
/// | `FrameDropped` | `ServiceReport::frames_dropped` |
/// | `FrameRetransmitted` | `ServiceReport::retransmitted`; `UsageLedger::retransmits` |
/// | `Hedged` | `ServiceReport::hedged` |
/// | `ServiceRestarted` | `ServiceReport::restarts` |
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrawlEvent {
    /// The planner chose the next query: a policy-selected candidate
    /// (`candidate = Some(value id)`) or a pending seed group (`None`).
    QueryPlanned {
        /// Crawler-vocabulary id of the selected candidate, if any.
        candidate: Option<u32>,
    },
    /// One page request went out (successful or not): one communication
    /// round billed (Definition 2.3).
    PageRequested,
    /// A page arrived intact and was ingested.
    PageFetched {
        /// Records returned on the page (including duplicates).
        returned: u64,
        /// Records new to `DB_local`.
        new: u64,
    },
    /// The source served the page from its render cache (shared-fleet
    /// overlap): the round was billed as usual, but no re-render happened.
    /// Emitted immediately before the page's `PageFetched`.
    PageCacheHit,
    /// A page request failed on a transient-class error.
    TransientFailure {
        /// Whether the page arrived but was truncated/garbled
        /// ([`crate::CrawlError::CorruptPage`]).
        corrupt: bool,
    },
    /// The retry schedule billed a backoff wait.
    BackoffBilled {
        /// Simulated rounds spent waiting.
        rounds: u64,
    },
    /// A stalled request billed its wasted wait rounds.
    StallBilled {
        /// Simulated rounds lost to the stall.
        rounds: u64,
    },
    /// The abortion heuristic cut the current query short (§3.4).
    QueryAborted,
    /// A query finished (pages exhausted, aborted, or given up); one trace
    /// point is derived from the registry's counters at this instant.
    QueryCompleted,
    /// A query that failed entirely on transient errors was put back on the
    /// frontier.
    QueryRequeued {
        /// Crawler-vocabulary id of the requeued candidate.
        candidate: u32,
    },
    /// A periodic checkpoint was persisted.
    CheckpointWritten {
        /// Whether the previous on-disk generation was rotated to `.bak`.
        rotated_backup: bool,
    },
    /// A periodic checkpoint save failed (the crawl continues; the previous
    /// on-disk generation remains valid).
    CheckpointFailed,
    /// The crawl resumed from a checkpoint with these already-billed
    /// counters. Also emitted as a snapshot when a sink attaches to a crawl
    /// that already has history, so every stream is replayable from its
    /// first line.
    CrawlResumed {
        /// Page-request rounds already billed.
        rounds: u64,
        /// Queries already issued.
        queries: u64,
        /// Records already harvested.
        records: u64,
    },
    /// The crawl ended; carries the verdict a report needs.
    CrawlFinished {
        /// Why the crawl stopped.
        stop: StopReason,
        /// Final true coverage, when the target size was known.
        coverage: Option<f64>,
    },
    /// A fleet job's circuit breaker moved between phases.
    BreakerTransition {
        /// Fleet job index.
        job: u32,
        /// Phase before the transition.
        from: BreakerPhase,
        /// Phase after the transition.
        to: BreakerPhase,
    },
    /// A fleet worker was restarted from its last checkpoint after a panic.
    WorkerRestarted {
        /// Fleet job index.
        job: u32,
    },
    /// A fleet job was abandoned after exhausting its restart budget.
    JobAbandoned {
        /// Fleet job index.
        job: u32,
    },
    /// The fleet coordinator queued one budget slice for a job on the
    /// work-stealing pool.
    SliceScheduled {
        /// Fleet job index.
        job: u32,
        /// Rounds granted for this slice.
        rounds: u64,
    },
    /// A pool worker finished executing a job's slice (without panicking).
    SliceCompleted {
        /// Fleet job index.
        job: u32,
        /// Pool worker that executed the slice.
        worker: u32,
        /// Elapsed rounds actually billed during the slice.
        rounds: u64,
        /// Whether the worker stole the slice from a sibling's deque.
        stolen: bool,
        /// Tenant billed for the slice (`None` in a tenant-blind fleet).
        tenant: Option<u32>,
        /// The job's *cumulative* billed rounds after the slice. Carried so
        /// the usage fold stays exact (a per-job maximum) even when worker
        /// panics or restarts make slice deltas lossy.
        total: u64,
        /// The job's cumulative page-request rounds after the slice.
        pages: u64,
    },
    /// A job joined the fleet: at startup, on a post-panic restart, or live
    /// via [`crate::fleet::FleetController::attach`]. Carries the job's
    /// already-billed cumulative counters so a replayed stream seeds the
    /// same baselines the coordinator used.
    JobAttached {
        /// Fleet job index.
        job: u32,
        /// Tenant the job runs under (`None` in a tenant-blind fleet).
        tenant: Option<u32>,
        /// Rounds already billed to the job when it attached (non-zero when
        /// resuming from a checkpoint).
        rounds: u64,
        /// Page-request rounds already executed when it attached.
        pages: u64,
    },
    /// A job left the fleet: finalized, abandoned, or detached live via
    /// [`crate::fleet::FleetController::detach`]. Carries the job's final
    /// cumulative counters — the authoritative last word for the usage fold.
    JobDetached {
        /// Fleet job index.
        job: u32,
        /// Final cumulative rounds billed to the job.
        rounds: u64,
        /// Final cumulative page-request rounds.
        pages: u64,
    },
    /// The fleet parked one of a tenant's jobs at a slice boundary —
    /// round quota exhausted, or its breaker tripped open. Cooperative
    /// preemption: the in-flight slice always completes first.
    TenantPreempted {
        /// Tenant whose job was parked.
        tenant: u32,
        /// Fleet job index that was parked.
        job: u32,
    },
    /// The serving tier admitted a request through the tenant's token
    /// bucket ([`crate::tenant::RateLimit`]).
    TenantAdmitted {
        /// Tenant whose bucket granted the token.
        tenant: u32,
    },
    /// The serving tier shed a request because the tenant's token bucket
    /// was empty. The round is still billed — to the offending tenant.
    TenantThrottled {
        /// Tenant whose bucket was empty.
        tenant: u32,
    },
    /// The serving tier admitted one request into its bounded queue
    /// ([`crate::serve::SourceService`]).
    RequestEnqueued {
        /// Queue depth right after admission (this request included).
        depth: u32,
    },
    /// The serving tier rejected one request at admission: the bounded queue
    /// was full and the load was shed. The round is still billed
    /// (Definition 2.3 counts requests, not outcomes).
    RequestShed,
    /// An admitted request was cancelled at dequeue — its deadline expired
    /// while it waited, or its cancellation token fired. Billed like any
    /// other round.
    RequestCancelled,
    /// The serving tier finished processing an admitted request (whether the
    /// payload succeeded or carried a source error).
    RequestCompleted {
        /// Admission-to-reply wall latency in microseconds.
        latency_us: u64,
    },
    /// A wire frame was lost, truncated beyond use, or taken down with its
    /// link by the chaos layer ([`crate::chaos::ChaosPlan`]); the sender will
    /// retransmit. Dropped *request* frames never reached the service and
    /// bill nothing; dropped *reply* frames were already billed by whichever
    /// counter their request landed in.
    FrameDropped {
        /// Chaos-layer wire-frame index (1-based transmission count).
        frame: u64,
    },
    /// A retransmitted or duplicated request frame hit the service-side
    /// dedup window: the round is billed as a new request (Definition 2.3),
    /// but the cached outcome is served — the request is never executed
    /// twice.
    FrameRetransmitted {
        /// Idempotent request id shared by every transmission of the
        /// request.
        request: u64,
        /// Tenant billed for the duplicate, when the connection that sent
        /// it was opened for one ([`crate::serve::SourceService::connect_for`]).
        tenant: Option<u32>,
    },
    /// The client raced a hedge duplicate of a request whose reply exceeded
    /// the hedging threshold ([`crate::serve::ClientPool::with_hedging`]).
    Hedged {
        /// Idempotent request id the hedge duplicates.
        request: u64,
    },
    /// A service worker was killed mid-request and the service recovered:
    /// queue and billing state survive, the in-flight request is billed
    /// cancelled (crash before execution) or served from the dedup cache on
    /// retransmit (crash after execution).
    ServiceRestarted,
}

impl CrawlEvent {
    /// Encodes the event as one JSON object (no trailing newline), e.g.
    /// `{"event":"page_fetched","returned":10,"new":3}`.
    pub fn to_json(&self) -> String {
        match *self {
            CrawlEvent::QueryPlanned { candidate } => match candidate {
                Some(c) => format!("{{\"event\":\"query_planned\",\"candidate\":{c}}}"),
                None => "{\"event\":\"query_planned\"}".to_string(),
            },
            CrawlEvent::PageRequested => "{\"event\":\"page_requested\"}".to_string(),
            CrawlEvent::PageFetched { returned, new } => {
                format!("{{\"event\":\"page_fetched\",\"returned\":{returned},\"new\":{new}}}")
            }
            CrawlEvent::PageCacheHit => "{\"event\":\"page_cache_hit\"}".to_string(),
            CrawlEvent::TransientFailure { corrupt } => {
                format!("{{\"event\":\"transient_failure\",\"corrupt\":{corrupt}}}")
            }
            CrawlEvent::BackoffBilled { rounds } => {
                format!("{{\"event\":\"backoff_billed\",\"rounds\":{rounds}}}")
            }
            CrawlEvent::StallBilled { rounds } => {
                format!("{{\"event\":\"stall_billed\",\"rounds\":{rounds}}}")
            }
            CrawlEvent::QueryAborted => "{\"event\":\"query_aborted\"}".to_string(),
            CrawlEvent::QueryCompleted => "{\"event\":\"query_completed\"}".to_string(),
            CrawlEvent::QueryRequeued { candidate } => {
                format!("{{\"event\":\"query_requeued\",\"candidate\":{candidate}}}")
            }
            CrawlEvent::CheckpointWritten { rotated_backup } => {
                format!("{{\"event\":\"checkpoint_written\",\"rotated_backup\":{rotated_backup}}}")
            }
            CrawlEvent::CheckpointFailed => "{\"event\":\"checkpoint_failed\"}".to_string(),
            CrawlEvent::CrawlResumed { rounds, queries, records } => format!(
                "{{\"event\":\"crawl_resumed\",\"rounds\":{rounds},\"queries\":{queries},\
                 \"records\":{records}}}"
            ),
            CrawlEvent::CrawlFinished { stop, coverage } => match coverage {
                Some(cov) => format!(
                    "{{\"event\":\"crawl_finished\",\"stop\":\"{}\",\"coverage\":{cov}}}",
                    stop.as_str()
                ),
                None => {
                    format!("{{\"event\":\"crawl_finished\",\"stop\":\"{}\"}}", stop.as_str())
                }
            },
            CrawlEvent::BreakerTransition { job, from, to } => format!(
                "{{\"event\":\"breaker_transition\",\"job\":{job},\"from\":\"{}\",\"to\":\"{}\"}}",
                from.as_str(),
                to.as_str()
            ),
            CrawlEvent::WorkerRestarted { job } => {
                format!("{{\"event\":\"worker_restarted\",\"job\":{job}}}")
            }
            CrawlEvent::JobAbandoned { job } => {
                format!("{{\"event\":\"job_abandoned\",\"job\":{job}}}")
            }
            CrawlEvent::SliceScheduled { job, rounds } => {
                format!("{{\"event\":\"slice_scheduled\",\"job\":{job},\"rounds\":{rounds}}}")
            }
            CrawlEvent::SliceCompleted { job, worker, rounds, stolen, tenant, total, pages } => {
                let tenant = match tenant {
                    Some(t) => format!(",\"tenant\":{t}"),
                    None => String::new(),
                };
                format!(
                    "{{\"event\":\"slice_completed\",\"job\":{job},\"worker\":{worker},\
                     \"rounds\":{rounds},\"stolen\":{stolen}{tenant},\"total\":{total},\
                     \"pages\":{pages}}}"
                )
            }
            CrawlEvent::JobAttached { job, tenant, rounds, pages } => {
                let tenant = match tenant {
                    Some(t) => format!(",\"tenant\":{t}"),
                    None => String::new(),
                };
                format!(
                    "{{\"event\":\"job_attached\",\"job\":{job}{tenant},\"rounds\":{rounds},\
                     \"pages\":{pages}}}"
                )
            }
            CrawlEvent::JobDetached { job, rounds, pages } => format!(
                "{{\"event\":\"job_detached\",\"job\":{job},\"rounds\":{rounds},\
                 \"pages\":{pages}}}"
            ),
            CrawlEvent::TenantPreempted { tenant, job } => {
                format!("{{\"event\":\"tenant_preempted\",\"tenant\":{tenant},\"job\":{job}}}")
            }
            CrawlEvent::TenantAdmitted { tenant } => {
                format!("{{\"event\":\"tenant_admitted\",\"tenant\":{tenant}}}")
            }
            CrawlEvent::TenantThrottled { tenant } => {
                format!("{{\"event\":\"tenant_throttled\",\"tenant\":{tenant}}}")
            }
            CrawlEvent::RequestEnqueued { depth } => {
                format!("{{\"event\":\"request_enqueued\",\"depth\":{depth}}}")
            }
            CrawlEvent::RequestShed => "{\"event\":\"request_shed\"}".to_string(),
            CrawlEvent::RequestCancelled => "{\"event\":\"request_cancelled\"}".to_string(),
            CrawlEvent::RequestCompleted { latency_us } => {
                format!("{{\"event\":\"request_completed\",\"latency_us\":{latency_us}}}")
            }
            CrawlEvent::FrameDropped { frame } => {
                format!("{{\"event\":\"frame_dropped\",\"frame\":{frame}}}")
            }
            CrawlEvent::FrameRetransmitted { request, tenant } => match tenant {
                Some(t) => format!(
                    "{{\"event\":\"frame_retransmitted\",\"request\":{request},\"tenant\":{t}}}"
                ),
                None => format!("{{\"event\":\"frame_retransmitted\",\"request\":{request}}}"),
            },
            CrawlEvent::Hedged { request } => {
                format!("{{\"event\":\"hedged\",\"request\":{request}}}")
            }
            CrawlEvent::ServiceRestarted => "{\"event\":\"service_restarted\"}".to_string(),
        }
    }

    /// Decodes one JSON object produced by [`CrawlEvent::to_json`]. Returns
    /// `None` on anything else — the parser understands exactly the flat
    /// single-object lines this module writes, not arbitrary JSON.
    pub fn from_json(line: &str) -> Option<Self> {
        let kind = json_str(line, "event")?;
        Some(match kind {
            "query_planned" => CrawlEvent::QueryPlanned {
                candidate: json_u64(line, "candidate").map(|c| c as u32),
            },
            "page_requested" => CrawlEvent::PageRequested,
            "page_fetched" => CrawlEvent::PageFetched {
                returned: json_u64(line, "returned")?,
                new: json_u64(line, "new")?,
            },
            "page_cache_hit" => CrawlEvent::PageCacheHit,
            "transient_failure" => {
                CrawlEvent::TransientFailure { corrupt: json_bool(line, "corrupt")? }
            }
            "backoff_billed" => CrawlEvent::BackoffBilled { rounds: json_u64(line, "rounds")? },
            "stall_billed" => CrawlEvent::StallBilled { rounds: json_u64(line, "rounds")? },
            "query_aborted" => CrawlEvent::QueryAborted,
            "query_completed" => CrawlEvent::QueryCompleted,
            "query_requeued" => {
                CrawlEvent::QueryRequeued { candidate: json_u64(line, "candidate")? as u32 }
            }
            "checkpoint_written" => {
                CrawlEvent::CheckpointWritten { rotated_backup: json_bool(line, "rotated_backup")? }
            }
            "checkpoint_failed" => CrawlEvent::CheckpointFailed,
            "crawl_resumed" => CrawlEvent::CrawlResumed {
                rounds: json_u64(line, "rounds")?,
                queries: json_u64(line, "queries")?,
                records: json_u64(line, "records")?,
            },
            "crawl_finished" => CrawlEvent::CrawlFinished {
                stop: StopReason::parse(json_str(line, "stop")?)?,
                coverage: json_f64(line, "coverage"),
            },
            "breaker_transition" => CrawlEvent::BreakerTransition {
                job: json_u64(line, "job")? as u32,
                from: BreakerPhase::parse(json_str(line, "from")?)?,
                to: BreakerPhase::parse(json_str(line, "to")?)?,
            },
            "worker_restarted" => {
                CrawlEvent::WorkerRestarted { job: json_u64(line, "job")? as u32 }
            }
            "job_abandoned" => CrawlEvent::JobAbandoned { job: json_u64(line, "job")? as u32 },
            "slice_scheduled" => CrawlEvent::SliceScheduled {
                job: json_u64(line, "job")? as u32,
                rounds: json_u64(line, "rounds")?,
            },
            "slice_completed" => CrawlEvent::SliceCompleted {
                job: json_u64(line, "job")? as u32,
                worker: json_u64(line, "worker")? as u32,
                rounds: json_u64(line, "rounds")?,
                stolen: json_bool(line, "stolen")?,
                tenant: json_u64(line, "tenant").map(|t| t as u32),
                total: json_u64(line, "total")?,
                pages: json_u64(line, "pages")?,
            },
            "job_attached" => CrawlEvent::JobAttached {
                job: json_u64(line, "job")? as u32,
                tenant: json_u64(line, "tenant").map(|t| t as u32),
                rounds: json_u64(line, "rounds")?,
                pages: json_u64(line, "pages")?,
            },
            "job_detached" => CrawlEvent::JobDetached {
                job: json_u64(line, "job")? as u32,
                rounds: json_u64(line, "rounds")?,
                pages: json_u64(line, "pages")?,
            },
            "tenant_preempted" => CrawlEvent::TenantPreempted {
                tenant: json_u64(line, "tenant")? as u32,
                job: json_u64(line, "job")? as u32,
            },
            "tenant_admitted" => {
                CrawlEvent::TenantAdmitted { tenant: json_u64(line, "tenant")? as u32 }
            }
            "tenant_throttled" => {
                CrawlEvent::TenantThrottled { tenant: json_u64(line, "tenant")? as u32 }
            }
            "request_enqueued" => {
                CrawlEvent::RequestEnqueued { depth: json_u64(line, "depth")? as u32 }
            }
            "request_shed" => CrawlEvent::RequestShed,
            "request_cancelled" => CrawlEvent::RequestCancelled,
            "request_completed" => {
                CrawlEvent::RequestCompleted { latency_us: json_u64(line, "latency_us")? }
            }
            "frame_dropped" => CrawlEvent::FrameDropped { frame: json_u64(line, "frame")? },
            "frame_retransmitted" => CrawlEvent::FrameRetransmitted {
                request: json_u64(line, "request")?,
                tenant: json_u64(line, "tenant").map(|t| t as u32),
            },
            "hedged" => CrawlEvent::Hedged { request: json_u64(line, "request")? },
            "service_restarted" => CrawlEvent::ServiceRestarted,
            _ => return None,
        })
    }
}

/// Finds the raw value text after `"key":` in a flat JSON object. String
/// values in our encoding are bare identifiers (no escapes), so scanning to
/// the next `,`/`}`/closing quote is exact.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    json_raw(line, key)?.strip_prefix('"')?.strip_suffix('"')
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

fn json_bool(line: &str, key: &str) -> Option<bool> {
    json_raw(line, key)?.parse().ok()
}

fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_raw(line, key)?.parse().ok()
}

/// A consumer of crawl events. Sinks must keep up — emission is synchronous
/// on the crawl path — and must never panic the crawl over analytics.
pub trait EventSink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &CrawlEvent);
}

/// The per-crawl event bus: the metrics registry (always first, the source
/// of truth) plus any number of streaming sinks.
#[derive(Default)]
pub struct EventBus {
    metrics: crate::metrics::MetricsRegistry,
    sinks: Vec<Box<dyn EventSink>>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("metrics", &self.metrics)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl EventBus {
    /// A bus with a fresh registry and no streaming sinks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes one event: records it in the registry, then forwards it to
    /// every attached sink.
    pub fn emit(&mut self, event: CrawlEvent) {
        self.metrics.record(&event);
        for sink in &mut self.sinks {
            sink.emit(&event);
        }
    }

    /// Attaches a streaming sink. If the crawl already has history (a
    /// resumed or mid-flight crawl), the sink first receives a
    /// [`CrawlEvent::CrawlResumed`] snapshot so its stream replays to the
    /// same totals as the registry.
    pub fn add_sink(&mut self, mut sink: Box<dyn EventSink>) {
        if let Some(snapshot) = self.metrics.snapshot_event() {
            sink.emit(&snapshot);
        }
        self.sinks.push(sink);
    }

    /// Read access to the registry — the single source of truth for every
    /// counter a report surfaces.
    pub fn metrics(&self) -> &crate::metrics::MetricsRegistry {
        &self.metrics
    }
}

/// A sink that writes one JSON line per event (the `dwc crawl --events`
/// stream). Write errors are counted, not propagated: analytics must never
/// kill a crawl.
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    write_errors: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. Consider a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, write_errors: 0 }
    }

    /// Write errors swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &CrawlEvent) {
        if writeln!(self.writer, "{}", event.to_json()).is_err() {
            self.write_errors += 1;
        }
    }
}

/// A sink buffering events in a shared vector (test and tooling harnesses
/// read the buffer after the crawl consumed the crawler).
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<CrawlEvent>>>,
}

impl MemorySink {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to the shared buffer; clones observe the same stream.
    pub fn events(&self) -> Arc<Mutex<Vec<CrawlEvent>>> {
        Arc::clone(&self.events)
    }

    /// Copies the buffered events out.
    pub fn collected(&self) -> Vec<CrawlEvent> {
        self.events.lock().expect("event buffer poisoned").clone()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &CrawlEvent) {
        self.events.lock().expect("event buffer poisoned").push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<CrawlEvent> {
        vec![
            CrawlEvent::QueryPlanned { candidate: Some(7) },
            CrawlEvent::QueryPlanned { candidate: None },
            CrawlEvent::PageRequested,
            CrawlEvent::PageFetched { returned: 10, new: 3 },
            CrawlEvent::PageCacheHit,
            CrawlEvent::TransientFailure { corrupt: true },
            CrawlEvent::TransientFailure { corrupt: false },
            CrawlEvent::BackoffBilled { rounds: 4 },
            CrawlEvent::StallBilled { rounds: 9 },
            CrawlEvent::QueryAborted,
            CrawlEvent::QueryCompleted,
            CrawlEvent::QueryRequeued { candidate: 12 },
            CrawlEvent::CheckpointWritten { rotated_backup: true },
            CrawlEvent::CheckpointFailed,
            CrawlEvent::CrawlResumed { rounds: 100, queries: 5, records: 42 },
            CrawlEvent::CrawlFinished { stop: StopReason::RoundBudget, coverage: Some(0.75) },
            CrawlEvent::CrawlFinished { stop: StopReason::FrontierExhausted, coverage: None },
            CrawlEvent::CrawlFinished { stop: StopReason::QuotaExhausted, coverage: None },
            CrawlEvent::BreakerTransition {
                job: 2,
                from: BreakerPhase::HalfOpen,
                to: BreakerPhase::Closed,
            },
            CrawlEvent::WorkerRestarted { job: 1 },
            CrawlEvent::JobAbandoned { job: 0 },
            CrawlEvent::SliceScheduled { job: 3, rounds: 250 },
            CrawlEvent::SliceCompleted {
                job: 3,
                worker: 1,
                rounds: 248,
                stolen: true,
                tenant: Some(2),
                total: 500,
                pages: 480,
            },
            CrawlEvent::SliceCompleted {
                job: 0,
                worker: 0,
                rounds: 10,
                stolen: false,
                tenant: None,
                total: 10,
                pages: 9,
            },
            CrawlEvent::JobAttached { job: 4, tenant: Some(1), rounds: 120, pages: 110 },
            CrawlEvent::JobAttached { job: 5, tenant: None, rounds: 0, pages: 0 },
            CrawlEvent::JobDetached { job: 4, rounds: 300, pages: 280 },
            CrawlEvent::TenantPreempted { tenant: 1, job: 4 },
            CrawlEvent::TenantAdmitted { tenant: 3 },
            CrawlEvent::TenantThrottled { tenant: 3 },
            CrawlEvent::RequestEnqueued { depth: 5 },
            CrawlEvent::RequestShed,
            CrawlEvent::RequestCancelled,
            CrawlEvent::RequestCompleted { latency_us: 1_250 },
            CrawlEvent::FrameDropped { frame: 17 },
            CrawlEvent::FrameRetransmitted { request: 42, tenant: None },
            CrawlEvent::FrameRetransmitted { request: 43, tenant: Some(6) },
            CrawlEvent::Hedged { request: 42 },
            CrawlEvent::ServiceRestarted,
        ]
    }

    #[test]
    fn json_roundtrips_every_variant() {
        for ev in all_variants() {
            let line = ev.to_json();
            let back =
                CrawlEvent::from_json(&line).unwrap_or_else(|| panic!("unparseable line {line:?}"));
            assert_eq!(back, ev, "round-trip through {line:?}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(CrawlEvent::from_json(""), None);
        assert_eq!(CrawlEvent::from_json("{\"event\":\"warp_drive\"}"), None);
        assert_eq!(CrawlEvent::from_json("{\"event\":\"page_fetched\"}"), None, "missing fields");
        assert_eq!(CrawlEvent::from_json("not json at all"), None);
    }

    #[test]
    fn key_lookup_is_not_fooled_by_suffix_keys() {
        // "rounds" must not match inside another key that ends in `rounds`.
        let line = "{\"event\":\"stall_billed\",\"xrounds\":7,\"rounds\":3}";
        assert_eq!(CrawlEvent::from_json(line), Some(CrawlEvent::StallBilled { rounds: 3 }));
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&CrawlEvent::PageRequested);
        sink.emit(&CrawlEvent::QueryCompleted);
        assert_eq!(sink.write_errors(), 0);
        let text = String::from_utf8(sink.writer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(CrawlEvent::from_json(lines[0]), Some(CrawlEvent::PageRequested));
    }

    #[test]
    fn memory_sink_shares_its_buffer() {
        let sink = MemorySink::new();
        let handle = sink.events();
        let mut boxed: Box<dyn EventSink> = Box::new(sink.clone());
        boxed.emit(&CrawlEvent::QueryAborted);
        assert_eq!(handle.lock().unwrap().as_slice(), &[CrawlEvent::QueryAborted]);
        assert_eq!(sink.collected(), vec![CrawlEvent::QueryAborted]);
    }
}
