//! Executor stage: pagination, transient-failure retries, per-query
//! abortion, and round billing.
//!
//! Every page request — including failed ones — costs one communication
//! round (Definition 2.3); retry backoff waits and latency stalls are billed
//! additionally as simulated rounds. The executor holds no counters of its
//! own: each billable fact is emitted as a [`CrawlEvent`] and the bus's
//! [`crate::metrics::MetricsRegistry`] does the arithmetic (including the
//! elapsed-rounds budget the executor itself consults mid-query).

use crate::abort::{AbortPolicy, AbortState};
use crate::config::{CrawlConfig, RetryPolicy};
use crate::events::{CrawlEvent, EventBus};
use crate::extract::ExtractedPageRef;
use crate::source::{CancelToken, CrawlError, DataSource, PageMeta, ProberMode, SourceRequest};
use crate::stage::ingestor::{Ingestor, PageIngest};
use crate::state::{CrawlState, QueryOutcome};
use dwc_model::ValueId;
use dwc_server::Query;
use std::time::{Duration, Instant};

/// What one executed query produced.
#[derive(Debug)]
pub struct ExecResult {
    /// The query's outcome (pages, new records, abortion, failure class).
    pub outcome: QueryOutcome,
    /// Values promoted to the frontier by this query's records, in
    /// decomposition order — the driver announces them to the policy.
    pub newly_discovered: Vec<ValueId>,
}

/// Outcome of one page fetch (after retries).
enum PageFetch {
    /// The page arrived intact and was handed to the visitor; only its
    /// metadata outlives the borrow.
    Meta(PageMeta),
    /// The fetch was abandoned; `transient` says whether the final error was
    /// transient-class (retry exhaustion / budget) rather than fatal.
    GaveUp { transient: bool },
}

/// The execute stage: runs one query against the source until pagination
/// ends, the abortion heuristic fires, or a budget is hit.
#[derive(Debug, Clone)]
pub struct Executor {
    abort: AbortPolicy,
    retry: RetryPolicy,
    prober: ProberMode,
    max_rounds: Option<u64>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl Executor {
    /// An executor applying `config`'s abort, retry, prober, and
    /// round-budget settings.
    pub fn from_config(config: &CrawlConfig) -> Self {
        Executor {
            abort: config.abort.clone(),
            retry: config.retry,
            prober: config.prober,
            max_rounds: config.max_rounds,
            deadline: config.deadline,
            cancel: config.cancel.clone(),
        }
    }

    /// Fetches pages of one query until pagination ends, the abortion
    /// heuristic fires, or the round budget is hit. `local_before` is the
    /// number of matching records already held (`num(q, DB_local)` at query
    /// start). Records are handed to the `ingestor` as they arrive; billing
    /// flows through the `bus`.
    pub fn run<S: DataSource>(
        &self,
        source: &S,
        query: &Query,
        local_before: u64,
        state: &mut CrawlState,
        ingestor: &mut Ingestor,
        bus: &mut EventBus,
    ) -> ExecResult {
        let mut outcome = QueryOutcome::default();
        let mut abort_state = AbortState::new(self.abort.clone(), state.page_size, local_before);
        let mut touched: Vec<ValueId> = Vec::new();
        let mut newly_discovered: Vec<ValueId> = Vec::new();
        let mut page_index = 0usize;
        let mut gave_up_transient = false;
        loop {
            if let Some(max) = self.max_rounds {
                if bus.metrics().elapsed_rounds() >= max {
                    break;
                }
            }
            let mut page_stats = PageIngest::default();
            let meta = match self.fetch_page_with_retries(
                source,
                query,
                page_index,
                bus,
                &mut |page: &ExtractedPageRef<'_>| {
                    page_stats =
                        ingestor.ingest_page(state, page, &mut touched, &mut newly_discovered);
                },
            ) {
                PageFetch::Meta(meta) => meta,
                PageFetch::GaveUp { transient } => {
                    gave_up_transient = transient;
                    break;
                }
            };
            outcome.pages += 1;
            if meta.total_matches.is_some() {
                outcome.reported_total = meta.total_matches;
            }
            if meta.served_from_cache {
                bus.emit(CrawlEvent::PageCacheHit);
            }
            bus.emit(CrawlEvent::PageFetched {
                returned: page_stats.returned,
                new: page_stats.new,
            });
            outcome.returned_records += page_stats.returned;
            outcome.new_records += page_stats.new;
            abort_state.observe_page(meta.total_matches, page_stats.returned, page_stats.new);
            if !meta.has_more {
                break;
            }
            if abort_state.should_abort() {
                outcome.aborted = true;
                bus.emit(CrawlEvent::QueryAborted);
                break;
            }
            page_index += 1;
        }
        touched.sort_unstable();
        touched.dedup();
        outcome.touched_values = touched;
        outcome.failed_transient = outcome.pages == 0 && gave_up_transient;
        ExecResult { outcome, newly_discovered }
    }

    /// One page request with transient-failure retries. Every attempt emits
    /// a `PageRequested` round; every wait between attempts emits
    /// `BackoffBilled` rounds per the [`RetryPolicy`] schedule, and latency
    /// stalls emit their wasted rounds as `StallBilled` instead (a stall is
    /// its own wait — no extra backoff is layered on top). Fatal errors,
    /// retry exhaustion, and running out of round budget mid-backoff end the
    /// query.
    fn fetch_page_with_retries<S: DataSource>(
        &self,
        source: &S,
        query: &Query,
        page_index: usize,
        bus: &mut EventBus,
        visit: &mut dyn FnMut(&ExtractedPageRef<'_>),
    ) -> PageFetch {
        let mut attempt = 0u32;
        loop {
            // A fired crawl token stops re-submission BEFORE the round is
            // requested: nothing is offered to the source, nothing is billed.
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return PageFetch::GaveUp { transient: true };
            }
            bus.emit(CrawlEvent::PageRequested);
            let mut request = SourceRequest::new(query, page_index, self.prober);
            if let Some(per_request) = self.deadline {
                request = request.with_deadline(Instant::now() + per_request);
            }
            if let Some(token) = self.cancel.as_ref() {
                request = request.with_cancel(token);
            }
            let err = match source.respond(&request, visit) {
                Ok(response) => return PageFetch::Meta(response.meta),
                Err(e) => e,
            };
            if !err.is_transient() {
                return PageFetch::GaveUp { transient: false };
            }
            bus.emit(CrawlEvent::TransientFailure {
                corrupt: matches!(err, CrawlError::CorruptPage),
            });
            if let CrawlError::Stalled { wasted_rounds } = err {
                bus.emit(CrawlEvent::StallBilled { rounds: wasted_rounds });
            }
            attempt += 1;
            if attempt > self.retry.max_retries {
                return PageFetch::GaveUp { transient: true };
            }
            if !matches!(err, CrawlError::Stalled { .. }) {
                // Salting the jitter draw with elapsed rounds decorrelates
                // clients that hit the same fault at different points in
                // their crawls while keeping each crawl deterministic.
                let wait = self.retry.backoff_jittered(attempt, bus.metrics().elapsed_rounds());
                if wait > 0 {
                    bus.emit(CrawlEvent::BackoffBilled { rounds: wait });
                }
            }
            if let Some(max) = self.max_rounds {
                if bus.metrics().elapsed_rounds() >= max {
                    return PageFetch::GaveUp { transient: true };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::figure1_table;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};

    fn state_for(server: &WebDbServer) -> CrawlState {
        let iface = server.interface();
        let names = iface.attr_names.clone();
        let queriable: Vec<bool> =
            (0..names.len()).map(|i| iface.is_queriable(dwc_model::AttrId(i as u16))).collect();
        CrawlState::new(names, queriable, iface.page_size)
    }

    fn a2_query() -> Query {
        Query::ByString { attr: "A".into(), value: "a2".into() }
    }

    #[test]
    fn run_pages_through_and_bills_rounds() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 1);
        let server = WebDbServer::new(t, spec);
        let mut state = state_for(&server);
        let mut ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let exec = Executor::from_config(&CrawlConfig::default());
        let result = exec.run(&server, &a2_query(), 0, &mut state, &mut ingestor, &mut bus);
        // a2 matches 3 records at page size 1 → 3 pages, 3 rounds.
        assert_eq!(result.outcome.pages, 3);
        assert_eq!(result.outcome.new_records, 3);
        assert_eq!(bus.metrics().rounds(), 3);
        assert_eq!(bus.metrics().records(), 3);
        assert!(!result.newly_discovered.is_empty(), "decomposition feeds the frontier");
    }

    #[test]
    fn round_budget_stops_mid_query() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 1);
        let server = WebDbServer::new(t, spec);
        let mut state = state_for(&server);
        let mut ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let config = CrawlConfig::builder().max_rounds(2).build().unwrap();
        let exec = Executor::from_config(&config);
        let result = exec.run(&server, &a2_query(), 0, &mut state, &mut ingestor, &mut bus);
        assert_eq!(bus.metrics().rounds(), 2, "budget cuts pagination short");
        assert_eq!(result.outcome.pages, 2);
    }

    #[test]
    fn wire_reruns_are_cache_hits_in_the_event_stream() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 1);
        let server = WebDbServer::new(t, spec);
        let mut state = state_for(&server);
        let mut ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let config = CrawlConfig::builder().prober(ProberMode::Wire).build().unwrap();
        let exec = Executor::from_config(&config);
        let first = exec.run(&server, &a2_query(), 0, &mut state, &mut ingestor, &mut bus);
        assert_eq!(first.outcome.new_records, 3);
        assert_eq!(bus.metrics().page_cache_hits(), 0, "a cold cache renders every page");
        // A second worker re-running the same query hits the render cache on
        // all three pages — the wire bytes are identical, so the harvest is
        // too, and every round is still billed.
        let second = exec.run(&server, &a2_query(), 0, &mut state, &mut ingestor, &mut bus);
        assert_eq!(second.outcome.returned_records, 3);
        assert_eq!(second.outcome.new_records, 0, "all duplicates the second time");
        assert_eq!(bus.metrics().page_cache_hits(), 3);
        assert_eq!(bus.metrics().rounds(), 6, "cache hits do not discount rounds");
    }

    #[test]
    fn total_transient_failure_is_flagged_for_requeue() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(1));
        let mut state = state_for(&server);
        let mut ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let exec = Executor::from_config(&CrawlConfig::default());
        let result = exec.run(&server, &a2_query(), 0, &mut state, &mut ingestor, &mut bus);
        assert!(result.outcome.failed_transient, "zero pages + transient error");
        assert_eq!(result.outcome.pages, 0);
        assert!(bus.metrics().fault_streak() > 0, "the streak survives for supervisors");
    }

    #[test]
    fn retries_emit_backoff_and_recover() {
        let t = figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        let server = WebDbServer::new(t, spec).with_faults(FaultPolicy::every(1).up_to(2));
        let mut state = state_for(&server);
        let mut ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let config = CrawlConfig::builder().max_retries(3).build().unwrap();
        let exec = Executor::from_config(&config);
        let result = exec.run(&server, &a2_query(), 0, &mut state, &mut ingestor, &mut bus);
        assert_eq!(result.outcome.new_records, 3, "retries must not lose the page");
        assert!(bus.metrics().backoff_rounds() > 0, "waits between attempts are billed");
        assert_eq!(bus.metrics().fault_streak(), 0, "an intact page resets the streak");
    }
}
