//! Ingestor stage: record extraction into `DB_local`, frontier discovery,
//! and the incremental co-occurrence index behind conjunctive partners.
//!
//! This is the "harvest and decompose" half of the paper's loop (§2.5):
//! every record returned by a query is inserted into the local database and
//! decomposed into attribute values, which become candidates for future
//! queries. In conjunctive mode the ingestor additionally maintains a
//! per-value co-occurrence count so partner selection is an index lookup,
//! not a scan over every harvested record per query.

use crate::extract::{ExtractedPageRef, ExtractedRecord, ExtractedRecordRef};
use crate::state::{CandStatus, CrawlState};
use dwc_model::{AttrId, ValueId};
use std::collections::HashMap;

/// Incrementally maintained co-occurrence counts between values of
/// *different* attributes.
///
/// `counts[v][w]` is the number of harvested records containing both `v` and
/// `w` (each record counted once; values within a record are deduplicated,
/// matching [`crate::local::LocalDb`]'s stored form). Same-attribute pairs
/// are never recorded — conjunctive partners must come from other attributes.
#[derive(Debug, Default)]
pub struct CoOccurrenceIndex {
    enabled: bool,
    counts: HashMap<ValueId, HashMap<ValueId, u32>>,
}

impl CoOccurrenceIndex {
    /// An index that tracks pairs only when `enabled` (conjunctive mode);
    /// a disabled index costs nothing per ingested record.
    pub fn new(enabled: bool) -> Self {
        CoOccurrenceIndex { enabled, counts: HashMap::new() }
    }

    /// Whether the index records pairs at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one harvested record's cross-attribute pairs. `values` must
    /// be sorted and deduplicated (the form [`crate::local::LocalDb`] stores).
    pub fn observe_record(&mut self, state: &CrawlState, values: &[ValueId]) {
        if !self.enabled {
            return;
        }
        for (i, &a) in values.iter().enumerate() {
            let attr_a = state.vocab.attr_of(a);
            for &b in &values[i + 1..] {
                if state.vocab.attr_of(b) == attr_a {
                    continue;
                }
                *self.counts.entry(a).or_default().entry(b).or_insert(0) += 1;
                *self.counts.entry(b).or_default().entry(a).or_insert(0) += 1;
            }
        }
    }

    /// Rebuilds the index from every record already in `DB_local` (the
    /// resume path: checkpoints persist records, not derived indexes).
    pub fn rebuild(&mut self, state: &CrawlState) {
        self.counts.clear();
        if !self.enabled {
            return;
        }
        for rec in state.local.records() {
            self.observe_record(state, rec);
        }
    }

    /// How many records contain both `v` and `w` (zero when never seen
    /// together, or when they share an attribute).
    pub fn count(&self, v: ValueId, w: ValueId) -> u32 {
        self.counts.get(&v).and_then(|m| m.get(&w)).copied().unwrap_or(0)
    }

    /// The locally most co-occurring partner values of `v`, one per distinct
    /// attribute other than `v`'s (and each other's). Partners make the
    /// conjunction as unrestrictive as local knowledge allows — a popular
    /// co-value keeps the intersection large. Equivalent to
    /// [`best_partners_by_scan`] but served from the incremental index.
    pub fn best_partners(
        &self,
        state: &CrawlState,
        v: ValueId,
        want: usize,
    ) -> Vec<(String, String)> {
        if want == 0 {
            return Vec::new();
        }
        let ranked: Vec<(ValueId, u32)> = self
            .counts
            .get(&v)
            .map(|m| m.iter().map(|(&w, &c)| (w, c)).collect())
            .unwrap_or_default();
        rank_partners(state, v, ranked, want)
    }
}

/// Shared ranking tail of partner selection: order by co-occurrence count
/// (ties by id for determinism), take one per distinct attribute.
fn rank_partners(
    state: &CrawlState,
    v: ValueId,
    mut ranked: Vec<(ValueId, u32)>,
    want: usize,
) -> Vec<(String, String)> {
    ranked.sort_by_key(|&(w, c)| (std::cmp::Reverse(c), w.0));
    let my_attr = state.vocab.attr_of(v);
    let mut used_attrs = vec![my_attr];
    let mut out = Vec::with_capacity(want);
    for (w, _) in ranked {
        let attr = state.vocab.attr_of(w);
        if used_attrs.contains(&attr) {
            continue;
        }
        used_attrs.push(attr);
        out.push((state.attr_names[attr.0 as usize].clone(), state.vocab.value_str(w).to_owned()));
        if out.len() == want {
            break;
        }
    }
    out
}

/// Reference implementation of partner selection that scans every record in
/// `DB_local` per query (the pre-index behavior). Kept for the benchmark
/// and equivalence tests pitting it against [`CoOccurrenceIndex`].
pub fn best_partners_by_scan(state: &CrawlState, v: ValueId, want: usize) -> Vec<(String, String)> {
    if want == 0 {
        return Vec::new();
    }
    let my_attr = state.vocab.attr_of(v);
    let mut co_counts: HashMap<ValueId, u32> = HashMap::new();
    for rec in state.local.records() {
        if rec.binary_search(&v).is_err() {
            continue;
        }
        for &w in rec {
            if w != v && state.vocab.attr_of(w) != my_attr {
                *co_counts.entry(w).or_insert(0) += 1;
            }
        }
    }
    rank_partners(state, v, co_counts.into_iter().collect(), want)
}

/// Per-page ingest tallies returned by [`Ingestor::ingest_page`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PageIngest {
    /// Records returned on the page (including duplicates).
    pub returned: u64,
    /// Records new to `DB_local`.
    pub new: u64,
}

/// The ingest stage: inserts extracted records into `DB_local`, decomposes
/// them into candidates, and keeps the co-occurrence index current.
#[derive(Debug)]
pub struct Ingestor {
    co: CoOccurrenceIndex,
    /// Attribute-name resolution memo for the zero-copy path: wire pages
    /// repeat the same handful of names on every record, so resolve each
    /// spelling once per crawl instead of scanning the name table per field.
    attr_memo: Vec<(Box<str>, Option<AttrId>)>,
    /// Scratch `(attribute, field index)` pairs reused across
    /// [`Ingestor::ingest_record_ref`] calls.
    resolved_scratch: Vec<(AttrId, u32)>,
}

impl Ingestor {
    /// An ingestor; `track_cooccurrence` enables the conjunctive partner
    /// index (only conjunctive crawls pay its upkeep).
    pub fn new(track_cooccurrence: bool) -> Self {
        Ingestor {
            co: CoOccurrenceIndex::new(track_cooccurrence),
            attr_memo: Vec::new(),
            resolved_scratch: Vec::new(),
        }
    }

    /// The co-occurrence index (the planner reads partners from it).
    pub fn co_index(&self) -> &CoOccurrenceIndex {
        &self.co
    }

    /// Rebuilds derived indexes from restored state (the resume path).
    pub fn rebuild_from(&mut self, state: &CrawlState) {
        self.co.rebuild(state);
    }

    /// Inserts one extracted record into `DB_local`; returns `true` when new.
    /// Decomposes the record into candidate values (the "decompose" step):
    /// every value is pushed to `touched`, and values seen for the first
    /// time that can actually be queried are promoted to the frontier and
    /// pushed to `newly_discovered`.
    pub fn ingest_record(
        &mut self,
        state: &mut CrawlState,
        rec: &ExtractedRecord,
        touched: &mut Vec<ValueId>,
        newly_discovered: &mut Vec<ValueId>,
    ) -> bool {
        if state.local.contains_key(rec.key) {
            return false;
        }
        let mut values = Vec::with_capacity(rec.fields.len());
        for (attr_name, s) in &rec.fields {
            let Some(attr) = state.attr_by_name(attr_name) else { continue };
            let vid = state.intern(attr, s);
            values.push(vid);
        }
        self.finish_record(state, rec.key, values, touched, newly_discovered)
    }

    /// Zero-copy counterpart of [`Ingestor::ingest_record`]: the record's
    /// fields still borrow the wire buffer, attribute names resolve through
    /// the memo, and every value string is hashed exactly once via the
    /// vocabulary's batch path ([`crate::state::CrawlState::intern_page`]).
    /// Behavior (insertions, promotions, `touched`/`newly_discovered`) is
    /// identical to the owned path.
    pub fn ingest_record_ref(
        &mut self,
        state: &mut CrawlState,
        rec: &ExtractedRecordRef<'_>,
        touched: &mut Vec<ValueId>,
        newly_discovered: &mut Vec<ValueId>,
    ) -> bool {
        if state.local.contains_key(rec.key) {
            return false;
        }
        self.resolved_scratch.clear();
        for (i, (attr_name, _)) in rec.fields.iter().enumerate() {
            if let Some(attr) = self.attr_lookup(state, attr_name) {
                self.resolved_scratch.push((attr, i as u32));
            }
        }
        let mut values = Vec::with_capacity(self.resolved_scratch.len());
        state.intern_page(
            self.resolved_scratch
                .iter()
                .map(|&(attr, i)| (attr, rec.fields[i as usize].1.as_ref())),
            &mut values,
        );
        self.finish_record(state, rec.key, values, touched, newly_discovered)
    }

    /// Ingests every record of a borrowed page, returning the per-page
    /// tallies the executor reports in
    /// [`crate::events::CrawlEvent::PageFetched`].
    pub fn ingest_page(
        &mut self,
        state: &mut CrawlState,
        page: &ExtractedPageRef<'_>,
        touched: &mut Vec<ValueId>,
        newly_discovered: &mut Vec<ValueId>,
    ) -> PageIngest {
        let mut stats = PageIngest::default();
        for rec in &page.records {
            stats.returned += 1;
            if self.ingest_record_ref(state, rec, touched, newly_discovered) {
                stats.new += 1;
            }
        }
        stats
    }

    /// Resolves an attribute name through the memo, falling back to (and
    /// memoizing) a scan of the state's name table on first sight.
    fn attr_lookup(&mut self, state: &CrawlState, name: &str) -> Option<AttrId> {
        if let Some((_, id)) = self.attr_memo.iter().find(|(n, _)| &**n == name) {
            return *id;
        }
        let id = state.attr_by_name(name);
        self.attr_memo.push((name.into(), id));
        id
    }

    /// Shared tail of both ingest paths: candidate promotion, `DB_local`
    /// insertion, and the co-occurrence feed.
    fn finish_record(
        &mut self,
        state: &mut CrawlState,
        key: u64,
        values: Vec<ValueId>,
        touched: &mut Vec<ValueId>,
        newly_discovered: &mut Vec<ValueId>,
    ) -> bool {
        for &vid in &values {
            touched.push(vid);
            if state.status_of(vid) == CandStatus::Undiscovered && state.is_queriable(vid) {
                state.status[vid.index()] = CandStatus::Frontier;
                newly_discovered.push(vid);
            }
        }
        let before = state.local.num_records();
        let inserted = state.local.insert(key, values);
        if inserted && self.co.is_enabled() {
            if let Some(stored) = state.local.records_since(before).next() {
                let stored = stored.to_vec();
                self.co.observe_record(state, &stored);
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::AttrId;

    fn abc_state() -> CrawlState {
        CrawlState::new(vec!["A".into(), "B".into(), "C".into()], vec![true, true, true], 10)
    }

    fn record(key: u64, fields: &[(&str, &str)]) -> ExtractedRecord {
        ExtractedRecord {
            key,
            fields: fields.iter().map(|(a, v)| (a.to_string(), v.to_string())).collect(),
        }
    }

    #[test]
    fn ingest_inserts_and_discovers_frontier() {
        let mut state = abc_state();
        let mut ing = Ingestor::new(false);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        assert!(ing.ingest_record(
            &mut state,
            &record(1, &[("A", "a1"), ("B", "b1")]),
            &mut touched,
            &mut newly
        ));
        assert_eq!(state.local.num_records(), 1);
        assert_eq!(touched.len(), 2);
        assert_eq!(newly.len(), 2, "both values are queriable and new");
        assert!(newly.iter().all(|&v| state.status_of(v) == CandStatus::Frontier));
        // The same key again is a duplicate.
        assert!(!ing.ingest_record(
            &mut state,
            &record(1, &[("A", "a1")]),
            &mut touched,
            &mut newly
        ));
        assert_eq!(state.local.num_records(), 1);
    }

    #[test]
    fn unqueriable_values_are_not_promoted() {
        let mut state = CrawlState::new(vec!["A".into(), "B".into()], vec![true, false], 10);
        let mut ing = Ingestor::new(false);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        ing.ingest_record(
            &mut state,
            &record(1, &[("A", "a1"), ("B", "b1")]),
            &mut touched,
            &mut newly,
        );
        assert_eq!(newly.len(), 1, "only the queriable A value joins the frontier");
        assert_eq!(touched.len(), 2, "but both values' statistics were touched");
    }

    #[test]
    fn unknown_attributes_are_skipped() {
        let mut state = abc_state();
        let mut ing = Ingestor::new(false);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        assert!(ing.ingest_record(
            &mut state,
            &record(1, &[("Nope", "x"), ("A", "a1")]),
            &mut touched,
            &mut newly
        ));
        assert_eq!(state.vocab.len(), 1, "the unknown attribute interned nothing");
    }

    #[test]
    fn incremental_index_matches_full_scan() {
        let mut state = abc_state();
        let mut ing = Ingestor::new(true);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        let recs = [
            record(1, &[("A", "a1"), ("B", "b1"), ("C", "c1")]),
            record(2, &[("A", "a1"), ("B", "b2"), ("C", "c1")]),
            record(3, &[("A", "a2"), ("B", "b1"), ("C", "c2")]),
            record(4, &[("A", "a1"), ("B", "b1"), ("C", "c2")]),
            record(5, &[("A", "a3"), ("B", "b3")]),
        ];
        for r in &recs {
            ing.ingest_record(&mut state, r, &mut touched, &mut newly);
        }
        for v in state.vocab.iter_ids() {
            for want in 0..3 {
                assert_eq!(
                    ing.co_index().best_partners(&state, v, want),
                    best_partners_by_scan(&state, v, want),
                    "partners for {v:?} (want {want}) must match the scan"
                );
            }
        }
        let a1 = state.vocab.intern(AttrId(0), "a1");
        let b1 = state.vocab.intern(AttrId(1), "b1");
        assert_eq!(ing.co_index().count(a1, b1), 2, "records 1 and 4");
    }

    #[test]
    fn zero_copy_ingest_matches_the_owned_path() {
        use crate::extract::{ExtractedPage, ExtractedPageRef};
        let recs = vec![
            record(1, &[("A", "a1"), ("B", "b1"), ("Nope", "x")]),
            record(2, &[("A", "a1"), ("C", "c1")]),
            record(1, &[("A", "dup")]),
            record(3, &[("B", "b1"), ("C", "c2")]),
        ];
        let page =
            ExtractedPage { page_index: 0, total_matches: None, has_more: false, records: recs };

        // Owned baseline.
        let mut st_owned = abc_state();
        let mut ing_owned = Ingestor::new(true);
        let (mut touched_o, mut newly_o) = (Vec::new(), Vec::new());
        let mut new_o = 0u64;
        for rec in &page.records {
            new_o += u64::from(ing_owned.ingest_record(
                &mut st_owned,
                rec,
                &mut touched_o,
                &mut newly_o,
            ));
        }

        // Zero-copy path over the borrowed view of the same page.
        let mut st_ref = abc_state();
        let mut ing_ref = Ingestor::new(true);
        let (mut touched_r, mut newly_r) = (Vec::new(), Vec::new());
        let view = ExtractedPageRef::borrowed(&page);
        let stats = ing_ref.ingest_page(&mut st_ref, &view, &mut touched_r, &mut newly_r);

        assert_eq!(stats, PageIngest { returned: 4, new: new_o });
        assert_eq!(touched_r, touched_o);
        assert_eq!(newly_r, newly_o);
        assert_eq!(st_ref.vocab.len(), st_owned.vocab.len());
        assert_eq!(st_ref.local.num_records(), st_owned.local.num_records());
        for v in st_owned.vocab.iter_ids() {
            assert_eq!(st_ref.status_of(v), st_owned.status_of(v), "status of {v:?}");
            assert_eq!(st_ref.vocab.value_str(v), st_owned.vocab.value_str(v));
            assert_eq!(
                ing_ref.co_index().best_partners(&st_ref, v, 2),
                ing_owned.co_index().best_partners(&st_owned, v, 2)
            );
        }
    }

    #[test]
    fn rebuild_recovers_the_index_from_state() {
        let mut state = abc_state();
        let mut ing = Ingestor::new(true);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        ing.ingest_record(
            &mut state,
            &record(1, &[("A", "a1"), ("B", "b1")]),
            &mut touched,
            &mut newly,
        );
        ing.ingest_record(
            &mut state,
            &record(2, &[("A", "a1"), ("B", "b2")]),
            &mut touched,
            &mut newly,
        );
        // A fresh ingestor (the resume path) rebuilds to the same counts.
        let mut fresh = Ingestor::new(true);
        fresh.rebuild_from(&state);
        for v in state.vocab.iter_ids() {
            assert_eq!(
                fresh.co_index().best_partners(&state, v, 2),
                ing.co_index().best_partners(&state, v, 2)
            );
        }
    }

    #[test]
    fn same_attribute_pairs_are_never_counted() {
        let mut state = abc_state();
        let mut ing = Ingestor::new(true);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        // A record with two A values (multi-valued field).
        ing.ingest_record(
            &mut state,
            &record(1, &[("A", "a1"), ("A", "a2"), ("B", "b1")]),
            &mut touched,
            &mut newly,
        );
        let a1 = state.vocab.intern(AttrId(0), "a1");
        let a2 = state.vocab.intern(AttrId(0), "a2");
        assert_eq!(ing.co_index().count(a1, a2), 0);
        let partners = ing.co_index().best_partners(&state, a1, 2);
        assert_eq!(partners, vec![("B".to_string(), "b1".to_string())]);
    }

    #[test]
    fn disabled_index_returns_nothing() {
        let mut state = abc_state();
        let mut ing = Ingestor::new(false);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        ing.ingest_record(
            &mut state,
            &record(1, &[("A", "a1"), ("B", "b1")]),
            &mut touched,
            &mut newly,
        );
        let a1 = state.vocab.intern(AttrId(0), "a1");
        assert!(!ing.co_index().is_enabled());
        assert!(ing.co_index().best_partners(&state, a1, 2).is_empty());
    }
}
