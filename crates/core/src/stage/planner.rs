//! Planner stage: policy-driven candidate selection and query formulation.
//!
//! The planner owns the [`SelectionPolicy`] (whose internal `L_to-query`
//! organization *is* the policy — queue, stack, heap, …) and the pending
//! seed-group queue for conjunctive bootstrapping. Each [`Planner::plan`]
//! call produces the next query to issue: a pending seed group if any,
//! otherwise the policy's selected candidate formulated per the configured
//! [`QueryMode`] (structured form fill, keyword box, or a conjunctive query
//! whose partner values come from the ingestor's co-occurrence index).

use crate::config::QueryMode;
use crate::events::{CrawlEvent, EventBus};
use crate::policy::SelectionPolicy;
use crate::stage::ingestor::Ingestor;
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use dwc_server::Query;

/// One planned query, ready for the executor.
#[derive(Debug)]
pub struct PlannedQuery {
    /// The formulated query.
    pub query: Query,
    /// The selected candidate, when the query came from the policy (`None`
    /// for seed-group queries, which bill a query but answer no candidate).
    pub candidate: Option<ValueId>,
}

/// The plan stage: wraps the selection policy and formulates queries.
pub struct Planner {
    policy: Box<dyn SelectionPolicy>,
    query_mode: QueryMode,
    /// Whole-query seed groups for conjunctive mode, issued before the
    /// policy takes over.
    pending_seed_groups: Vec<Vec<(String, String)>>,
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("policy", &self.policy.name())
            .field("query_mode", &self.query_mode)
            .field("pending_seed_groups", &self.pending_seed_groups.len())
            .finish()
    }
}

impl Planner {
    /// A planner driving `policy` in `query_mode`.
    pub fn new(policy: Box<dyn SelectionPolicy>, query_mode: QueryMode) -> Self {
        Planner { policy, query_mode, pending_seed_groups: Vec::new() }
    }

    /// Initializes the policy over fresh state.
    pub fn init(&mut self, state: &mut CrawlState) {
        self.policy.init(state);
    }

    /// Rebuilds the policy's internals over restored state (the resume path).
    pub fn resume(&mut self, state: &mut CrawlState) {
        self.policy.resume(state);
    }

    /// Queues a whole seed *query* — a group of `(attribute, value)` pairs
    /// issued as one conjunctive query before the policy takes over.
    pub fn add_seed_group(&mut self, pairs: &[(&str, &str)]) {
        self.pending_seed_groups
            .push(pairs.iter().map(|(a, v)| (a.to_string(), v.to_string())).collect());
    }

    /// Adds a seed attribute value to the frontier. Returns `false` when the
    /// attribute is unknown or not queriable (the seed is useless then).
    pub fn add_seed(&mut self, state: &mut CrawlState, attr_name: &str, value: &str) -> bool {
        let Some(attr) = state.attr_by_name(attr_name) else { return false };
        if !state.keyword_mode && !state.attr_queriable[attr.0 as usize] {
            return false;
        }
        let v = state.intern(attr, value);
        if state.status_of(v) == CandStatus::Undiscovered {
            state.status[v.index()] = CandStatus::Frontier;
            self.policy.on_discovered(state, v);
        }
        true
    }

    /// Announces a value newly promoted to the frontier (by ingestion or a
    /// requeue) to the policy.
    pub fn notify_discovered(&mut self, state: &CrawlState, v: ValueId) {
        self.policy.on_discovered(state, v);
    }

    /// Reports a candidate's completed query back to the policy.
    pub fn on_query_done(&mut self, state: &CrawlState, v: ValueId, outcome: &QueryOutcome) {
        self.policy.on_query_done(state, v, outcome);
    }

    /// Plans the next query: a pending seed group if any, otherwise the
    /// policy's selection formulated per the query mode. The chosen
    /// candidate moves to `L_queried` here, so the checkpointed state always
    /// reflects in-flight queries. Returns `None` when seeds and frontier
    /// are both exhausted.
    pub fn plan(
        &mut self,
        state: &mut CrawlState,
        ingestor: &Ingestor,
        bus: &mut EventBus,
    ) -> Option<PlannedQuery> {
        if let Some(group) = self.pending_seed_groups.pop() {
            bus.emit(CrawlEvent::QueryPlanned { candidate: None });
            return Some(PlannedQuery { query: Query::Conjunctive(group), candidate: None });
        }
        let v = self.policy.select(state)?;
        state.status[v.index()] = CandStatus::Queried;
        state.queried.push(v);
        let value_str = state.vocab.value_str(v).to_owned();
        let attr = state.vocab.attr_of(v);
        let attr_name = state.attr_names[attr.0 as usize].clone();
        let query = match self.query_mode {
            QueryMode::Structured => Query::ByString { attr: attr_name, value: value_str },
            QueryMode::Keyword => Query::Keyword(value_str),
            QueryMode::Conjunctive { arity } => {
                let mut pairs = vec![(attr_name, value_str)];
                pairs.extend(ingestor.co_index().best_partners(state, v, arity.saturating_sub(1)));
                Query::Conjunctive(pairs)
            }
        };
        bus.emit(CrawlEvent::QueryPlanned { candidate: Some(v.0) });
        Some(PlannedQuery { query, candidate: Some(v) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn seeded() -> (CrawlState, Planner) {
        let mut state = CrawlState::new(vec!["A".into(), "B".into()], vec![true, true], 10);
        let mut planner = Planner::new(PolicyKind::Bfs.build(), QueryMode::Structured);
        planner.init(&mut state);
        assert!(planner.add_seed(&mut state, "A", "a2"));
        (state, planner)
    }

    #[test]
    fn plan_moves_the_candidate_to_queried() {
        let (mut state, mut planner) = seeded();
        let ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let planned = planner.plan(&mut state, &ingestor, &mut bus).unwrap();
        let v = planned.candidate.unwrap();
        assert_eq!(state.status_of(v), CandStatus::Queried);
        assert_eq!(state.queried, vec![v]);
        assert_eq!(planned.query, Query::ByString { attr: "A".into(), value: "a2".into() });
        // Frontier exhausted now.
        assert!(planner.plan(&mut state, &ingestor, &mut bus).is_none());
    }

    #[test]
    fn seed_groups_are_planned_before_the_policy() {
        let (mut state, mut planner) = seeded();
        planner.add_seed_group(&[("A", "a1"), ("B", "b1")]);
        let ingestor = Ingestor::new(false);
        let mut bus = EventBus::new();
        let first = planner.plan(&mut state, &ingestor, &mut bus).unwrap();
        assert!(first.candidate.is_none(), "seed groups answer no candidate");
        assert_eq!(
            first.query,
            Query::Conjunctive(vec![
                ("A".to_string(), "a1".to_string()),
                ("B".to_string(), "b1".to_string())
            ])
        );
        let second = planner.plan(&mut state, &ingestor, &mut bus).unwrap();
        assert!(second.candidate.is_some(), "then the policy takes over");
    }

    #[test]
    fn bad_seed_is_rejected() {
        let mut state = CrawlState::new(vec!["A".into(), "B".into()], vec![true, false], 10);
        let mut planner = Planner::new(PolicyKind::Bfs.build(), QueryMode::Structured);
        planner.init(&mut state);
        assert!(!planner.add_seed(&mut state, "Nope", "x"), "unknown attribute");
        assert!(!planner.add_seed(&mut state, "B", "b1"), "unqueriable attribute");
        assert!(planner.add_seed(&mut state, "A", "a1"));
    }

    #[test]
    fn conjunctive_plans_pull_partners_from_the_index() {
        use crate::extract::ExtractedRecord;
        let mut state = CrawlState::new(vec!["A".into(), "B".into()], vec![true, true], 10);
        let mut planner =
            Planner::new(PolicyKind::Bfs.build(), QueryMode::Conjunctive { arity: 2 });
        planner.init(&mut state);
        let mut ingestor = Ingestor::new(true);
        let (mut touched, mut newly) = (Vec::new(), Vec::new());
        ingestor.ingest_record(
            &mut state,
            &ExtractedRecord {
                key: 1,
                fields: vec![("A".into(), "a1".into()), ("B".into(), "b1".into())],
            },
            &mut touched,
            &mut newly,
        );
        for &v in &newly {
            planner.notify_discovered(&state, v);
        }
        let mut bus = EventBus::new();
        let planned = planner.plan(&mut state, &ingestor, &mut bus).unwrap();
        match planned.query {
            Query::Conjunctive(pairs) => {
                assert_eq!(pairs.len(), 2, "arity-2 plan carries one partner");
                assert_eq!(pairs[0], ("A".to_string(), "a1".to_string()));
                assert_eq!(pairs[1], ("B".to_string(), "b1".to_string()));
            }
            other => panic!("expected a conjunctive query, got {other:?}"),
        }
    }
}
