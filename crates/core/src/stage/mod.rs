//! The staged crawl engine: Planner → Executor → Ingestor.
//!
//! The paper's crawl loop is an explicit pipeline — select a candidate
//! (§3), issue the query, fetch paginated pages under the round-cost model
//! (Definition 2.3), extract records and decompose them into new candidates.
//! Each stage is its own unit-testable module here, and
//! [`crate::Crawler`] is just the driver that wires them together over the
//! shared [`crate::state::CrawlState`] and the
//! [event bus](crate::events::EventBus):
//!
//! * [`Planner`] — policy selection and query formulation, including
//!   conjunctive partner choice;
//! * [`Executor`] — pagination, retries, abortion, and round billing;
//! * [`Ingestor`] — record extraction into `DB_local`, frontier discovery,
//!   and the incremental co-occurrence index behind conjunctive partners.
//!
//! Stages never keep counters: every observable fact is emitted as a
//! [`crate::events::CrawlEvent`], and the driver's
//! [`crate::metrics::MetricsRegistry`] folds the stream into reports.

pub mod executor;
pub mod ingestor;
pub mod planner;

pub use executor::{ExecResult, Executor};
pub use ingestor::{best_partners_by_scan, CoOccurrenceIndex, Ingestor, PageIngest};
pub use planner::{PlannedQuery, Planner};
