//! Fleet crawling on a bounded work-stealing scheduler.
//!
//! The paper closes with "our future work also includes the implementation
//! and deployment of a real world product database crawler" — a crawler that
//! faces *many* crawl jobs at once under one global communication budget
//! (e.g. a comparison-shopping engine harvesting every DVD store it knows).
//! This module provides that deployment layer on top of [`crate::Crawler`]:
//!
//! * each job is a **parked state machine** around its own crawler (own
//!   policy, own vocabulary, own `DB_local`); between budget slices the
//!   crawler sits in a coordinator-owned slot, owning no thread;
//! * slices are multiplexed onto a bounded [`Pool`] of
//!   [`FleetConfig::workers`] threads (default `available_parallelism`) —
//!   a global injector queue plus per-worker deques with sibling stealing
//!   ([`crate::sched`]), so a 10k-job fleet runs on 8 threads instead of
//!   10k threads × ~8 MB of stack, and one slow source never strands the
//!   queue behind it;
//! * jobs are generic over [`DataSource`], so a fleet can mix distinct
//!   servers with *shared* ones — pass `Arc<WebDbServer>` clones and N
//!   jobs probe the same source concurrently, every page request landing
//!   in the same atomic round counter (partitioned crawling of one large
//!   source, e.g. different seed regions of the same store);
//! * the global budget is handed out in *slices*, split across jobs by an
//!   [`AllocationStrategy`]: evenly, or proportionally to each job's
//!   observed recent harvest rate — the fleet-level analogue of per-query
//!   selection (spend the next rounds where they buy the most new records);
//!   grants in a cycle are clamped to the remaining global budget;
//! * jobs are billed in **elapsed rounds** — page requests plus retry
//!   backoff waits ([`crate::RetryPolicy`]) — so a job stuck retrying a
//!   flaky source drains its own budget, not its siblings';
//! * a job whose frontier dries up stops drawing budget, and under
//!   proportional allocation a saturating job gradually loses budget to
//!   fresher ones;
//! * every scheduling fact is observable: the coordinator records
//!   [`CrawlEvent::SliceScheduled`] / [`CrawlEvent::SliceCompleted`] on a
//!   fleet-level [`MetricsRegistry`], and [`FleetReport::scheduler`] is
//!   derived from that stream ([`MetricsRegistry::scheduler_stats`]).
//!
//! With `workers = 1` the pool drains slices strictly in submission order
//! and the coordinator folds outcomes in that same order, so a fixed-seed
//! fleet run is bit-for-bit reproducible, event stream included.
//!
//! # Supervision
//!
//! [`run_fleet_supervised`] adds crash safety on top (for `Clone` source
//! handles, which is what real fleets hold — `Arc<WebDbServer>` clones or
//! fault-injection wrappers):
//!
//! * every slice runs under [`std::panic::catch_unwind`] — isolation is
//!   per *slice*, not per thread, so a panicking job never takes a pool
//!   worker (or its queued siblings) down with it; the supervisor rebuilds
//!   the victim from its last persisted checkpoint
//!   ([`CrawlConfig::checkpoint_store`]) — completed rounds are not
//!   re-billed, at most one checkpoint interval of work is repeated;
//! * a job that panics more than [`FleetConfig::max_restarts`] times is
//!   abandoned with [`StopReason::WorkerFailed`] instead of wedging the
//!   fleet;
//! * each job runs behind a per-source [`CircuitBreaker`]: a job whose
//!   consecutive-failure streak reaches [`BreakerConfig::trip_after`] is
//!   paused *by not being scheduled* — no thread blocks on it — its budget
//!   flows to healthy jobs, and after the cooldown a half-open probe slice
//!   decides between recovery and another pause;
//! * jobs whose retry policy was left on the fail-fast
//!   [`RetryPolicy::default`] get [`FleetConfig::default_retry`]
//!   substituted, so a fleet never hammers a flaky source without backoff
//!   by accident;
//! * every supervision fact — breaker phase transition, worker restart,
//!   abandonment — is recorded as a [`CrawlEvent`] on a per-job
//!   [`MetricsRegistry`], and [`FleetReport::health`] is *derived* from
//!   those streams ([`MetricsRegistry::job_health`]); the supervisor keeps
//!   no tallies of its own.
//!
//! The original one-OS-thread-per-job engine survives as
//! [`run_fleet_thread_per_job`], the A/B baseline the `fleet_sched` bench
//! gate measures the pool against.

use crate::checkpoint::Checkpoint;
use crate::config::{ConfigError, RetryPolicy};
use crate::crawler::{CrawlConfig, CrawlReport, Crawler, StopReason};
use crate::events::CrawlEvent;
use crate::health::{BreakerConfig, CircuitBreaker, JobHealth};
use crate::metrics::MetricsRegistry;
use crate::policy::PolicyKind;
use crate::sched::{Pool, SchedulerStats, TaskCtx};
use crate::source::DataSource;
use crate::store::CheckpointStore;
use crate::tenant::{validate_tenants, Tenant, TenantId, UsageLedger};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// How the global round budget is divided across jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Every active job gets the same share of every slice.
    Even,
    /// Each slice is divided proportionally to the jobs' mean normalized
    /// harvest rates over their recent queries (floored at 5% so a job is
    /// never starved before it can prove itself).
    HarvestProportional,
    /// Deficit round-robin over tenant weights ([`FleetConfig::tenants`]):
    /// each slice is split across the *tenants* with active jobs in exact
    /// weight proportion (largest-remainder rounding, so grants always sum
    /// to the slice), clamped to each tenant's remaining
    /// [`Tenant::round_quota`]; rounds a tenant was entitled to but not
    /// granted carry over as a deficit, and rounds freed by quota clamping
    /// are redistributed to tenants with headroom. Within a tenant the
    /// grant is split evenly over its jobs, rotating the remainder. With an
    /// empty registry every job is its own implicit weight-1 tenant.
    WeightedFair,
}

impl AllocationStrategy {
    /// Builds the stateful [`Allocator`] implementing this strategy. Both
    /// fleet engines construct exactly one allocator per run and call it
    /// once per cycle, which is what keeps their grant sequences identical.
    pub fn build_allocator(&self) -> Box<dyn Allocator> {
        match self {
            AllocationStrategy::Even => Box::new(EvenAllocator),
            AllocationStrategy::HarvestProportional => Box::new(HarvestAllocator),
            AllocationStrategy::WeightedFair => Box::new(WeightedFairAllocator::default()),
        }
    }
}

/// One crawl job of the fleet.
///
/// `S` is any [`DataSource`] handle a pool worker can own while the job's
/// slice runs: a `WebDbServer` (exclusive), an `Arc<WebDbServer>` (shared
/// with other jobs), or a [`crate::FaultySource`]-wrapped source.
pub struct FleetJob<S: DataSource> {
    /// The target source handle.
    pub source: S,
    /// Selection policy for this job.
    pub policy: PolicyKind,
    /// Seed values (attribute name, value string). Ignored when `resume`
    /// is set — a resumed crawl re-enters its persisted frontier instead.
    pub seeds: Vec<(String, String)>,
    /// Per-job config template (budgets are driven by the fleet; leave
    /// `max_rounds` unset).
    pub config: CrawlConfig,
    /// Start from this checkpoint instead of the seeds (`dwc resume
    /// --workers` routes a resumed crawl through a one-job fleet this way).
    /// The checkpointed rounds count against [`FleetConfig::total_rounds`].
    pub resume: Option<Checkpoint>,
    /// The tenant this job runs (and is billed) under. Must name an entry
    /// of [`FleetConfig::tenants`] when the registry is non-empty; must be
    /// `None` when the fleet is tenant-blind (empty registry).
    pub tenant: Option<TenantId>,
}

/// Fleet-level configuration. Prefer [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total elapsed rounds across all jobs (requests + backoff waits).
    pub total_rounds: u64,
    /// Rounds distributed per allocation slice.
    pub slice: u64,
    /// Budget split strategy.
    pub allocation: AllocationStrategy,
    /// Pool worker threads. `None` (the default) resolves to
    /// `std::thread::available_parallelism()`; the resolved count is capped
    /// at the job count (idle workers buy nothing). `Some(0)` is rejected
    /// by the builder.
    pub workers: Option<usize>,
    /// Retry schedule substituted into any job whose config still carries
    /// the fail-fast [`RetryPolicy::default`] (`max_retries: 0`). Defaults
    /// to 4 retries — a fleet-scale crawl against sources that can throttle
    /// should never fail fast by accident. A job that *wants* to fail fast
    /// must say so with a non-default schedule (e.g. `backoff_cap: 63`).
    pub default_retry: RetryPolicy,
    /// Slice restarts per job before the job is abandoned with
    /// [`StopReason::WorkerFailed`] (supervised fleets).
    pub max_restarts: u32,
    /// Per-source circuit-breaker thresholds (supervised fleets).
    pub breaker: BreakerConfig,
    /// The tenant registry. Empty (the default) means tenant-blind: no
    /// quotas, no weighted fairness, no per-tenant metering — exactly the
    /// pre-tenancy engine. Non-empty means every job must name one of
    /// these tenants.
    pub tenants: Vec<Tenant>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            total_rounds: 10_000,
            slice: 500,
            allocation: AllocationStrategy::Even,
            workers: None,
            default_retry: RetryPolicy::retries(4),
            max_restarts: 3,
            breaker: BreakerConfig::default(),
            tenants: Vec::new(),
        }
    }
}

impl FleetConfig {
    /// Starts building a validated configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder { config: FleetConfig::default() }
    }

    /// The worker-thread count this configuration resolves to for a fleet
    /// of `jobs` jobs: the configured [`FleetConfig::workers`] (or
    /// `available_parallelism` when unset), capped at the job count,
    /// floored at 1.
    pub fn resolved_workers(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.workers.unwrap_or(hw).min(jobs.max(1)).max(1)
    }
}

/// Builder for [`FleetConfig`]; see [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the global round budget. Must be positive.
    pub fn total_rounds(mut self, rounds: u64) -> Self {
        self.config.total_rounds = rounds;
        self
    }

    /// Sets the per-slice grant size. Must be positive.
    pub fn slice(mut self, slice: u64) -> Self {
        self.config.slice = slice;
        self
    }

    /// Sets the budget split strategy.
    pub fn allocation(mut self, allocation: AllocationStrategy) -> Self {
        self.config.allocation = allocation;
        self
    }

    /// Sets the pool worker-thread count. Must be positive; leave unset for
    /// `available_parallelism`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// Sets the retry schedule substituted into jobs left on
    /// [`RetryPolicy::default`].
    pub fn default_retry(mut self, retry: RetryPolicy) -> Self {
        self.config.default_retry = retry;
        self
    }

    /// Sets slice restarts per job before abandonment.
    pub fn max_restarts(mut self, restarts: u32) -> Self {
        self.config.max_restarts = restarts;
        self
    }

    /// Sets the per-source circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Sets the tenant registry. Validated at [`FleetConfigBuilder::build`]:
    /// zero weights, zero quotas, zero-burst rate limits, and duplicate ids
    /// are all rejected.
    pub fn tenants(mut self, tenants: Vec<Tenant>) -> Self {
        self.config.tenants = tenants;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetConfig, ConfigError> {
        if self.config.total_rounds == 0 {
            return Err(ConfigError::ZeroBudget("total_rounds"));
        }
        if self.config.slice == 0 {
            return Err(ConfigError::ZeroBudget("slice"));
        }
        if self.config.workers == Some(0) {
            return Err(ConfigError::ZeroBudget("workers"));
        }
        validate_tenants(&self.config.tenants)?;
        Ok(self.config)
    }
}

/// Validates a fleet's jobs against its tenant registry: with a non-empty
/// registry every job must name a known tenant; with an empty registry
/// no job may name one. The engines assert this; callers that want a
/// recoverable error (the CLI, [`FleetController::attach`]) check first.
pub fn validate_fleet_jobs<S: DataSource>(
    jobs: &[FleetJob<S>],
    config: &FleetConfig,
) -> Result<(), ConfigError> {
    for job in jobs {
        validate_job_tenant(job.tenant, &config.tenants)?;
    }
    Ok(())
}

/// The single-job core of [`validate_fleet_jobs`].
fn validate_job_tenant(tenant: Option<TenantId>, registry: &[Tenant]) -> Result<(), ConfigError> {
    match tenant {
        Some(id) if !registry.iter().any(|t| t.id == id) => Err(ConfigError::UnknownTenant(id.0)),
        None if !registry.is_empty() => Err(ConfigError::MissingTenant),
        _ => Ok(()),
    }
}

/// Result of a fleet crawl: one report per job, in input order.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job crawl reports.
    pub sources: Vec<CrawlReport>,
    /// Total elapsed rounds actually spent across the fleet.
    pub total_rounds: u64,
    /// Per-job fault-tolerance counters, in input order. All-zero for
    /// unsupervised fleets ([`run_fleet`]).
    pub health: Vec<JobHealth>,
    /// Scheduler counters, derived from the fleet-level
    /// [`CrawlEvent::SliceScheduled`] / [`CrawlEvent::SliceCompleted`]
    /// stream. All-zero with `workers = 0` for the thread-per-job baseline
    /// ([`run_fleet_thread_per_job`]), which schedules no slices on a pool.
    pub scheduler: SchedulerStats,
    /// Per-tenant usage ledgers, sorted by tenant id, derived by folding
    /// the fleet event stream ([`MetricsRegistry::usage_ledgers`]). Empty
    /// for tenant-blind fleets. The `rounds` fields sum exactly to
    /// [`FleetReport::total_rounds`] when every job is tenanted.
    pub usage: Vec<(TenantId, UsageLedger)>,
    /// The fleet-level event stream the scheduler and usage sections are
    /// folds of — replaying it through [`MetricsRegistry`] reproduces both
    /// bit-for-bit ([`crate::metrics::replay_usage`]).
    pub events: Vec<CrawlEvent>,
}

impl FleetReport {
    /// Total records harvested across all jobs.
    pub fn total_records(&self) -> u64 {
        self.sources.iter().map(|r| r.records).sum()
    }

    /// Total circuit-breaker trips across all jobs.
    pub fn breaker_trips(&self) -> u64 {
        self.health.iter().map(|h| h.breaker_trips).sum()
    }

    /// Total circuit-breaker recoveries across all jobs.
    pub fn breaker_recoveries(&self) -> u64 {
        self.health.iter().map(|h| h.breaker_recoveries).sum()
    }

    /// Total worker restarts across all jobs.
    pub fn worker_restarts(&self) -> u64 {
        self.health.iter().map(|h| u64::from(h.worker_restarts)).sum()
    }

    fn empty(workers: u32) -> FleetReport {
        FleetReport {
            sources: Vec::new(),
            total_rounds: 0,
            health: Vec::new(),
            scheduler: SchedulerStats { workers, ..SchedulerStats::default() },
            usage: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// One allocation cycle's inputs, handed to an [`Allocator`] by both fleet
/// engines. Job-indexed slices (`rates`, `tenant_of`) cover *all* jobs; the
/// allocator must only grant to indices listed in `active`.
pub struct AllocCycle<'a> {
    /// Indices of schedulable jobs: not done, breaker closed, tenant not
    /// quota-parked.
    pub active: &'a [usize],
    /// Per-job recent normalized harvest rates.
    pub rates: &'a [f64],
    /// Rounds left in the global budget; grants must never sum past it.
    pub remaining: u64,
    /// Configured per-cycle slice size ([`FleetConfig::slice`]).
    pub slice: u64,
    /// Per-job tenant slot: an index into `tenants`, `None` for
    /// tenant-blind jobs.
    pub tenant_of: &'a [Option<usize>],
    /// The tenant registry ([`FleetConfig::tenants`]); may be empty.
    pub tenants: &'a [Tenant],
    /// Rounds billed so far per tenant slot (for quota clamping), indexed
    /// like `tenants`.
    pub tenant_used: &'a [u64],
}

impl AllocCycle<'_> {
    /// The rounds actually divisible this cycle: one slice, clamped to the
    /// remaining global budget.
    fn cycle_slice(&self) -> u64 {
        self.remaining.min(self.slice)
    }
}

/// Splits one slice of the remaining budget across the active jobs,
/// returning `(job index, grant)` pairs whose grants never sum past the
/// slice (and therefore never past the remaining global budget).
///
/// Allocators may be stateful (deficit counters, rotation cursors). Both
/// the pooled engine and the thread-per-job baseline construct exactly one
/// allocator per run and call it once per cycle in the same sequence,
/// which is what makes their grant sequences — and hence their reports on
/// deterministic sources — identical.
pub trait Allocator {
    /// Computes this cycle's grants.
    fn allocate(&mut self, cycle: &AllocCycle<'_>) -> Vec<(usize, u64)>;
}

/// [`AllocationStrategy::Even`]: every active job gets the same share of
/// every slice (`slice / active`, floored at one round), clamped in job
/// order so the cycle never overspends the slice.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenAllocator;

impl Allocator for EvenAllocator {
    fn allocate(&mut self, cycle: &AllocCycle<'_>) -> Vec<(usize, u64)> {
        if cycle.active.is_empty() || cycle.remaining == 0 {
            return Vec::new();
        }
        let slice = cycle.cycle_slice();
        let each = (slice / cycle.active.len() as u64).max(1);
        clamp_shares(cycle.active, cycle.active.iter().map(|_| each), slice)
    }
}

/// [`AllocationStrategy::HarvestProportional`]: each slice is divided
/// proportionally to the jobs' recent harvest rates, floored at 5% so a
/// job is never starved before it can prove itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct HarvestAllocator;

impl Allocator for HarvestAllocator {
    fn allocate(&mut self, cycle: &AllocCycle<'_>) -> Vec<(usize, u64)> {
        if cycle.active.is_empty() || cycle.remaining == 0 {
            return Vec::new();
        }
        let slice = cycle.cycle_slice();
        const FLOOR: f64 = 0.05;
        let weights: Vec<f64> = cycle.active.iter().map(|&i| cycle.rates[i].max(FLOOR)).collect();
        let total: f64 = weights.iter().sum();
        let shares = weights.iter().map(|w| (((w / total) * slice as f64).round() as u64).max(1));
        clamp_shares(cycle.active, shares, slice)
    }
}

/// Sequentially clamps per-job shares to the slice: the shared tail of the
/// pre-tenancy `allocate()`, byte-identical so `Even` and
/// `HarvestProportional` fleets reproduce pre-refactor grant sequences.
fn clamp_shares(
    active: &[usize],
    shares: impl Iterator<Item = u64>,
    slice: u64,
) -> Vec<(usize, u64)> {
    let mut cycle_left = slice;
    active
        .iter()
        .zip(shares)
        .filter_map(|(&i, share)| {
            let grant = share.min(cycle_left);
            cycle_left -= grant;
            (grant > 0).then_some((i, grant))
        })
        .collect()
}

/// [`AllocationStrategy::WeightedFair`]: deficit round-robin over tenant
/// weights.
///
/// Per cycle: tenants with active jobs are entitled to weight-proportional
/// shares of the slice (largest-remainder rounding — entitlements sum to
/// the slice *exactly*); each tenant's grant is its entitlement plus any
/// carried deficit, clamped to its quota headroom and the rounds left in
/// the cycle; rounds freed by quota clamping are redistributed to tenants
/// with headroom; whatever a tenant was owed but not granted carries over
/// as a deficit (capped at one slice, so a parked tenant cannot hoard an
/// unbounded claim). The tenant's grant is then split evenly over its
/// active jobs, rotating which jobs absorb the remainder so no job is
/// systematically favored.
#[derive(Debug, Clone, Default)]
pub struct WeightedFairAllocator {
    /// Rounds owed per tenant slot (entitled but not granted), carried
    /// across cycles. Indexed by tenant slot — or by job index when the
    /// registry is empty and every job is its own implicit tenant.
    deficits: Vec<u64>,
    /// Per-slot rotation cursor for intra-tenant remainder placement.
    cursors: Vec<usize>,
}

impl Allocator for WeightedFairAllocator {
    fn allocate(&mut self, cycle: &AllocCycle<'_>) -> Vec<(usize, u64)> {
        if cycle.active.is_empty() || cycle.remaining == 0 {
            return Vec::new();
        }
        let slice = cycle.cycle_slice();
        // Group active jobs by tenant slot, in registry order. With an
        // empty registry every job is its own implicit weight-1 tenant.
        struct Group {
            slot: usize,
            weight: u64,
            headroom: u64,
            jobs: Vec<usize>,
        }
        let groups: Vec<Group> = if cycle.tenants.is_empty() {
            cycle
                .active
                .iter()
                .map(|&j| Group { slot: j, weight: 1, headroom: u64::MAX, jobs: vec![j] })
                .collect()
        } else {
            cycle
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(slot, t)| {
                    let jobs: Vec<usize> = cycle
                        .active
                        .iter()
                        .copied()
                        .filter(|&j| cycle.tenant_of[j] == Some(slot))
                        .collect();
                    if jobs.is_empty() {
                        return None;
                    }
                    let headroom = t
                        .round_quota
                        .map_or(u64::MAX, |q| q.saturating_sub(cycle.tenant_used[slot]));
                    (headroom > 0).then_some(Group {
                        slot,
                        weight: u64::from(t.weight),
                        headroom,
                        jobs,
                    })
                })
                .collect()
        };
        if groups.is_empty() {
            return Vec::new();
        }
        let slots = groups.iter().map(|g| g.slot).max().unwrap_or(0) + 1;
        if self.deficits.len() < slots {
            self.deficits.resize(slots, 0);
            self.cursors.resize(slots, 0);
        }
        // Entitlements by largest remainder: floor(slice·w/W) each, then
        // the leftover rounds go one apiece to the largest fractional
        // remainders (ties to the earliest slot) — summing to the slice.
        let total_w: u128 = groups.iter().map(|g| u128::from(g.weight)).sum();
        let mut entitled: Vec<u64> = groups
            .iter()
            .map(|g| (u128::from(slice) * u128::from(g.weight) / total_w) as u64)
            .collect();
        let mut leftover = slice - entitled.iter().sum::<u64>();
        let mut by_rem: Vec<usize> = (0..groups.len()).collect();
        by_rem.sort_by_key(|&gi| {
            std::cmp::Reverse(u128::from(slice) * u128::from(groups[gi].weight) % total_w)
        });
        for &gi in &by_rem {
            if leftover == 0 {
                break;
            }
            entitled[gi] += 1;
            leftover -= 1;
        }
        // Grant pass: entitlement + carried deficit, clamped to quota
        // headroom and the rounds left in the cycle.
        let mut cycle_left = slice;
        let mut wants = vec![0u64; groups.len()];
        let mut grants = vec![0u64; groups.len()];
        for (gi, g) in groups.iter().enumerate() {
            wants[gi] = entitled[gi].saturating_add(self.deficits[g.slot]);
            let grant = wants[gi].min(g.headroom).min(cycle_left);
            grants[gi] = grant;
            cycle_left -= grant;
        }
        // Redistribution pass: rounds freed by quota clamping flow to
        // tenants that still have headroom, in slot order.
        for (gi, g) in groups.iter().enumerate() {
            if cycle_left == 0 {
                break;
            }
            let extra = g.headroom.saturating_sub(grants[gi]).min(cycle_left);
            grants[gi] += extra;
            cycle_left -= extra;
        }
        // Carry what each tenant was owed but not granted, capped at one
        // slice.
        for (gi, g) in groups.iter().enumerate() {
            self.deficits[g.slot] = wants[gi].saturating_sub(grants[gi]).min(slice);
        }
        // Intra-tenant split: even shares, remainder rotated across jobs.
        let mut out = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            let grant = grants[gi];
            if grant == 0 {
                continue;
            }
            let k = g.jobs.len();
            let each = grant / k as u64;
            let rem = (grant % k as u64) as usize;
            let offset = self.cursors[g.slot] % k;
            for (pos, &job) in g.jobs.iter().enumerate() {
                let rotated = (pos + k - offset) % k;
                let share = each + u64::from(rotated < rem);
                if share > 0 {
                    out.push((job, share));
                }
            }
            self.cursors[g.slot] = self.cursors[g.slot].wrapping_add(1);
        }
        out.sort_unstable_by_key(|&(job, _)| job);
        out
    }
}

/// One budget slice queued on the pool: a parked crawler plus its grant.
struct SliceTask<S: DataSource> {
    idx: usize,
    crawler: Crawler<S>,
    grant: u64,
}

/// What a pool worker hands back after executing (or crashing on) a slice.
struct SliceOutcome<S: DataSource> {
    idx: usize,
    worker: u32,
    stolen: bool,
    /// Cumulative elapsed rounds after the slice (0 when panicked).
    rounds_total: u64,
    /// Elapsed rounds billed during this slice alone (0 when panicked).
    slice_rounds: u64,
    /// Cumulative page-request rounds after the slice (0 when panicked).
    pages_total: u64,
    recent_rate: f64,
    fault_streak: u32,
    exhausted: bool,
    panicked: bool,
    /// The parked crawler, returned to its coordinator slot. `None` when
    /// the slice panicked — the in-memory state is suspect then, and the
    /// supervisor rebuilds from the last durable checkpoint instead.
    crawler: Option<Crawler<S>>,
}

/// Executes one slice on a pool worker: steps the crawler until the grant
/// is spent or the frontier dries up, under `catch_unwind` so a panicking
/// job is isolated per *slice* and the worker thread survives.
fn slice_handler<S: DataSource>(ctx: TaskCtx, mut task: SliceTask<S>) -> SliceOutcome<S> {
    let before = task.crawler.elapsed_rounds();
    let target = before + task.grant;
    let stepped = catch_unwind(AssertUnwindSafe(|| {
        let mut exhausted = false;
        while !exhausted && task.crawler.elapsed_rounds() < target {
            if task.crawler.step().is_none() {
                exhausted = true;
            }
        }
        exhausted
    }));
    match stepped {
        Ok(exhausted) => {
            let recent_rate = task.crawler.state().recent_harvest_mean(8).unwrap_or(if exhausted {
                0.0
            } else {
                1.0
            });
            let rounds_total = task.crawler.elapsed_rounds();
            SliceOutcome {
                idx: task.idx,
                worker: ctx.worker,
                stolen: ctx.stolen,
                rounds_total,
                slice_rounds: rounds_total - before,
                pages_total: task.crawler.rounds(),
                recent_rate,
                fault_streak: task.crawler.fault_streak(),
                exhausted,
                panicked: false,
                crawler: Some(task.crawler),
            }
        }
        Err(_) => SliceOutcome {
            idx: task.idx,
            worker: ctx.worker,
            stolen: ctx.stolen,
            rounds_total: 0,
            slice_rounds: 0,
            pages_total: 0,
            recent_rate: 0.0,
            fault_streak: 0,
            exhausted: false,
            panicked: true,
            crawler: None,
        },
    }
}

/// Builds a job's crawler: fresh from its seeds, or resumed from
/// [`FleetJob::resume`].
fn build_crawler<S: DataSource>(job: FleetJob<S>) -> Crawler<S> {
    match &job.resume {
        Some(cp) => Crawler::resume(job.source, job.policy.build(), cp, job.config),
        None => {
            let mut c = Crawler::new(job.source, job.policy.build(), job.config);
            for (a, v) in &job.seeds {
                c.add_seed(a, v);
            }
            c
        }
    }
}

/// How a supervised fleet rebuilds a job after a panic. Only the supervised
/// entry point provides one (it needs `S: Clone`); the plain [`run_fleet`]
/// passes `None` and escalates panics instead.
trait Respawn<S: DataSource> {
    /// The job's last persisted checkpoint, if any generation loads.
    fn load_checkpoint(&self, idx: usize) -> Option<Checkpoint>;
    /// A fresh crawler for the job, resumed from `resume` when given.
    fn rebuild(&self, idx: usize, resume: Option<&Checkpoint>) -> Crawler<S>;
    /// A final report for a job whose crawler is gone: whatever the last
    /// checkpoint proves was harvested, under `stop`.
    fn synthesize_report(&self, idx: usize, stop: StopReason) -> CrawlReport;
}

/// Everything the supervisor needs to rebuild one job.
struct JobSpec<S: DataSource> {
    source: S,
    policy: PolicyKind,
    seeds: Vec<(String, String)>,
    config: CrawlConfig,
    resume: Option<Checkpoint>,
}

impl<S: DataSource + Clone> Respawn<S> for Vec<JobSpec<S>> {
    fn load_checkpoint(&self, idx: usize) -> Option<Checkpoint> {
        let store = self[idx].config.checkpoint_store.as_ref()?;
        store.load_or_backup().ok().map(|(cp, _)| cp)
    }

    fn rebuild(&self, idx: usize, resume: Option<&Checkpoint>) -> Crawler<S> {
        let spec = &self[idx];
        // No durable checkpoint yet: fall back to the job's own starting
        // checkpoint (if it was a resumed job) or its seeds.
        let resume = resume.or(spec.resume.as_ref());
        build_crawler(FleetJob {
            source: spec.source.clone(),
            policy: spec.policy.clone(),
            seeds: spec.seeds.clone(),
            config: spec.config.clone(),
            resume: resume.cloned(),
            // Tenancy is coordinator state, not crawler state; the rebuilt
            // crawler re-enters the job's existing slot.
            tenant: None,
        })
    }

    fn synthesize_report(&self, idx: usize, stop: StopReason) -> CrawlReport {
        self.rebuild(idx, self.load_checkpoint(idx).as_ref()).into_report(stop)
    }
}

/// The coordinator's event stream: every fleet-level event is recorded on
/// the registry *and* kept verbatim, so [`FleetReport::scheduler`] and
/// [`FleetReport::usage`] are both replayable folds of
/// [`FleetReport::events`].
struct FleetStream {
    registry: MetricsRegistry,
    events: Vec<CrawlEvent>,
}

impl FleetStream {
    fn new() -> FleetStream {
        FleetStream { registry: MetricsRegistry::new(), events: Vec::new() }
    }

    fn emit(&mut self, event: CrawlEvent) {
        self.registry.record(&event);
        self.events.push(event);
    }
}

/// The pooled fleet engine behind [`run_fleet`], [`run_fleet_supervised`],
/// and [`run_fleet_controlled`]. The coordinator owns every parked crawler
/// in a slot vector; each allocation cycle it drains controller ops,
/// parks over-quota tenants, computes grants through the configured
/// [`Allocator`], submits one [`SliceTask`] per granted job to the
/// work-stealing pool (higher-priority tenants dispatched first), and
/// folds the outcomes back into rates / budget / breaker / ledger state
/// before the next cycle. A job is never in flight on two workers at once.
fn run_pooled<S>(
    jobs: Vec<FleetJob<S>>,
    config: FleetConfig,
    respawn: Option<&dyn Respawn<S>>,
    ops: Option<FleetOps<S>>,
) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    if let Err(e) = validate_fleet_jobs(&jobs, &config) {
        panic!("invalid fleet: {e}");
    }
    let mut n = jobs.len();
    let workers = config.resolved_workers(n);
    if n == 0 && ops.is_none() {
        return FleetReport::empty(workers as u32);
    }
    // Per-job tenant slot (index into config.tenants).
    let mut slots: Vec<Option<usize>> = jobs
        .iter()
        .map(|j| j.tenant.and_then(|id| config.tenants.iter().position(|t| t.id == id)))
        .collect();
    // Final checkpoint handles, kept so a finished job's last state is
    // durable even between periodic checkpoint ticks (what `dwc resume
    // --workers` picks up). The saves happen outside the crawlers' event
    // streams, so reports and replay parity are unaffected.
    let mut stores: Vec<Option<CheckpointStore>> =
        jobs.iter().map(|j| j.config.checkpoint_store.clone()).collect();
    let mut cells: Vec<Option<Crawler<S>>> = jobs
        .into_iter()
        .map(|mut job| {
            apply_default_retry(&mut job.config, &config);
            Some(build_crawler(job))
        })
        .collect();

    let pool: Pool<SliceTask<S>, SliceOutcome<S>> = Pool::new(workers, slice_handler::<S>);
    let mut stream = FleetStream::new();
    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    // Jobs parked by cooperative preemption (tenant over quota). Parked is
    // not done: the job finalizes with [`StopReason::QuotaExhausted`].
    let mut parked = vec![false; n];
    // Resumed jobs enter with their checkpointed rounds already billed.
    let mut rounds_used: Vec<u64> =
        cells.iter().map(|c| c.as_ref().map(Crawler::elapsed_rounds).unwrap_or(0)).collect();
    let mut pages_used: Vec<u64> =
        cells.iter().map(|c| c.as_ref().map(Crawler::rounds).unwrap_or(0)).collect();
    // Rounds billed per tenant slot, the quota-clamping input.
    let mut tenant_used = vec![0u64; config.tenants.len()];
    for i in 0..n {
        if let Some(slot) = slots[i] {
            tenant_used[slot] += rounds_used[i];
        }
    }
    let mut breakers: Option<Vec<CircuitBreaker>> =
        respawn.is_some().then(|| (0..n).map(|_| CircuitBreaker::new(config.breaker)).collect());
    // One supervision event stream per job; `FleetReport::health` is derived
    // from these, never tallied by hand.
    let mut supervision: Vec<MetricsRegistry> = (0..n).map(|_| MetricsRegistry::new()).collect();
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    let mut allocator = config.allocation.build_allocator();
    let tenant_id = |slot: Option<usize>| slot.map(|s| config.tenants[s].id.0);
    for i in 0..n {
        stream.emit(CrawlEvent::JobAttached {
            job: i as u32,
            tenant: tenant_id(slots[i]),
            rounds: rounds_used[i],
            pages: pages_used[i],
        });
    }

    loop {
        // Drain controller ops first: attaches grow the slot vectors (and
        // may be the fleet's first jobs), detaches finalize early with
        // [`StopReason::Cancelled`]. Jobs are all parked here — the fold
        // loop below is a barrier — so a detach never races a worker.
        if let Some(ops) = &ops {
            for op in ops.rx.try_iter() {
                match op {
                    FleetOp::Attach(job) => {
                        let mut job = *job;
                        if validate_job_tenant(job.tenant, &config.tenants).is_err() {
                            continue; // controller validates; defense in depth
                        }
                        apply_default_retry(&mut job.config, &config);
                        let slot = job
                            .tenant
                            .and_then(|id| config.tenants.iter().position(|t| t.id == id));
                        stores.push(job.config.checkpoint_store.clone());
                        let crawler = build_crawler(job);
                        let idx = n;
                        n += 1;
                        rounds_used.push(crawler.elapsed_rounds());
                        pages_used.push(crawler.rounds());
                        if let Some(s) = slot {
                            tenant_used[s] += rounds_used[idx];
                        }
                        slots.push(slot);
                        rates.push(1.0);
                        done.push(false);
                        parked.push(false);
                        supervision.push(MetricsRegistry::new());
                        finals.push(None);
                        if let Some(bs) = &mut breakers {
                            bs.push(CircuitBreaker::new(config.breaker));
                        }
                        stream.emit(CrawlEvent::JobAttached {
                            job: idx as u32,
                            tenant: tenant_id(slot),
                            rounds: rounds_used[idx],
                            pages: pages_used[idx],
                        });
                        cells.push(Some(crawler));
                    }
                    FleetOp::Detach(idx) => {
                        if idx >= n || done[idx] || parked[idx] || finals[idx].is_some() {
                            continue;
                        }
                        let crawler = cells[idx].take().expect("parked at cycle boundary");
                        let pages = crawler.rounds();
                        let elapsed = crawler.elapsed_rounds();
                        let report = crawler.into_report(StopReason::Cancelled);
                        let before = rounds_used[idx];
                        rounds_used[idx] = before.max(elapsed);
                        if let Some(s) = slots[idx] {
                            tenant_used[s] += rounds_used[idx] - before;
                        }
                        pages_used[idx] = pages_used[idx].max(pages);
                        done[idx] = true;
                        finals[idx] = Some(report);
                        stream.emit(CrawlEvent::JobDetached {
                            job: idx as u32,
                            rounds: rounds_used[idx],
                            pages: pages_used[idx],
                        });
                    }
                }
            }
        }
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        // Cooperative preemption at the slice boundary: a tenant that has
        // consumed its quota has every job parked — no thread is held, the
        // crawlers stay in their slots and finalize as QuotaExhausted.
        for i in 0..n {
            if done[i] || parked[i] {
                continue;
            }
            let Some(slot) = slots[i] else { continue };
            if config.tenants[slot].round_quota.is_some_and(|q| tenant_used[slot] >= q) {
                parked[i] = true;
                stream.emit(CrawlEvent::TenantPreempted {
                    tenant: config.tenants[slot].id.0,
                    job: i as u32,
                });
            }
        }
        // One allocation round passes: open breakers cool toward half-open.
        if let Some(bs) = &mut breakers {
            for (i, b) in bs.iter_mut().enumerate() {
                if let Some((from, to)) = b.tick() {
                    supervision[i].record(&CrawlEvent::BreakerTransition {
                        job: i as u32,
                        from,
                        to,
                    });
                }
            }
        }
        // A tripped or parked job is paused by *not scheduling it* — it
        // holds no thread, its crawler just stays parked in its slot.
        let active: Vec<usize> = (0..n)
            .filter(|&i| {
                !done[i] && !parked[i] && breakers.as_ref().is_none_or(|bs| !bs[i].is_open())
            })
            .collect();
        if active.is_empty() {
            // Distinguish "paused, will resume" (an open breaker cooling
            // toward its half-open probe — tick guarantees progress) from
            // "parked for good" (quota exhaustion): only the former is
            // worth idling for.
            let cooling = breakers
                .as_ref()
                .is_some_and(|bs| (0..n).any(|i| !done[i] && !parked[i] && bs[i].is_open()));
            if cooling {
                continue;
            }
            break;
        }
        let cycle = AllocCycle {
            active: &active,
            rates: &rates,
            remaining,
            slice: config.slice,
            tenant_of: &slots,
            tenants: &config.tenants,
            tenant_used: &tenant_used,
        };
        let grants = allocator.allocate(&cycle);
        if grants.is_empty() {
            break;
        }
        // Priority-aware dispatch: grants are handed to the pool with the
        // tenant's priority; the batch submit stable-sorts so
        // higher-priority tenants' slices hit the injector first. Order
        // only — grant amounts (and therefore reports) are unaffected.
        let mut batch: Vec<(u8, SliceTask<S>)> = Vec::with_capacity(grants.len());
        let mut ordered: Vec<(u8, usize, u64)> = grants
            .iter()
            .map(|&(i, g)| (slots[i].map_or(0, |s| config.tenants[s].priority), i, g))
            .collect();
        ordered.sort_by_key(|&(priority, _, _)| std::cmp::Reverse(priority));
        for &(priority, i, grant) in &ordered {
            let crawler = cells[i].take().expect("active job has a parked crawler");
            stream.emit(CrawlEvent::SliceScheduled { job: i as u32, rounds: grant });
            batch.push((priority, SliceTask { idx: i, crawler, grant }));
        }
        pool.submit_batch(batch);
        for _ in 0..grants.len() {
            let out = pool.recv();
            if out.panicked {
                let Some(respawn) = respawn else {
                    panic!("fleet worker panicked");
                };
                if supervision[out.idx].worker_restarts() >= config.max_restarts {
                    supervision[out.idx].record(&CrawlEvent::JobAbandoned { job: out.idx as u32 });
                    done[out.idx] = true;
                    finals[out.idx] =
                        Some(respawn.synthesize_report(out.idx, StopReason::WorkerFailed));
                    stream.emit(CrawlEvent::JobDetached {
                        job: out.idx as u32,
                        rounds: rounds_used[out.idx],
                        pages: pages_used[out.idx],
                    });
                } else {
                    supervision[out.idx]
                        .record(&CrawlEvent::WorkerRestarted { job: out.idx as u32 });
                    let cp = respawn.load_checkpoint(out.idx);
                    if let Some(cp) = &cp {
                        // The checkpointed rounds stay billed; only the work
                        // since the last snapshot is repeated.
                        let before = rounds_used[out.idx];
                        rounds_used[out.idx] = before.max(cp.rounds);
                        if let Some(s) = slots[out.idx] {
                            tenant_used[s] += rounds_used[out.idx] - before;
                        }
                    }
                    let crawler = respawn.rebuild(out.idx, cp.as_ref());
                    pages_used[out.idx] = pages_used[out.idx].max(crawler.rounds());
                    // The re-attach keeps the ledger fold in lockstep with
                    // the coordinator's own max-bookkeeping.
                    stream.emit(CrawlEvent::JobAttached {
                        job: out.idx as u32,
                        tenant: tenant_id(slots[out.idx]),
                        rounds: rounds_used[out.idx],
                        pages: pages_used[out.idx],
                    });
                    cells[out.idx] = Some(crawler);
                }
            } else {
                stream.emit(CrawlEvent::SliceCompleted {
                    job: out.idx as u32,
                    worker: out.worker,
                    rounds: out.slice_rounds,
                    stolen: out.stolen,
                    tenant: tenant_id(slots[out.idx]),
                    total: out.rounds_total,
                    pages: out.pages_total,
                });
                rates[out.idx] = out.recent_rate;
                done[out.idx] |= out.exhausted;
                let before = rounds_used[out.idx];
                rounds_used[out.idx] = before.max(out.rounds_total);
                if let Some(s) = slots[out.idx] {
                    tenant_used[s] += rounds_used[out.idx] - before;
                }
                pages_used[out.idx] = pages_used[out.idx].max(out.pages_total);
                if let Some(bs) = &mut breakers {
                    if let Some((from, to)) = bs[out.idx].observe(out.fault_streak) {
                        supervision[out.idx].record(&CrawlEvent::BreakerTransition {
                            job: out.idx as u32,
                            from,
                            to,
                        });
                        // A tripped tenant job is parked off the schedule:
                        // that is a preemption, and the ledger says so.
                        if to == crate::events::BreakerPhase::Open {
                            if let Some(id) = tenant_id(slots[out.idx]) {
                                stream.emit(CrawlEvent::TenantPreempted {
                                    tenant: id,
                                    job: out.idx as u32,
                                });
                            }
                        }
                    }
                }
                cells[out.idx] = Some(out.crawler.expect("intact slice returns its crawler"));
            }
        }
    }
    let _ = pool.join();

    let mut sources: Vec<CrawlReport> = Vec::with_capacity(n);
    for (i, done_report) in finals.into_iter().enumerate() {
        if let Some(report) = done_report {
            // Abandoned or detached: finalized (and billed) when it left.
            sources.push(report);
            continue;
        }
        let crawler = cells[i].take().expect("unfinished job has a parked crawler");
        if let Some(store) = &stores[i] {
            // Best effort: a failed final save leaves the last periodic
            // generation valid, exactly like CheckpointFailed mid-crawl.
            let _ = store.save(&crawler.checkpoint());
        }
        let stop = if done[i] {
            StopReason::FrontierExhausted
        } else if parked[i] {
            StopReason::QuotaExhausted
        } else {
            StopReason::RoundBudget
        };
        let pages = crawler.rounds();
        let report = crawler.into_report(stop);
        rounds_used[i] = rounds_used[i].max(report.elapsed_rounds());
        pages_used[i] = pages_used[i].max(pages);
        stream.emit(CrawlEvent::JobDetached {
            job: i as u32,
            rounds: rounds_used[i],
            pages: pages_used[i],
        });
        sources.push(report);
    }
    let health: Vec<JobHealth> = supervision.iter().map(MetricsRegistry::job_health).collect();
    let usage = stream
        .registry
        .usage_ledgers()
        .into_iter()
        .map(|(id, ledger)| (TenantId(id), ledger))
        .collect();
    FleetReport {
        sources,
        total_rounds: rounds_used.iter().sum(),
        health,
        scheduler: stream.registry.scheduler_stats(workers as u32),
        usage,
        events: stream.events,
    }
}

/// Ops a [`FleetController`] can apply to a running fleet.
enum FleetOp<S: DataSource> {
    Attach(Box<FleetJob<S>>),
    Detach(usize),
}

/// The coordinator's end of a controller channel; pass to
/// [`run_fleet_controlled`].
pub struct FleetOps<S: DataSource> {
    rx: mpsc::Receiver<FleetOp<S>>,
}

/// Live handle onto a running (or about-to-run) fleet: attach new jobs and
/// detach running ones between allocation cycles.
///
/// Ops are applied at the next cycle boundary — jobs are all parked there,
/// so attach/detach never races a pool worker. A detached job finalizes
/// immediately with [`StopReason::Cancelled`] and its bill so far; an
/// attached job joins the allocator's next cycle. Ops that arrive after
/// the fleet has drained (budget exhausted or every job finished) are
/// ignored.
pub struct FleetController<S: DataSource> {
    tx: mpsc::Sender<FleetOp<S>>,
    tenants: Vec<Tenant>,
}

impl<S: DataSource> Clone for FleetController<S> {
    fn clone(&self) -> Self {
        FleetController { tx: self.tx.clone(), tenants: self.tenants.clone() }
    }
}

impl<S: DataSource> FleetController<S> {
    /// Creates a controller for a fleet that will run under `config`,
    /// returning the handle and the ops end to pass to
    /// [`run_fleet_controlled`].
    pub fn channel(config: &FleetConfig) -> (FleetController<S>, FleetOps<S>) {
        let (tx, rx) = mpsc::channel();
        (FleetController { tx, tenants: config.tenants.clone() }, FleetOps { rx })
    }

    /// Queues a job for live attachment. The job's tenant is validated
    /// against the fleet's registry before it is sent.
    pub fn attach(&self, job: FleetJob<S>) -> Result<(), ConfigError> {
        validate_job_tenant(job.tenant, &self.tenants)?;
        let _ = self.tx.send(FleetOp::Attach(Box::new(job)));
        Ok(())
    }

    /// Queues a detach of job `idx` (its index in attachment order). The
    /// job finalizes with [`StopReason::Cancelled`] at the next cycle
    /// boundary; unknown or already-finished indices are ignored.
    pub fn detach(&self, idx: usize) {
        let _ = self.tx.send(FleetOp::Detach(idx));
    }
}

/// Runs the fleet to budget exhaustion (or until every job's frontier is
/// dry) on the bounded work-stealing pool. All accounting is in elapsed
/// rounds (requests + backoff waits). A panicking job brings the fleet down
/// (use [`run_fleet_supervised`] for isolation).
pub fn run_fleet<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    run_pooled(jobs, config, None, None)
}

/// Runs the fleet like [`run_fleet`], additionally applying live
/// attach/detach ops from a [`FleetController`] at every cycle boundary.
///
/// The fleet may start empty (`jobs` empty) as long as an attach is queued
/// before the run begins; it exits when the budget is exhausted or every
/// job attached so far has finished.
pub fn run_fleet_controlled<S>(
    jobs: Vec<FleetJob<S>>,
    config: FleetConfig,
    ops: FleetOps<S>,
) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    run_pooled(jobs, config, None, Some(ops))
}

/// Runs the fleet on the pool with crash supervision and per-source circuit
/// breakers.
///
/// Semantics of [`run_fleet`] plus the fault tolerance described in the
/// [module docs](self): a slice that panics is caught on the worker, the
/// job is rebuilt from its last persisted checkpoint (up to
/// [`FleetConfig::max_restarts`] times, then abandoned with
/// [`StopReason::WorkerFailed`]), jobs whose failure streak trips their
/// [`CircuitBreaker`] are paused by removal from the run queue, and
/// [`FleetReport::health`] carries the per-job tallies.
///
/// Requires `S: Clone` so the supervisor can hand a fresh source handle to
/// rebuilt jobs — the shape real fleets already have (`Arc<WebDbServer>`,
/// [`crate::FaultPlanSource`]).
pub fn run_fleet_supervised<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Clone + Send + 'static,
{
    let specs: Vec<JobSpec<S>> = jobs
        .iter()
        .map(|job| JobSpec {
            source: job.source.clone(),
            policy: job.policy.clone(),
            seeds: job.seeds.clone(),
            config: {
                let mut c = job.config.clone();
                apply_default_retry(&mut c, &config);
                c
            },
            resume: job.resume.clone(),
        })
        .collect();
    run_pooled(jobs, config, Some(&specs), None)
}

/// Substitutes the fleet's [`FleetConfig::default_retry`] into a job left on
/// the fail-fast [`RetryPolicy::default`]. An explicitly chosen schedule
/// (any non-default field) passes through untouched; an explicit
/// *fail-fast* wish must be expressed with a non-default schedule, since it
/// is indistinguishable from the unset default.
fn apply_default_retry(job_config: &mut CrawlConfig, fleet: &FleetConfig) {
    if job_config.retry == RetryPolicy::default() {
        job_config.retry = fleet.default_retry;
    }
}

/// Budget grants for the thread-per-job baseline's worker channels.
enum Grant {
    Rounds(u64),
    Finish,
}

/// Per-slice progress report on the baseline's shared result channel.
struct SliceResult {
    idx: usize,
    rounds_used: u64,
    recent_rate: f64,
    exhausted: bool,
    report: Option<CrawlReport>,
}

/// The original fleet engine: one OS thread and one grant channel **per
/// job**, kept as the A/B baseline the `fleet_sched` bench gate measures
/// the pool against. It allocates through the same [`allocate`] function as
/// the pool, so on deterministic sources its [`FleetReport`] matches
/// [`run_fleet`]'s (scheduler section aside — no slices are pooled here).
///
/// Don't use this for real fleets: at 1k+ jobs it burns ~8 MB of stack per
/// job and drowns in context switches — the regime the pooled scheduler
/// exists for.
pub fn run_fleet_thread_per_job<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    if let Err(e) = validate_fleet_jobs(&jobs, &config) {
        panic!("invalid fleet: {e}");
    }
    let n = jobs.len();
    if n == 0 {
        return FleetReport::empty(0);
    }
    let slots: Vec<Option<usize>> = jobs
        .iter()
        .map(|j| j.tenant.and_then(|id| config.tenants.iter().position(|t| t.id == id)))
        .collect();
    let (result_tx, result_rx) = mpsc::channel::<SliceResult>();
    let mut grant_txs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (idx, mut job) in jobs.into_iter().enumerate() {
        apply_default_retry(&mut job.config, &config);
        let (grant_tx, grant_rx) = mpsc::channel::<Grant>();
        grant_txs.push(grant_tx);
        let result_tx = result_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut crawler = build_crawler(job);
            let mut exhausted = false;
            while let Ok(grant) = grant_rx.recv() {
                match grant {
                    Grant::Rounds(rounds) => {
                        let target = crawler.elapsed_rounds() + rounds;
                        while !exhausted && crawler.elapsed_rounds() < target {
                            if crawler.step().is_none() {
                                exhausted = true;
                            }
                        }
                        let recent_rate = crawler
                            .state()
                            .recent_harvest_mean(8)
                            .unwrap_or(if exhausted { 0.0 } else { 1.0 });
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used: crawler.elapsed_rounds(),
                            recent_rate,
                            exhausted,
                            report: None,
                        });
                    }
                    Grant::Finish => {
                        let rounds_used = crawler.elapsed_rounds();
                        let stop = if exhausted {
                            StopReason::FrontierExhausted
                        } else {
                            StopReason::RoundBudget
                        };
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used,
                            recent_rate: 0.0,
                            exhausted,
                            report: Some(crawler.into_report(stop)),
                        });
                        break;
                    }
                }
            }
        }));
    }
    drop(result_tx);

    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    let mut rounds_used = vec![0u64; n];
    let mut tenant_used = vec![0u64; config.tenants.len()];
    let mut allocator = config.allocation.build_allocator();
    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        let active: Vec<usize> = (0..n).filter(|&i| !done[i]).collect();
        let cycle = AllocCycle {
            active: &active,
            rates: &rates,
            remaining,
            slice: config.slice,
            tenant_of: &slots,
            tenants: &config.tenants,
            tenant_used: &tenant_used,
        };
        let grants = allocator.allocate(&cycle);
        if grants.is_empty() {
            break;
        }
        for &(i, grant) in &grants {
            grant_txs[i].send(Grant::Rounds(grant)).expect("worker alive");
        }
        for _ in 0..grants.len() {
            let r = result_rx.recv().expect("worker reports");
            rates[r.idx] = r.recent_rate;
            done[r.idx] |= r.exhausted;
            if let Some(s) = slots[r.idx] {
                tenant_used[s] += r.rounds_used - rounds_used[r.idx];
            }
            rounds_used[r.idx] = r.rounds_used;
        }
    }
    for tx in &grant_txs {
        let _ = tx.send(Grant::Finish);
    }
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    for r in result_rx.iter() {
        if let Some(report) = r.report {
            finals[r.idx] = Some(report);
        }
    }
    for h in handles {
        h.join().expect("fleet worker panicked");
    }
    let sources: Vec<CrawlReport> =
        finals.into_iter().map(|r| r.expect("every worker reported")).collect();
    let total_rounds = sources.iter().map(|r| r.elapsed_rounds()).sum();
    // Synthesize the minimal tenant-tagged stream (attach + final detach
    // per job) so the baseline's usage section is the same registry fold
    // the pooled engine reports — and sums to total_rounds exactly.
    let mut stream = FleetStream::new();
    for (i, report) in sources.iter().enumerate() {
        stream.emit(CrawlEvent::JobAttached {
            job: i as u32,
            tenant: slots[i].map(|s| config.tenants[s].id.0),
            rounds: 0,
            pages: 0,
        });
        stream.emit(CrawlEvent::JobDetached {
            job: i as u32,
            rounds: report.elapsed_rounds(),
            pages: report.rounds,
        });
    }
    let usage = stream
        .registry
        .usage_ledgers()
        .into_iter()
        .map(|(id, ledger)| (TenantId(id), ledger))
        .collect();
    FleetReport {
        sources,
        total_rounds,
        health: vec![JobHealth::default(); n],
        scheduler: SchedulerStats::default(),
        usage,
        events: stream.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultPlanSource};
    use crate::store::CheckpointStore;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};
    use std::sync::Arc;

    fn figure1_server() -> WebDbServer {
        let t = dwc_model::fixtures::figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn scratch_store(name: &str) -> CheckpointStore {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dwc-fleet-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        CheckpointStore::new(dir.join("job.ckpt"))
    }

    fn job(seed_value: &str) -> FleetJob<WebDbServer> {
        FleetJob {
            source: figure1_server(),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), seed_value.to_string())],
            config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
            resume: None,
            tenant: None,
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let report = run_fleet(Vec::<FleetJob<WebDbServer>>::new(), FleetConfig::default());
        assert_eq!(report.total_records(), 0);
        assert_eq!(report.scheduler.slices_scheduled, 0);
    }

    #[test]
    fn fleet_crawls_every_source_to_exhaustion() {
        let jobs = vec![job("a2"), job("a2"), job("a3")];
        let config = FleetConfig::builder()
            .total_rounds(1000)
            .slice(10)
            .allocation(AllocationStrategy::Even)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 3);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
        // Source 2 was seeded from a3 and also reaches everything (connected).
        assert_eq!(report.sources[2].records, 5);
        assert!(report.total_rounds <= 1000);
    }

    #[test]
    fn budget_is_respected() {
        let jobs = vec![job("a2"), job("a2")];
        let config = FleetConfig::builder().total_rounds(4).slice(2).build().unwrap();
        let report = run_fleet(jobs, config);
        assert!(
            report.total_rounds <= 6,
            "slight overshoot ≤ one query per source allowed, got {}",
            report.total_rounds
        );
        assert!(report.total_records() > 0);
    }

    #[test]
    fn proportional_allocation_finishes_too() {
        let jobs = vec![job("a2"), job("a1")];
        let config = FleetConfig::builder()
            .total_rounds(100)
            .slice(4)
            .allocation(AllocationStrategy::HarvestProportional)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        assert_eq!(
            FleetConfig::builder().total_rounds(0).build().unwrap_err(),
            ConfigError::ZeroBudget("total_rounds")
        );
        assert_eq!(
            FleetConfig::builder().slice(0).build().unwrap_err(),
            ConfigError::ZeroBudget("slice")
        );
        assert_eq!(
            FleetConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroBudget("workers")
        );
        assert!(FleetConfig::builder().workers(8).build().is_ok());
    }

    #[test]
    fn workers_resolve_capped_at_job_count() {
        let config = FleetConfig::builder().workers(8).build().unwrap();
        assert_eq!(config.resolved_workers(3), 3);
        assert_eq!(config.resolved_workers(100), 8);
        assert_eq!(config.resolved_workers(0), 1);
        let auto = FleetConfig::default();
        assert!(auto.resolved_workers(1000) >= 1);
    }

    #[test]
    fn two_jobs_share_one_source() {
        // Two jobs crawl the SAME server (different seed regions) — the
        // Arc handles land every request on one global round counter.
        let shared = Arc::new(figure1_server());
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
                resume: None,
                tenant: None,
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5, "each job harvests the full database");
        }
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(
            summed,
            shared.rounds_used(),
            "per-job request counts must add up to the shared global counter"
        );
    }

    #[test]
    fn pooled_report_matches_thread_per_job_baseline() {
        let make = || vec![job("a2"), job("a1"), job("a3"), job("a2")];
        let config = || {
            FleetConfig::builder()
                .total_rounds(300)
                .slice(12)
                .allocation(AllocationStrategy::HarvestProportional)
                .workers(2)
                .build()
                .unwrap()
        };
        let pooled = run_fleet(make(), config());
        let baseline = run_fleet_thread_per_job(make(), config());
        assert_eq!(pooled.sources, baseline.sources, "identical grant sequences, identical jobs");
        assert_eq!(pooled.total_rounds, baseline.total_rounds);
        assert_eq!(pooled.health, baseline.health);
    }

    #[test]
    fn scheduler_stats_account_for_every_slice() {
        let jobs = vec![job("a2"), job("a3")];
        let config =
            FleetConfig::builder().total_rounds(1000).slice(10).workers(2).build().unwrap();
        let report = run_fleet(jobs, config);
        let s = &report.scheduler;
        assert_eq!(s.workers, 2);
        assert!(s.slices_scheduled > 0);
        assert_eq!(s.slices_completed, s.slices_scheduled, "no panics: every slice completes");
        assert_eq!(
            s.per_worker_slices.iter().sum::<u64>(),
            s.slices_completed,
            "per-worker tallies cover every completed slice"
        );
        assert!(s.rounds_executed <= s.rounds_granted, "figure1 queries never overshoot");
        assert_eq!(s.rounds_executed, report.total_rounds);
    }

    #[test]
    fn single_worker_run_is_reproducible() {
        let run = || {
            let jobs = vec![job("a2"), job("a1"), job("a3")];
            let config = FleetConfig::builder()
                .total_rounds(500)
                .slice(7)
                .allocation(AllocationStrategy::HarvestProportional)
                .workers(1)
                .build()
                .unwrap();
            run_fleet(jobs, config)
        };
        let a = run();
        let b = run();
        assert_eq!(a.sources, b.sources, "reports (traces included) must match");
        assert_eq!(a.scheduler, b.scheduler, "the full slice schedule must match");
    }

    #[test]
    fn fleet_resumes_a_job_from_its_checkpoint() {
        let store = scratch_store("fleet-resume");
        let partial_config = CrawlConfig::builder()
            .known_target_size(5)
            .checkpoint_store(store.clone())
            .checkpoint_every(1)
            .build()
            .unwrap();
        let partial = run_fleet(
            vec![FleetJob {
                source: figure1_server(),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".to_string())],
                config: partial_config.clone(),
                resume: None,
                tenant: None,
            }],
            FleetConfig::builder().total_rounds(2).slice(2).build().unwrap(),
        );
        assert!(partial.sources[0].records < 5, "tiny budget must stop early");
        let (cp, _) = store.load_or_backup().expect("final checkpoint persisted");
        assert!(cp.rounds > 0);
        let resumed = run_fleet(
            vec![FleetJob {
                source: figure1_server(),
                policy: PolicyKind::GreedyLink,
                seeds: Vec::new(),
                config: partial_config,
                resume: Some(cp.clone()),
                tenant: None,
            }],
            FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap(),
        );
        assert_eq!(resumed.sources[0].records, 5, "resume finishes the crawl");
        assert!(
            resumed.total_rounds >= cp.rounds,
            "checkpointed rounds count against the fleet budget"
        );
    }

    /// A one-job supervised fleet over a fault-plan-wrapped shared server.
    fn supervised_job(
        plan: FaultPlan,
        store: Option<CheckpointStore>,
    ) -> FleetJob<FaultPlanSource<Arc<WebDbServer>>> {
        let mut builder = CrawlConfig::builder().known_target_size(5).max_requeues(10);
        if let Some(store) = store {
            builder = builder.checkpoint_store(store).checkpoint_every(1);
        }
        FleetJob {
            source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), "a2".to_string())],
            config: builder.build().unwrap(),
            resume: None,
            tenant: None,
        }
    }

    #[test]
    fn supervised_fleet_without_faults_matches_plain() {
        let jobs =
            vec![supervised_job(FaultPlan::new(), None), supervised_job(FaultPlan::new(), None)];
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5);
        }
        assert_eq!(report.breaker_trips(), 0);
        assert_eq!(report.worker_restarts(), 0);
        assert!(report.health.iter().all(|h| !h.abandoned));
    }

    #[test]
    fn panicking_slice_restarts_from_checkpoint_and_finishes() {
        let store = scratch_store("restart");
        let jobs = vec![supervised_job(FaultPlan::new().panic_at(4), Some(store.clone()))];
        let config = FleetConfig::builder().total_rounds(1000).slice(5).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert_eq!(report.health[0].worker_restarts, 1, "one injected crash, one restart");
        assert!(!report.health[0].abandoned);
        assert_eq!(report.sources[0].records, 5, "recovery must lose no records");
        assert!(store.exists(), "periodic checkpoints were persisted");
    }

    #[test]
    fn job_without_restart_budget_is_abandoned() {
        let store = scratch_store("abandon");
        // Panic on every early request: even rebuilt jobs die again.
        let plan = FaultPlan::new().panic_at(1).panic_at(2).panic_at(3).panic_at(4);
        let jobs = vec![supervised_job(plan, Some(store))];
        let config =
            FleetConfig::builder().total_rounds(1000).slice(5).max_restarts(2).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert!(report.health[0].abandoned);
        assert_eq!(report.health[0].worker_restarts, 2, "restart budget spent before abandoning");
        assert_eq!(report.sources[0].stop, StopReason::WorkerFailed);
    }

    #[test]
    fn breaker_trips_on_burst_and_recovers() {
        let store = scratch_store("breaker");
        // 20 consecutive transient failures starting at request 4: long
        // enough that a slice boundary lands mid-burst with a live streak.
        let jobs = vec![supervised_job(FaultPlan::new().burst(4, 20), Some(store))];
        let config = FleetConfig::builder()
            .total_rounds(4000)
            .slice(8)
            .breaker(BreakerConfig { trip_after: 3, cooldown: 1 })
            .build()
            .unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert!(report.breaker_trips() >= 1, "the burst must trip the breaker");
        assert!(report.breaker_recoveries() >= 1, "the probe after the burst must recover");
        assert_eq!(report.sources[0].records, 5, "zero records lost through the pause");
        assert!(!report.health[0].abandoned);
    }

    #[test]
    fn default_retry_substituted_only_for_default_jobs() {
        let fleet = FleetConfig::default();
        let mut on_default = CrawlConfig::default();
        apply_default_retry(&mut on_default, &fleet);
        assert_eq!(on_default.retry, fleet.default_retry, "default jobs get fleet retries");
        let explicit =
            RetryPolicy { max_retries: 2, backoff_base: 3, backoff_cap: 10, ..Default::default() };
        let mut custom = CrawlConfig { retry: explicit, ..CrawlConfig::default() };
        apply_default_retry(&mut custom, &fleet);
        assert_eq!(custom.retry, explicit, "explicit schedules pass through");
    }

    #[test]
    fn shared_source_with_faults_loses_no_records() {
        // The ISSUE acceptance scenario: two crawlers share one server with
        // FaultPolicy::every(7); retries (billed as rounds + backoff) must
        // still deliver every record to both jobs.
        let shared = Arc::new(figure1_server().with_faults(FaultPolicy::every(7)));
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder()
                    .known_target_size(5)
                    .max_retries(32)
                    .build()
                    .unwrap(),
                resume: None,
                tenant: None,
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(4000).slice(50).build().unwrap();
        let report = run_fleet(jobs, config);
        for r in &report.sources {
            assert_eq!(r.records, 5, "zero records may be lost to faults");
        }
        let failures: u64 = report.sources.iter().map(|r| r.transient_failures).sum();
        assert!(failures > 0, "the fault schedule must actually have fired");
        assert_eq!(failures, shared.faults_injected());
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(summed, shared.rounds_used(), "failed rounds are billed too");
    }

    // ---- tenancy -------------------------------------------------------

    fn tenant_job(seed_value: &str, tenant: u32) -> FleetJob<WebDbServer> {
        FleetJob { tenant: Some(TenantId(tenant)), ..job(seed_value) }
    }

    #[test]
    fn builder_rejects_tenant_misconfiguration() {
        let build = |tenants: Vec<Tenant>| FleetConfig::builder().tenants(tenants).build();
        assert_eq!(
            build(vec![Tenant::new(0).with_weight(0)]).unwrap_err(),
            ConfigError::ZeroTenantWeight(0)
        );
        assert_eq!(
            build(vec![Tenant::new(1).with_quota(0)]).unwrap_err(),
            ConfigError::ZeroTenantQuota(1)
        );
        assert_eq!(
            build(vec![Tenant::new(2), Tenant::new(2)]).unwrap_err(),
            ConfigError::DuplicateTenant(2)
        );
        assert!(build(vec![Tenant::new(0), Tenant::new(1).with_weight(4).with_quota(50)]).is_ok());
    }

    #[test]
    fn jobs_are_validated_against_the_registry() {
        let tenanted = FleetConfig::builder().tenants(vec![Tenant::new(0)]).build().unwrap();
        assert_eq!(
            validate_fleet_jobs(&[tenant_job("a2", 9)], &tenanted).unwrap_err(),
            ConfigError::UnknownTenant(9)
        );
        assert_eq!(
            validate_fleet_jobs(&[job("a2")], &tenanted).unwrap_err(),
            ConfigError::MissingTenant
        );
        let blind = FleetConfig::default();
        assert_eq!(
            validate_fleet_jobs(&[tenant_job("a2", 0)], &blind).unwrap_err(),
            ConfigError::UnknownTenant(0)
        );
        assert!(validate_fleet_jobs(&[tenant_job("a2", 0)], &tenanted).is_ok());
        assert!(validate_fleet_jobs(&[job("a2")], &blind).is_ok());
    }

    #[test]
    fn weighted_fair_grants_follow_weights() {
        let tenants = vec![Tenant::new(0).with_weight(3), Tenant::new(1)];
        let mut alloc = WeightedFairAllocator::default();
        let grants = alloc.allocate(&AllocCycle {
            active: &[0, 1],
            rates: &[1.0, 1.0],
            remaining: 1000,
            slice: 8,
            tenant_of: &[Some(0), Some(1)],
            tenants: &tenants,
            tenant_used: &[0, 0],
        });
        assert_eq!(grants, vec![(0, 6), (1, 2)], "3:1 weights split an 8-round slice 6:2");
    }

    #[test]
    fn weighted_fair_clamps_to_quota_and_redistributes() {
        let tenants = vec![Tenant::new(0).with_weight(3).with_quota(4), Tenant::new(1)];
        let mut alloc = WeightedFairAllocator::default();
        let cycle = |used: &'static [u64]| AllocCycle {
            active: &[0, 1],
            rates: &[1.0, 1.0],
            remaining: 1000,
            slice: 8,
            tenant_of: &[Some(0), Some(1)],
            tenants: &tenants,
            tenant_used: used,
        };
        // Tenant 0 is entitled to 6 but has 4 rounds of quota headroom; the
        // 2 freed rounds flow to tenant 1 on top of its own entitlement.
        assert_eq!(alloc.allocate(&cycle(&[0, 0])), vec![(0, 4), (1, 4)]);
        // Quota spent: tenant 0 drops out entirely, tenant 1 absorbs the
        // full slice (plus nothing carried — its deficit is zero).
        assert_eq!(alloc.allocate(&cycle(&[4, 4])), vec![(1, 8)]);
    }

    #[test]
    fn weighted_fair_carries_deficits_across_cycles() {
        // Deficits originate from quota clamping and are drawn once the
        // headroom returns (here: the operator raises the quota between
        // cycles — the registry is a per-cycle input to the allocator).
        let capped = vec![Tenant::new(0).with_weight(3).with_quota(4), Tenant::new(1)];
        let uncapped = vec![Tenant::new(0).with_weight(3), Tenant::new(1)];
        let mut alloc = WeightedFairAllocator::default();
        fn cycle(tenants: &[Tenant]) -> AllocCycle<'_> {
            AllocCycle {
                active: &[0, 1],
                rates: &[1.0, 1.0],
                remaining: 1000,
                slice: 8,
                tenant_of: &[Some(0), Some(1)],
                tenants,
                tenant_used: &[0, 0],
            }
        }
        // Cycle 1: tenant 0 is entitled to 6 but clamped to 4 by its quota;
        // the 2-round shortfall is carried as a deficit.
        assert_eq!(alloc.allocate(&cycle(&capped)), vec![(0, 4), (1, 4)]);
        // Cycle 2: headroom restored — tenant 0 draws entitlement (6) plus
        // the carried deficit (2), absorbing the whole slice; tenant 1's
        // unmet entitlement becomes *its* deficit in turn.
        assert_eq!(alloc.allocate(&cycle(&uncapped)), vec![(0, 8)]);
        // Cycle 3: tenant 0's deficit is spent, so tenant 1 gets its
        // entitlement (2) back while the steady 3:1 split resumes.
        assert_eq!(alloc.allocate(&cycle(&uncapped)), vec![(0, 6), (1, 2)]);
    }

    #[test]
    fn weighted_fair_splits_a_tenant_grant_over_its_jobs() {
        // Tenant 0 runs jobs 0 and 2; a 7-round grant splits 4/3 with the
        // remainder rotating between the jobs across cycles.
        let tenants = vec![Tenant::new(0)];
        let mut alloc = WeightedFairAllocator::default();
        let cycle = AllocCycle {
            active: &[0, 2],
            rates: &[1.0, 1.0, 1.0],
            remaining: 1000,
            slice: 7,
            tenant_of: &[Some(0), None, Some(0)],
            tenants: &tenants,
            tenant_used: &[0],
        };
        assert_eq!(alloc.allocate(&cycle), vec![(0, 4), (2, 3)]);
        assert_eq!(alloc.allocate(&cycle), vec![(0, 3), (2, 4)], "remainder rotates");
    }

    #[test]
    fn weighted_fair_without_registry_treats_jobs_as_peers() {
        let mut alloc = WeightedFairAllocator::default();
        let grants = alloc.allocate(&AllocCycle {
            active: &[0, 1, 2],
            rates: &[1.0, 1.0, 1.0],
            remaining: 1000,
            slice: 9,
            tenant_of: &[None, None, None],
            tenants: &[],
            tenant_used: &[],
        });
        assert_eq!(grants, vec![(0, 3), (1, 3), (2, 3)], "implicit weight-1 tenants");
    }

    #[test]
    fn weighted_fleet_meters_rounds_by_weight() {
        let tenants = vec![Tenant::new(0).with_weight(3), Tenant::new(1)];
        let jobs = vec![tenant_job("a2", 0), tenant_job("a3", 1)];
        let config = FleetConfig::builder()
            .total_rounds(4)
            .slice(4)
            .allocation(AllocationStrategy::WeightedFair)
            .workers(1)
            .tenants(tenants)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.usage.len(), 2);
        assert_eq!(report.usage[0].0, TenantId(0));
        assert_eq!(report.usage[0].1.rounds, 3, "weight 3 draws 3 of the 4 budget rounds");
        assert_eq!(report.usage[1].0, TenantId(1));
        assert_eq!(report.usage[1].1.rounds, 1);
        let ledger_rounds: u64 = report.usage.iter().map(|(_, l)| l.rounds).sum();
        assert_eq!(ledger_rounds, report.total_rounds, "ledgers conserve the budget");
    }

    #[test]
    fn quota_exhaustion_parks_the_tenant() {
        let tenants = vec![Tenant::new(0).with_quota(3), Tenant::new(1)];
        let jobs = vec![tenant_job("a2", 0), tenant_job("a3", 1)];
        let config = FleetConfig::builder()
            .total_rounds(1000)
            .slice(4)
            .allocation(AllocationStrategy::WeightedFair)
            .workers(1)
            .tenants(tenants)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources[0].stop, StopReason::QuotaExhausted);
        assert!(report.sources[0].elapsed_rounds() <= 3, "grants were clamped to the quota");
        assert_eq!(report.sources[1].records, 5, "the unlimited tenant finishes");
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, CrawlEvent::TenantPreempted { tenant: 0, job: 0 })));
        let t0 = &report.usage[0].1;
        assert_eq!(t0.preempted, 1, "one cooperative preemption");
        assert!(t0.rounds <= 3);
        let ledger_rounds: u64 = report.usage.iter().map(|(_, l)| l.rounds).sum();
        assert_eq!(ledger_rounds, report.total_rounds);
    }

    #[test]
    fn usage_ledgers_replay_from_the_event_stream() {
        let tenants =
            vec![Tenant::new(0).with_weight(2).with_quota(6), Tenant::new(1).with_priority(3)];
        let jobs = vec![tenant_job("a2", 0), tenant_job("a1", 1), tenant_job("a3", 1)];
        let config = FleetConfig::builder()
            .total_rounds(200)
            .slice(6)
            .allocation(AllocationStrategy::WeightedFair)
            .workers(1)
            .tenants(tenants)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        let replayed: Vec<(TenantId, UsageLedger)> = crate::metrics::replay_usage(&report.events)
            .into_iter()
            .map(|(id, ledger)| (TenantId(id), ledger))
            .collect();
        assert_eq!(replayed, report.usage, "usage is a pure fold of the event stream");
    }

    #[test]
    fn controller_attaches_and_detaches_jobs_live() {
        let config = FleetConfig::builder()
            .total_rounds(1000)
            .slice(10)
            .workers(1)
            .tenants(vec![Tenant::new(0), Tenant::new(1)])
            .build()
            .unwrap();
        let (controller, ops) = FleetController::channel(&config);
        assert_eq!(
            controller.attach(tenant_job("a2", 7)).unwrap_err(),
            ConfigError::UnknownTenant(7),
            "the controller validates tenants before sending"
        );
        controller.attach(tenant_job("a3", 1)).unwrap();
        controller.detach(0);
        let report = run_fleet_controlled(vec![tenant_job("a2", 0)], config, ops);
        assert_eq!(report.sources.len(), 2, "the attached job joined the fleet");
        assert_eq!(report.sources[0].stop, StopReason::Cancelled, "job 0 was detached");
        assert_eq!(report.sources[0].records, 0, "detached before its first slice");
        assert_eq!(report.sources[1].records, 5, "the attached job ran to exhaustion");
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, CrawlEvent::JobAttached { job: 1, tenant: Some(1), .. })));
        assert!(report.events.iter().any(|e| matches!(e, CrawlEvent::JobDetached { job: 0, .. })));
        let ledger_rounds: u64 = report.usage.iter().map(|(_, l)| l.rounds).sum();
        assert_eq!(ledger_rounds, report.total_rounds, "attach/detach keeps conservation");
    }

    #[test]
    fn single_tenant_fleet_matches_tenant_blind_runs() {
        for allocation in [AllocationStrategy::Even, AllocationStrategy::HarvestProportional] {
            let config = |tenants: Vec<Tenant>| {
                FleetConfig::builder()
                    .total_rounds(300)
                    .slice(12)
                    .allocation(allocation)
                    .workers(1)
                    .tenants(tenants)
                    .build()
                    .unwrap()
            };
            let blind = run_fleet(vec![job("a2"), job("a1"), job("a3")], config(Vec::new()));
            let tenanted = run_fleet(
                vec![tenant_job("a2", 0), tenant_job("a1", 0), tenant_job("a3", 0)],
                config(vec![Tenant::new(0)]),
            );
            assert_eq!(
                blind.sources, tenanted.sources,
                "{allocation:?}: tenancy must not change grant math"
            );
            assert_eq!(blind.total_rounds, tenanted.total_rounds);
            assert_eq!(blind.scheduler, tenanted.scheduler);
            assert!(blind.usage.is_empty(), "tenant-blind fleets report no ledgers");
            assert_eq!(tenanted.usage.len(), 1);
            assert_eq!(tenanted.usage[0].1.rounds, tenanted.total_rounds);
        }
    }

    #[test]
    fn weighted_fair_pooled_matches_thread_per_job_baseline() {
        let tenants = || vec![Tenant::new(0).with_weight(3), Tenant::new(1)];
        let make = || vec![tenant_job("a2", 0), tenant_job("a1", 1), tenant_job("a3", 0)];
        let config = || {
            FleetConfig::builder()
                .total_rounds(300)
                .slice(12)
                .allocation(AllocationStrategy::WeightedFair)
                .workers(2)
                .tenants(tenants())
                .build()
                .unwrap()
        };
        let pooled = run_fleet(make(), config());
        let baseline = run_fleet_thread_per_job(make(), config());
        assert_eq!(pooled.sources, baseline.sources, "identical grant sequences");
        assert_eq!(pooled.total_rounds, baseline.total_rounds);
        assert_eq!(pooled.usage, baseline.usage, "both engines fold the same ledgers");
    }

    #[test]
    fn tenanted_single_worker_run_is_reproducible() {
        let run = || {
            let tenants = vec![
                Tenant::new(0).with_weight(3).with_priority(2),
                Tenant::new(1).with_quota(40),
                Tenant::new(2),
            ];
            let jobs = vec![tenant_job("a2", 0), tenant_job("a1", 1), tenant_job("a3", 2)];
            let config = FleetConfig::builder()
                .total_rounds(500)
                .slice(7)
                .allocation(AllocationStrategy::WeightedFair)
                .workers(1)
                .tenants(tenants)
                .build()
                .unwrap();
            run_fleet(jobs, config)
        };
        let a = run();
        let b = run();
        assert_eq!(a.sources, b.sources, "reports (traces included) must match");
        assert_eq!(a.scheduler, b.scheduler);
        assert_eq!(a.usage, b.usage);
        assert_eq!(a.events, b.events, "the full event stream is deterministic");
    }
}
