//! Multi-worker fleet crawling — distinct and *shared* sources.
//!
//! The paper closes with "our future work also includes the implementation
//! and deployment of a real world product database crawler" — a crawler that
//! faces *many* crawl jobs at once under one global communication budget
//! (e.g. a comparison-shopping engine harvesting every DVD store it knows).
//! This module provides that deployment layer on top of [`crate::Crawler`]:
//!
//! * each job runs its own crawler (own policy, own vocabulary, own
//!   `DB_local`) on its own worker thread;
//! * jobs are generic over [`DataSource`], so a fleet can mix distinct
//!   servers with *shared* ones — pass `Arc<WebDbServer>` clones and N
//!   workers probe the same source concurrently, every page request landing
//!   in the same atomic round counter (partitioned crawling of one large
//!   source, e.g. different seed regions of the same store);
//! * the global budget is handed out in *slices*, split across jobs by an
//!   [`AllocationStrategy`]: evenly, or proportionally to each job's
//!   observed recent harvest rate — the fleet-level analogue of per-query
//!   selection (spend the next rounds where they buy the most new records);
//! * workers are billed in **elapsed rounds** — page requests plus retry
//!   backoff waits ([`crate::RetryPolicy`]) — so a worker stuck retrying a
//!   flaky source drains its own budget, not its siblings';
//! * a job whose frontier dries up stops drawing budget, and under
//!   proportional allocation a saturating job gradually loses budget to
//!   fresher ones.
//!
//! # Supervision
//!
//! [`run_fleet_supervised`] adds crash safety on top (for `Clone` source
//! handles, which is what real fleets hold — `Arc<WebDbServer>` clones or
//! fault-injection wrappers):
//!
//! * worker threads run their stepping loop under
//!   [`std::panic::catch_unwind`]; a panicking worker reports in and dies,
//!   and the supervisor respawns it from the job's last persisted
//!   checkpoint ([`CrawlConfig::checkpoint_store`]) — completed rounds are
//!   not re-billed, at most one checkpoint interval of work is repeated;
//! * a job that panics more than [`FleetConfig::max_restarts`] times is
//!   abandoned with [`StopReason::WorkerFailed`] instead of wedging the
//!   fleet;
//! * each job runs behind a per-source [`CircuitBreaker`]: a worker whose
//!   consecutive-failure streak reaches [`BreakerConfig::trip_after`] is
//!   paused, its budget flows to healthy jobs, and after the cooldown a
//!   half-open probe slice decides between recovery and another pause;
//! * jobs whose retry policy was left on the fail-fast
//!   [`RetryPolicy::default`] get [`FleetConfig::default_retry`]
//!   substituted, so a fleet never hammers a flaky source without backoff
//!   by accident;
//! * every supervision fact — breaker phase transition, worker restart,
//!   abandonment — is recorded as a [`CrawlEvent`] on a per-job
//!   [`MetricsRegistry`], and [`FleetReport::health`] is *derived* from
//!   those streams ([`MetricsRegistry::job_health`]); the supervisor keeps
//!   no tallies of its own.

use crate::config::{ConfigError, RetryPolicy};
use crate::crawler::{CrawlConfig, CrawlReport, Crawler, StopReason};
use crate::events::CrawlEvent;
use crate::health::{BreakerConfig, CircuitBreaker, JobHealth};
use crate::metrics::MetricsRegistry;
use crate::policy::PolicyKind;
use crate::source::DataSource;
use std::sync::mpsc;

/// How the global round budget is divided across jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Every active job gets the same share of every slice.
    Even,
    /// Each slice is divided proportionally to the jobs' mean normalized
    /// harvest rates over their recent queries (floored at 5% so a job is
    /// never starved before it can prove itself).
    HarvestProportional,
}

/// One crawl job of the fleet.
///
/// `S` is any [`DataSource`] handle the worker thread can own: a
/// `WebDbServer` (exclusive), an `Arc<WebDbServer>` (shared with other
/// workers), or a [`crate::FaultySource`]-wrapped source.
pub struct FleetJob<S: DataSource> {
    /// The target source handle.
    pub source: S,
    /// Selection policy for this job.
    pub policy: PolicyKind,
    /// Seed values (attribute name, value string).
    pub seeds: Vec<(String, String)>,
    /// Per-job config template (budgets are driven by the fleet; leave
    /// `max_rounds` unset).
    pub config: CrawlConfig,
}

/// Fleet-level configuration. Prefer [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total elapsed rounds across all jobs (requests + backoff waits).
    pub total_rounds: u64,
    /// Rounds distributed per allocation slice.
    pub slice: u64,
    /// Budget split strategy.
    pub allocation: AllocationStrategy,
    /// Retry schedule substituted into any job whose config still carries
    /// the fail-fast [`RetryPolicy::default`] (`max_retries: 0`). Defaults
    /// to 4 retries — a fleet-scale crawl against sources that can throttle
    /// should never fail fast by accident. A job that *wants* to fail fast
    /// must say so with a non-default schedule (e.g. `backoff_cap: 63`).
    pub default_retry: RetryPolicy,
    /// Worker restarts per job before the job is abandoned with
    /// [`StopReason::WorkerFailed`] (supervised fleets).
    pub max_restarts: u32,
    /// Per-source circuit-breaker thresholds (supervised fleets).
    pub breaker: BreakerConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            total_rounds: 10_000,
            slice: 500,
            allocation: AllocationStrategy::Even,
            default_retry: RetryPolicy::retries(4),
            max_restarts: 3,
            breaker: BreakerConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Starts building a validated configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder { config: FleetConfig::default() }
    }
}

/// Builder for [`FleetConfig`]; see [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the global round budget. Must be positive.
    pub fn total_rounds(mut self, rounds: u64) -> Self {
        self.config.total_rounds = rounds;
        self
    }

    /// Sets the per-slice grant size. Must be positive.
    pub fn slice(mut self, slice: u64) -> Self {
        self.config.slice = slice;
        self
    }

    /// Sets the budget split strategy.
    pub fn allocation(mut self, allocation: AllocationStrategy) -> Self {
        self.config.allocation = allocation;
        self
    }

    /// Sets the retry schedule substituted into jobs left on
    /// [`RetryPolicy::default`].
    pub fn default_retry(mut self, retry: RetryPolicy) -> Self {
        self.config.default_retry = retry;
        self
    }

    /// Sets worker restarts per job before abandonment.
    pub fn max_restarts(mut self, restarts: u32) -> Self {
        self.config.max_restarts = restarts;
        self
    }

    /// Sets the per-source circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetConfig, ConfigError> {
        if self.config.total_rounds == 0 {
            return Err(ConfigError::ZeroBudget("total_rounds"));
        }
        if self.config.slice == 0 {
            return Err(ConfigError::ZeroBudget("slice"));
        }
        Ok(self.config)
    }
}

/// Result of a fleet crawl: one report per job, in input order.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job crawl reports.
    pub sources: Vec<CrawlReport>,
    /// Total elapsed rounds actually spent across the fleet.
    pub total_rounds: u64,
    /// Per-job fault-tolerance counters, in input order. All-zero for
    /// unsupervised fleets ([`run_fleet`]).
    pub health: Vec<JobHealth>,
}

impl FleetReport {
    /// Total records harvested across all jobs.
    pub fn total_records(&self) -> u64 {
        self.sources.iter().map(|r| r.records).sum()
    }

    /// Total circuit-breaker trips across all jobs.
    pub fn breaker_trips(&self) -> u64 {
        self.health.iter().map(|h| h.breaker_trips).sum()
    }

    /// Total circuit-breaker recoveries across all jobs.
    pub fn breaker_recoveries(&self) -> u64 {
        self.health.iter().map(|h| h.breaker_recoveries).sum()
    }

    /// Total worker restarts across all jobs.
    pub fn worker_restarts(&self) -> u64 {
        self.health.iter().map(|h| u64::from(h.worker_restarts)).sum()
    }
}

enum Grant {
    Rounds(u64),
    Finish,
}

struct SliceResult {
    idx: usize,
    rounds_used: u64,
    recent_rate: f64,
    fault_streak: u32,
    exhausted: bool,
    panicked: bool,
    report: Option<CrawlReport>,
}

/// Runs the fleet to budget exhaustion (or until every job's frontier is
/// dry). Each job lives on its own worker thread and owns its source handle;
/// the coordinator hands out budget grants per slice and collects progress.
/// All accounting is in elapsed rounds (requests + backoff waits).
pub fn run_fleet<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    let n = jobs.len();
    if n == 0 {
        return FleetReport { sources: Vec::new(), total_rounds: 0, health: Vec::new() };
    }
    let (result_tx, result_rx) = mpsc::channel::<SliceResult>();
    let mut grant_txs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (idx, mut job) in jobs.into_iter().enumerate() {
        apply_default_retry(&mut job.config, &config);
        let (grant_tx, grant_rx) = mpsc::channel::<Grant>();
        grant_txs.push(grant_tx);
        let result_tx = result_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut crawler = Crawler::new(job.source, job.policy.build(), job.config);
            for (a, v) in &job.seeds {
                crawler.add_seed(a, v);
            }
            let mut exhausted = false;
            while let Ok(grant) = grant_rx.recv() {
                match grant {
                    Grant::Rounds(rounds) => {
                        let target = crawler.elapsed_rounds() + rounds;
                        while !exhausted && crawler.elapsed_rounds() < target {
                            if crawler.step().is_none() {
                                exhausted = true;
                            }
                        }
                        let recent_rate = crawler
                            .state()
                            .recent_harvest_mean(8)
                            .unwrap_or(if exhausted { 0.0 } else { 1.0 });
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used: crawler.elapsed_rounds(),
                            recent_rate,
                            fault_streak: crawler.fault_streak(),
                            exhausted,
                            panicked: false,
                            report: None,
                        });
                    }
                    Grant::Finish => {
                        let rounds_used = crawler.elapsed_rounds();
                        let stop = if exhausted {
                            StopReason::FrontierExhausted
                        } else {
                            StopReason::RoundBudget
                        };
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used,
                            recent_rate: 0.0,
                            fault_streak: 0,
                            exhausted,
                            panicked: false,
                            report: Some(crawler.into_report(stop)),
                        });
                        break;
                    }
                }
            }
        }));
    }
    drop(result_tx);

    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    let mut rounds_used = vec![0u64; n];
    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        let slice = remaining.min(config.slice);
        let shares: Vec<u64> = match config.allocation {
            AllocationStrategy::Even => {
                let active = done.iter().filter(|&&d| !d).count() as u64;
                (0..n).map(|i| if done[i] { 0 } else { (slice / active.max(1)).max(1) }).collect()
            }
            AllocationStrategy::HarvestProportional => {
                const FLOOR: f64 = 0.05;
                let weights: Vec<f64> =
                    (0..n).map(|i| if done[i] { 0.0 } else { rates[i].max(FLOOR) }).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| {
                        if *w == 0.0 {
                            0
                        } else {
                            (((w / total) * slice as f64).round() as u64).max(1)
                        }
                    })
                    .collect()
            }
        };
        let mut expected = 0;
        for (i, &share) in shares.iter().enumerate() {
            if share > 0 && !done[i] {
                grant_txs[i].send(Grant::Rounds(share)).expect("worker alive");
                expected += 1;
            }
        }
        if expected == 0 {
            break;
        }
        for _ in 0..expected {
            let r = result_rx.recv().expect("worker reports");
            rates[r.idx] = r.recent_rate;
            done[r.idx] = r.exhausted;
            rounds_used[r.idx] = r.rounds_used;
        }
    }
    for tx in &grant_txs {
        let _ = tx.send(Grant::Finish);
    }
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    for r in result_rx.iter() {
        if let Some(report) = r.report {
            finals[r.idx] = Some(report);
        }
    }
    for h in handles {
        h.join().expect("fleet worker panicked");
    }
    let sources: Vec<CrawlReport> =
        finals.into_iter().map(|r| r.expect("every worker reported")).collect();
    let total_rounds = sources.iter().map(|r| r.elapsed_rounds()).sum();
    FleetReport { sources, total_rounds, health: vec![JobHealth::default(); n] }
}

/// Substitutes the fleet's [`FleetConfig::default_retry`] into a job left on
/// the fail-fast [`RetryPolicy::default`]. An explicitly chosen schedule
/// (any non-default field) passes through untouched; an explicit
/// *fail-fast* wish must be expressed with a non-default schedule, since it
/// is indistinguishable from the unset default.
fn apply_default_retry(job_config: &mut CrawlConfig, fleet: &FleetConfig) {
    if job_config.retry == RetryPolicy::default() {
        job_config.retry = fleet.default_retry;
    }
}

/// Everything the supervisor needs to (re)spawn one job's worker.
struct JobSpec<S: DataSource> {
    source: S,
    policy: PolicyKind,
    seeds: Vec<(String, String)>,
    config: CrawlConfig,
}

impl<S: DataSource + Clone + Send + 'static> JobSpec<S> {
    /// Spawns a worker for this job, fresh (seeds) or resumed from a
    /// checkpoint. The stepping loop runs under `catch_unwind`; on a panic
    /// the worker reports `panicked` and dies, leaving restart policy to the
    /// supervisor.
    fn spawn(
        &self,
        idx: usize,
        result_tx: mpsc::Sender<SliceResult>,
        resume_from: Option<crate::checkpoint::Checkpoint>,
    ) -> (mpsc::Sender<Grant>, std::thread::JoinHandle<()>) {
        let (grant_tx, grant_rx) = mpsc::channel::<Grant>();
        let source = self.source.clone();
        let policy = self.policy.clone();
        let seeds = self.seeds.clone();
        let config = self.config.clone();
        let handle = std::thread::spawn(move || {
            let mut crawler = match &resume_from {
                Some(cp) => Crawler::resume(source, policy.build(), cp, config),
                None => {
                    let mut c = Crawler::new(source, policy.build(), config);
                    for (a, v) in &seeds {
                        c.add_seed(a, v);
                    }
                    c
                }
            };
            let mut exhausted = false;
            while let Ok(grant) = grant_rx.recv() {
                match grant {
                    Grant::Rounds(rounds) => {
                        let target = crawler.elapsed_rounds() + rounds;
                        let stepped =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let mut ex = exhausted;
                                while !ex && crawler.elapsed_rounds() < target {
                                    if crawler.step().is_none() {
                                        ex = true;
                                    }
                                }
                                ex
                            }));
                        match stepped {
                            Ok(ex) => {
                                exhausted = ex;
                                let recent_rate = crawler
                                    .state()
                                    .recent_harvest_mean(8)
                                    .unwrap_or(if exhausted { 0.0 } else { 1.0 });
                                let _ = result_tx.send(SliceResult {
                                    idx,
                                    rounds_used: crawler.elapsed_rounds(),
                                    recent_rate,
                                    fault_streak: crawler.fault_streak(),
                                    exhausted,
                                    panicked: false,
                                    report: None,
                                });
                            }
                            Err(_) => {
                                // The crawler's in-memory state is suspect
                                // now; report the crash and die. The
                                // supervisor restarts from the last durable
                                // checkpoint, not from this wreck.
                                let _ = result_tx.send(SliceResult {
                                    idx,
                                    rounds_used: 0,
                                    recent_rate: 0.0,
                                    fault_streak: 0,
                                    exhausted: false,
                                    panicked: true,
                                    report: None,
                                });
                                return;
                            }
                        }
                    }
                    Grant::Finish => {
                        let stop = if exhausted {
                            StopReason::FrontierExhausted
                        } else {
                            StopReason::RoundBudget
                        };
                        let rounds_used = crawler.elapsed_rounds();
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used,
                            recent_rate: 0.0,
                            fault_streak: 0,
                            exhausted,
                            panicked: false,
                            report: Some(crawler.into_report(stop)),
                        });
                        return;
                    }
                }
            }
        });
        (grant_tx, handle)
    }

    /// The last persisted checkpoint for this job, if any generation loads.
    fn load_checkpoint(&self) -> Option<crate::checkpoint::Checkpoint> {
        let store = self.config.checkpoint_store.as_ref()?;
        store.load_or_backup().ok().map(|(cp, _)| cp)
    }

    /// A supervisor-side final report for a job whose worker is gone:
    /// whatever the last checkpoint proves was harvested, under `stop`.
    fn synthesize_report(&self, stop: StopReason) -> CrawlReport {
        match self.load_checkpoint() {
            Some(cp) => {
                Crawler::resume(self.source.clone(), self.policy.build(), &cp, self.config.clone())
                    .into_report(stop)
            }
            None => Crawler::new(self.source.clone(), self.policy.build(), self.config.clone())
                .into_report(stop),
        }
    }
}

/// Runs the fleet with crash supervision and per-source circuit breakers.
///
/// Semantics of [`run_fleet`] plus the fault tolerance described in the
/// [module docs](self): panicking workers are restarted from their job's
/// last persisted checkpoint (up to [`FleetConfig::max_restarts`] times,
/// then abandoned with [`StopReason::WorkerFailed`]), jobs whose failure
/// streak trips their [`CircuitBreaker`] are paused and their budget flows
/// to healthy jobs, and [`FleetReport::health`] carries the per-job tallies.
///
/// Requires `S: Clone` so the supervisor can hand a fresh source handle to
/// restarted workers — the shape real fleets already have
/// (`Arc<WebDbServer>`, [`crate::FaultPlanSource`]).
pub fn run_fleet_supervised<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Clone + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    let n = jobs.len();
    if n == 0 {
        return FleetReport { sources: Vec::new(), total_rounds: 0, health: Vec::new() };
    }
    let specs: Vec<JobSpec<S>> = jobs
        .into_iter()
        .map(|mut job| {
            apply_default_retry(&mut job.config, &config);
            JobSpec { source: job.source, policy: job.policy, seeds: job.seeds, config: job.config }
        })
        .collect();
    let (result_tx, result_rx) = mpsc::channel::<SliceResult>();
    let mut grant_txs = Vec::with_capacity(n);
    let mut handles: Vec<Option<std::thread::JoinHandle<()>>> = Vec::with_capacity(n);
    for (idx, spec) in specs.iter().enumerate() {
        let (tx, handle) = spec.spawn(idx, result_tx.clone(), None);
        grant_txs.push(tx);
        handles.push(Some(handle));
    }

    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    let mut rounds_used = vec![0u64; n];
    let mut breakers: Vec<CircuitBreaker> =
        (0..n).map(|_| CircuitBreaker::new(config.breaker)).collect();
    // One supervision event stream per job; `FleetReport::health` is derived
    // from these, never tallied by hand.
    let mut supervision: Vec<MetricsRegistry> = (0..n).map(|_| MetricsRegistry::new()).collect();
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        // One allocation round passes: open breakers cool toward half-open.
        for (i, b) in breakers.iter_mut().enumerate() {
            if let Some((from, to)) = b.tick() {
                supervision[i].record(&CrawlEvent::BreakerTransition { job: i as u32, from, to });
            }
        }
        let active: Vec<usize> = (0..n).filter(|&i| !done[i] && !breakers[i].is_open()).collect();
        if active.is_empty() {
            // Every live job is paused; the round passes idle until a
            // breaker reaches its half-open probe (tick guarantees progress).
            continue;
        }
        let slice = remaining.min(config.slice);
        let shares: Vec<u64> = match config.allocation {
            AllocationStrategy::Even => {
                let each = (slice / active.len() as u64).max(1);
                active.iter().map(|_| each).collect()
            }
            AllocationStrategy::HarvestProportional => {
                const FLOOR: f64 = 0.05;
                let weights: Vec<f64> = active.iter().map(|&i| rates[i].max(FLOOR)).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| (((w / total) * slice as f64).round() as u64).max(1))
                    .collect()
            }
        };
        for (k, &i) in active.iter().enumerate() {
            grant_txs[i].send(Grant::Rounds(shares[k])).expect("worker alive");
        }
        for _ in 0..active.len() {
            let r = result_rx.recv().expect("worker reports");
            if r.panicked {
                // The worker announced its own death; reap the thread, then
                // restart from the last durable checkpoint or abandon.
                if let Some(h) = handles[r.idx].take() {
                    let _ = h.join();
                }
                if supervision[r.idx].worker_restarts() >= config.max_restarts {
                    supervision[r.idx].record(&CrawlEvent::JobAbandoned { job: r.idx as u32 });
                    done[r.idx] = true;
                    finals[r.idx] = Some(specs[r.idx].synthesize_report(StopReason::WorkerFailed));
                } else {
                    supervision[r.idx].record(&CrawlEvent::WorkerRestarted { job: r.idx as u32 });
                    let resume = specs[r.idx].load_checkpoint();
                    if let Some(cp) = &resume {
                        // The checkpointed rounds stay billed; only the work
                        // since the last snapshot is repeated.
                        rounds_used[r.idx] = rounds_used[r.idx].max(cp.rounds);
                    }
                    let (tx, handle) = specs[r.idx].spawn(r.idx, result_tx.clone(), resume);
                    grant_txs[r.idx] = tx;
                    handles[r.idx] = Some(handle);
                }
            } else {
                rates[r.idx] = r.recent_rate;
                done[r.idx] |= r.exhausted;
                rounds_used[r.idx] = rounds_used[r.idx].max(r.rounds_used);
                if let Some((from, to)) = breakers[r.idx].observe(r.fault_streak) {
                    supervision[r.idx].record(&CrawlEvent::BreakerTransition {
                        job: r.idx as u32,
                        from,
                        to,
                    });
                }
            }
        }
    }
    for (i, tx) in grant_txs.iter().enumerate() {
        if finals[i].is_none() {
            let _ = tx.send(Grant::Finish);
        }
    }
    drop(result_tx);
    for r in result_rx.iter() {
        if let Some(report) = r.report {
            rounds_used[r.idx] = rounds_used[r.idx].max(r.rounds_used);
            finals[r.idx] = Some(report);
        }
    }
    for h in handles.into_iter().flatten() {
        let _ = h.join();
    }
    let health: Vec<JobHealth> = supervision.iter().map(MetricsRegistry::job_health).collect();
    let sources: Vec<CrawlReport> = finals
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| specs[i].synthesize_report(StopReason::WorkerFailed)))
        .collect();
    let total_rounds = rounds_used.iter().sum();
    FleetReport { sources, total_rounds, health }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultPlanSource};
    use crate::store::CheckpointStore;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};
    use std::sync::Arc;

    fn figure1_server() -> WebDbServer {
        let t = dwc_model::fixtures::figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn scratch_store(name: &str) -> CheckpointStore {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dwc-fleet-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        CheckpointStore::new(dir.join("job.ckpt"))
    }

    fn job(seed_value: &str) -> FleetJob<WebDbServer> {
        FleetJob {
            source: figure1_server(),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), seed_value.to_string())],
            config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let report = run_fleet(Vec::<FleetJob<WebDbServer>>::new(), FleetConfig::default());
        assert_eq!(report.total_records(), 0);
    }

    #[test]
    fn fleet_crawls_every_source_to_exhaustion() {
        let jobs = vec![job("a2"), job("a2"), job("a3")];
        let config = FleetConfig::builder()
            .total_rounds(1000)
            .slice(10)
            .allocation(AllocationStrategy::Even)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 3);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
        // Source 2 was seeded from a3 and also reaches everything (connected).
        assert_eq!(report.sources[2].records, 5);
        assert!(report.total_rounds <= 1000);
    }

    #[test]
    fn budget_is_respected() {
        let jobs = vec![job("a2"), job("a2")];
        let config = FleetConfig::builder().total_rounds(4).slice(2).build().unwrap();
        let report = run_fleet(jobs, config);
        assert!(
            report.total_rounds <= 6,
            "slight overshoot ≤ one query per source allowed, got {}",
            report.total_rounds
        );
        assert!(report.total_records() > 0);
    }

    #[test]
    fn proportional_allocation_finishes_too() {
        let jobs = vec![job("a2"), job("a1")];
        let config = FleetConfig::builder()
            .total_rounds(100)
            .slice(4)
            .allocation(AllocationStrategy::HarvestProportional)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        assert_eq!(
            FleetConfig::builder().total_rounds(0).build().unwrap_err(),
            ConfigError::ZeroBudget("total_rounds")
        );
        assert_eq!(
            FleetConfig::builder().slice(0).build().unwrap_err(),
            ConfigError::ZeroBudget("slice")
        );
    }

    #[test]
    fn two_jobs_share_one_source() {
        // Two workers crawl the SAME server (different seed regions) — the
        // Arc handles land every request on one global round counter.
        let shared = Arc::new(figure1_server());
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5, "each worker harvests the full database");
        }
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(
            summed,
            shared.rounds_used(),
            "per-worker request counts must add up to the shared global counter"
        );
    }

    /// A one-job supervised fleet over a fault-plan-wrapped shared server.
    fn supervised_job(
        plan: FaultPlan,
        store: Option<CheckpointStore>,
    ) -> FleetJob<FaultPlanSource<Arc<WebDbServer>>> {
        let mut builder = CrawlConfig::builder().known_target_size(5).max_requeues(10);
        if let Some(store) = store {
            builder = builder.checkpoint_store(store).checkpoint_every(1);
        }
        FleetJob {
            source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), "a2".to_string())],
            config: builder.build().unwrap(),
        }
    }

    #[test]
    fn supervised_fleet_without_faults_matches_plain() {
        let jobs =
            vec![supervised_job(FaultPlan::new(), None), supervised_job(FaultPlan::new(), None)];
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5);
        }
        assert_eq!(report.breaker_trips(), 0);
        assert_eq!(report.worker_restarts(), 0);
        assert!(report.health.iter().all(|h| !h.abandoned));
    }

    #[test]
    fn panicking_worker_restarts_from_checkpoint_and_finishes() {
        let store = scratch_store("restart");
        let jobs = vec![supervised_job(FaultPlan::new().panic_at(4), Some(store.clone()))];
        let config = FleetConfig::builder().total_rounds(1000).slice(5).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert_eq!(report.health[0].worker_restarts, 1, "one injected crash, one restart");
        assert!(!report.health[0].abandoned);
        assert_eq!(report.sources[0].records, 5, "recovery must lose no records");
        assert!(store.exists(), "periodic checkpoints were persisted");
    }

    #[test]
    fn worker_without_restart_budget_is_abandoned() {
        let store = scratch_store("abandon");
        // Panic on every early request: even restarted workers die again.
        let plan = FaultPlan::new().panic_at(1).panic_at(2).panic_at(3).panic_at(4);
        let jobs = vec![supervised_job(plan, Some(store))];
        let config =
            FleetConfig::builder().total_rounds(1000).slice(5).max_restarts(2).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert!(report.health[0].abandoned);
        assert_eq!(report.health[0].worker_restarts, 2, "restart budget spent before abandoning");
        assert_eq!(report.sources[0].stop, StopReason::WorkerFailed);
    }

    #[test]
    fn breaker_trips_on_burst_and_recovers() {
        let store = scratch_store("breaker");
        // 20 consecutive transient failures starting at request 4: long
        // enough that a slice boundary lands mid-burst with a live streak.
        let jobs = vec![supervised_job(FaultPlan::new().burst(4, 20), Some(store))];
        let config = FleetConfig::builder()
            .total_rounds(4000)
            .slice(8)
            .breaker(BreakerConfig { trip_after: 3, cooldown: 1 })
            .build()
            .unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert!(report.breaker_trips() >= 1, "the burst must trip the breaker");
        assert!(report.breaker_recoveries() >= 1, "the probe after the burst must recover");
        assert_eq!(report.sources[0].records, 5, "zero records lost through the pause");
        assert!(!report.health[0].abandoned);
    }

    #[test]
    fn default_retry_substituted_only_for_default_jobs() {
        let fleet = FleetConfig::default();
        let mut on_default = CrawlConfig::default();
        apply_default_retry(&mut on_default, &fleet);
        assert_eq!(on_default.retry, fleet.default_retry, "default jobs get fleet retries");
        let explicit = RetryPolicy { max_retries: 2, backoff_base: 3, backoff_cap: 10 };
        let mut custom = CrawlConfig { retry: explicit, ..CrawlConfig::default() };
        apply_default_retry(&mut custom, &fleet);
        assert_eq!(custom.retry, explicit, "explicit schedules pass through");
    }

    #[test]
    fn shared_source_with_faults_loses_no_records() {
        // The ISSUE acceptance scenario: two crawlers share one server with
        // FaultPolicy::every(7); retries (billed as rounds + backoff) must
        // still deliver every record to both workers.
        let shared = Arc::new(figure1_server().with_faults(FaultPolicy::every(7)));
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder()
                    .known_target_size(5)
                    .max_retries(32)
                    .build()
                    .unwrap(),
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(4000).slice(50).build().unwrap();
        let report = run_fleet(jobs, config);
        for r in &report.sources {
            assert_eq!(r.records, 5, "zero records may be lost to faults");
        }
        let failures: u64 = report.sources.iter().map(|r| r.transient_failures).sum();
        assert!(failures > 0, "the fault schedule must actually have fired");
        assert_eq!(failures, shared.faults_injected());
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(summed, shared.rounds_used(), "failed rounds are billed too");
    }
}
