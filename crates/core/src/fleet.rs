//! Multi-source fleet crawling.
//!
//! The paper closes with "our future work also includes the implementation
//! and deployment of a real world product database crawler" — a crawler that
//! faces *many* sources at once under one global communication budget (e.g.
//! a comparison-shopping engine harvesting every DVD store it knows). This
//! module provides that deployment layer on top of [`crate::Crawler`]:
//!
//! * each source runs its own crawler (own policy, own vocabulary, own
//!   `DB_local`) on its own worker thread;
//! * the global budget is handed out in *slices*, split across sources by an
//!   [`AllocationStrategy`]: evenly, or proportionally to each source's
//!   observed recent harvest rate — the fleet-level analogue of per-query
//!   selection (spend the next rounds where they buy the most new records);
//! * a source whose frontier dries up stops drawing budget, and under
//!   proportional allocation a saturating source gradually loses budget to
//!   fresher ones.

use crate::crawler::{CrawlConfig, CrawlReport, Crawler, StopReason};
use crate::policy::PolicyKind;
use dwc_server::WebDbServer;
use std::sync::mpsc;

/// How the global round budget is divided across sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Every active source gets the same share of every slice.
    Even,
    /// Each slice is divided proportionally to the sources' mean normalized
    /// harvest rates over their recent queries (floored at 5% so a source is
    /// never starved before it can prove itself).
    HarvestProportional,
}

/// One crawl job of the fleet.
pub struct FleetJob {
    /// The target source.
    pub server: WebDbServer,
    /// Selection policy for this source.
    pub policy: PolicyKind,
    /// Seed values (attribute name, value string).
    pub seeds: Vec<(String, String)>,
    /// Per-source config template (budgets are driven by the fleet; leave
    /// `max_rounds` unset).
    pub config: CrawlConfig,
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total communication rounds across all sources.
    pub total_rounds: u64,
    /// Rounds distributed per allocation slice.
    pub slice: u64,
    /// Budget split strategy.
    pub allocation: AllocationStrategy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { total_rounds: 10_000, slice: 500, allocation: AllocationStrategy::Even }
    }
}

/// Result of a fleet crawl: one report per source, in input order.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-source crawl reports.
    pub sources: Vec<CrawlReport>,
    /// Total rounds actually spent across the fleet.
    pub total_rounds: u64,
}

impl FleetReport {
    /// Total records harvested across all sources.
    pub fn total_records(&self) -> u64 {
        self.sources.iter().map(|r| r.records).sum()
    }
}

enum Grant {
    Rounds(u64),
    Finish,
}

struct SliceResult {
    idx: usize,
    rounds_used: u64,
    recent_rate: f64,
    exhausted: bool,
    report: Option<CrawlReport>,
}

/// Runs the fleet to budget exhaustion (or until every source's frontier is
/// dry). Each source lives on its own worker thread (the crawler borrows its
/// server mutably, so the pair stays together); the coordinator hands out
/// budget grants per slice and collects progress.
pub fn run_fleet(jobs: Vec<FleetJob>, config: FleetConfig) -> FleetReport {
    assert!(config.slice > 0, "slice must be positive");
    let n = jobs.len();
    if n == 0 {
        return FleetReport { sources: Vec::new(), total_rounds: 0 };
    }
    let (result_tx, result_rx) = mpsc::channel::<SliceResult>();
    let mut grant_txs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (idx, job) in jobs.into_iter().enumerate() {
        let (grant_tx, grant_rx) = mpsc::channel::<Grant>();
        grant_txs.push(grant_tx);
        let result_tx = result_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut server = job.server;
            let mut crawler = Crawler::new(&mut server, job.policy.build(), job.config);
            for (a, v) in &job.seeds {
                crawler.add_seed(a, v);
            }
            let mut exhausted = false;
            while let Ok(grant) = grant_rx.recv() {
                match grant {
                    Grant::Rounds(rounds) => {
                        let target = crawler.rounds() + rounds;
                        while !exhausted && crawler.rounds() < target {
                            if crawler.step().is_none() {
                                exhausted = true;
                            }
                        }
                        let recent_rate = crawler
                            .state()
                            .recent_harvest_mean(8)
                            .unwrap_or(if exhausted { 0.0 } else { 1.0 });
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used: crawler.rounds(),
                            recent_rate,
                            exhausted,
                            report: None,
                        });
                    }
                    Grant::Finish => {
                        let rounds_used = crawler.rounds();
                        let stop = if exhausted {
                            StopReason::FrontierExhausted
                        } else {
                            StopReason::RoundBudget
                        };
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used,
                            recent_rate: 0.0,
                            exhausted,
                            report: Some(crawler.into_report(stop)),
                        });
                        break;
                    }
                }
            }
        }));
    }
    drop(result_tx);

    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    let mut rounds_used = vec![0u64; n];
    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        let slice = remaining.min(config.slice);
        let shares: Vec<u64> = match config.allocation {
            AllocationStrategy::Even => {
                let active = done.iter().filter(|&&d| !d).count() as u64;
                (0..n).map(|i| if done[i] { 0 } else { (slice / active.max(1)).max(1) }).collect()
            }
            AllocationStrategy::HarvestProportional => {
                const FLOOR: f64 = 0.05;
                let weights: Vec<f64> =
                    (0..n).map(|i| if done[i] { 0.0 } else { rates[i].max(FLOOR) }).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| {
                        if *w == 0.0 {
                            0
                        } else {
                            (((w / total) * slice as f64).round() as u64).max(1)
                        }
                    })
                    .collect()
            }
        };
        let mut expected = 0;
        for (i, &share) in shares.iter().enumerate() {
            if share > 0 && !done[i] {
                grant_txs[i].send(Grant::Rounds(share)).expect("worker alive");
                expected += 1;
            }
        }
        if expected == 0 {
            break;
        }
        for _ in 0..expected {
            let r = result_rx.recv().expect("worker reports");
            rates[r.idx] = r.recent_rate;
            done[r.idx] = r.exhausted;
            rounds_used[r.idx] = r.rounds_used;
        }
    }
    for tx in &grant_txs {
        let _ = tx.send(Grant::Finish);
    }
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    for r in result_rx.iter() {
        if let Some(report) = r.report {
            finals[r.idx] = Some(report);
        }
    }
    for h in handles {
        h.join().expect("fleet worker panicked");
    }
    let sources: Vec<CrawlReport> =
        finals.into_iter().map(|r| r.expect("every worker reported")).collect();
    let total_rounds = sources.iter().map(|r| r.rounds).sum();
    FleetReport { sources, total_rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_server::InterfaceSpec;

    fn job(seed_value: &str) -> FleetJob {
        let t = dwc_model::fixtures::figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        FleetJob {
            server: WebDbServer::new(t, spec),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), seed_value.to_string())],
            config: CrawlConfig { known_target_size: Some(5), ..Default::default() },
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let report = run_fleet(Vec::new(), FleetConfig::default());
        assert_eq!(report.total_records(), 0);
    }

    #[test]
    fn fleet_crawls_every_source_to_exhaustion() {
        let jobs = vec![job("a2"), job("a2"), job("a3")];
        let config =
            FleetConfig { total_rounds: 1000, slice: 10, allocation: AllocationStrategy::Even };
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 3);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
        // Source 2 was seeded from a3 and also reaches everything (connected).
        assert_eq!(report.sources[2].records, 5);
        assert!(report.total_rounds <= 1000);
    }

    #[test]
    fn budget_is_respected() {
        let jobs = vec![job("a2"), job("a2")];
        let config =
            FleetConfig { total_rounds: 4, slice: 2, allocation: AllocationStrategy::Even };
        let report = run_fleet(jobs, config);
        assert!(report.total_rounds <= 6, "slight overshoot ≤ one query per source allowed, got {}", report.total_rounds);
        assert!(report.total_records() > 0);
    }

    #[test]
    fn proportional_allocation_finishes_too() {
        let jobs = vec![job("a2"), job("a1")];
        let config = FleetConfig {
            total_rounds: 100,
            slice: 4,
            allocation: AllocationStrategy::HarvestProportional,
        };
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
    }
}
