//! Fleet crawling on a bounded work-stealing scheduler.
//!
//! The paper closes with "our future work also includes the implementation
//! and deployment of a real world product database crawler" — a crawler that
//! faces *many* crawl jobs at once under one global communication budget
//! (e.g. a comparison-shopping engine harvesting every DVD store it knows).
//! This module provides that deployment layer on top of [`crate::Crawler`]:
//!
//! * each job is a **parked state machine** around its own crawler (own
//!   policy, own vocabulary, own `DB_local`); between budget slices the
//!   crawler sits in a coordinator-owned slot, owning no thread;
//! * slices are multiplexed onto a bounded [`Pool`] of
//!   [`FleetConfig::workers`] threads (default `available_parallelism`) —
//!   a global injector queue plus per-worker deques with sibling stealing
//!   ([`crate::sched`]), so a 10k-job fleet runs on 8 threads instead of
//!   10k threads × ~8 MB of stack, and one slow source never strands the
//!   queue behind it;
//! * jobs are generic over [`DataSource`], so a fleet can mix distinct
//!   servers with *shared* ones — pass `Arc<WebDbServer>` clones and N
//!   jobs probe the same source concurrently, every page request landing
//!   in the same atomic round counter (partitioned crawling of one large
//!   source, e.g. different seed regions of the same store);
//! * the global budget is handed out in *slices*, split across jobs by an
//!   [`AllocationStrategy`]: evenly, or proportionally to each job's
//!   observed recent harvest rate — the fleet-level analogue of per-query
//!   selection (spend the next rounds where they buy the most new records);
//!   grants in a cycle are clamped to the remaining global budget;
//! * jobs are billed in **elapsed rounds** — page requests plus retry
//!   backoff waits ([`crate::RetryPolicy`]) — so a job stuck retrying a
//!   flaky source drains its own budget, not its siblings';
//! * a job whose frontier dries up stops drawing budget, and under
//!   proportional allocation a saturating job gradually loses budget to
//!   fresher ones;
//! * every scheduling fact is observable: the coordinator records
//!   [`CrawlEvent::SliceScheduled`] / [`CrawlEvent::SliceCompleted`] on a
//!   fleet-level [`MetricsRegistry`], and [`FleetReport::scheduler`] is
//!   derived from that stream ([`MetricsRegistry::scheduler_stats`]).
//!
//! With `workers = 1` the pool drains slices strictly in submission order
//! and the coordinator folds outcomes in that same order, so a fixed-seed
//! fleet run is bit-for-bit reproducible, event stream included.
//!
//! # Supervision
//!
//! [`run_fleet_supervised`] adds crash safety on top (for `Clone` source
//! handles, which is what real fleets hold — `Arc<WebDbServer>` clones or
//! fault-injection wrappers):
//!
//! * every slice runs under [`std::panic::catch_unwind`] — isolation is
//!   per *slice*, not per thread, so a panicking job never takes a pool
//!   worker (or its queued siblings) down with it; the supervisor rebuilds
//!   the victim from its last persisted checkpoint
//!   ([`CrawlConfig::checkpoint_store`]) — completed rounds are not
//!   re-billed, at most one checkpoint interval of work is repeated;
//! * a job that panics more than [`FleetConfig::max_restarts`] times is
//!   abandoned with [`StopReason::WorkerFailed`] instead of wedging the
//!   fleet;
//! * each job runs behind a per-source [`CircuitBreaker`]: a job whose
//!   consecutive-failure streak reaches [`BreakerConfig::trip_after`] is
//!   paused *by not being scheduled* — no thread blocks on it — its budget
//!   flows to healthy jobs, and after the cooldown a half-open probe slice
//!   decides between recovery and another pause;
//! * jobs whose retry policy was left on the fail-fast
//!   [`RetryPolicy::default`] get [`FleetConfig::default_retry`]
//!   substituted, so a fleet never hammers a flaky source without backoff
//!   by accident;
//! * every supervision fact — breaker phase transition, worker restart,
//!   abandonment — is recorded as a [`CrawlEvent`] on a per-job
//!   [`MetricsRegistry`], and [`FleetReport::health`] is *derived* from
//!   those streams ([`MetricsRegistry::job_health`]); the supervisor keeps
//!   no tallies of its own.
//!
//! The original one-OS-thread-per-job engine survives as
//! [`run_fleet_thread_per_job`], the A/B baseline the `fleet_sched` bench
//! gate measures the pool against.

use crate::checkpoint::Checkpoint;
use crate::config::{ConfigError, RetryPolicy};
use crate::crawler::{CrawlConfig, CrawlReport, Crawler, StopReason};
use crate::events::CrawlEvent;
use crate::health::{BreakerConfig, CircuitBreaker, JobHealth};
use crate::metrics::MetricsRegistry;
use crate::policy::PolicyKind;
use crate::sched::{Pool, SchedulerStats, TaskCtx};
use crate::source::DataSource;
use crate::store::CheckpointStore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// How the global round budget is divided across jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Every active job gets the same share of every slice.
    Even,
    /// Each slice is divided proportionally to the jobs' mean normalized
    /// harvest rates over their recent queries (floored at 5% so a job is
    /// never starved before it can prove itself).
    HarvestProportional,
}

/// One crawl job of the fleet.
///
/// `S` is any [`DataSource`] handle a pool worker can own while the job's
/// slice runs: a `WebDbServer` (exclusive), an `Arc<WebDbServer>` (shared
/// with other jobs), or a [`crate::FaultySource`]-wrapped source.
pub struct FleetJob<S: DataSource> {
    /// The target source handle.
    pub source: S,
    /// Selection policy for this job.
    pub policy: PolicyKind,
    /// Seed values (attribute name, value string). Ignored when `resume`
    /// is set — a resumed crawl re-enters its persisted frontier instead.
    pub seeds: Vec<(String, String)>,
    /// Per-job config template (budgets are driven by the fleet; leave
    /// `max_rounds` unset).
    pub config: CrawlConfig,
    /// Start from this checkpoint instead of the seeds (`dwc resume
    /// --workers` routes a resumed crawl through a one-job fleet this way).
    /// The checkpointed rounds count against [`FleetConfig::total_rounds`].
    pub resume: Option<Checkpoint>,
}

/// Fleet-level configuration. Prefer [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total elapsed rounds across all jobs (requests + backoff waits).
    pub total_rounds: u64,
    /// Rounds distributed per allocation slice.
    pub slice: u64,
    /// Budget split strategy.
    pub allocation: AllocationStrategy,
    /// Pool worker threads. `None` (the default) resolves to
    /// `std::thread::available_parallelism()`; the resolved count is capped
    /// at the job count (idle workers buy nothing). `Some(0)` is rejected
    /// by the builder.
    pub workers: Option<usize>,
    /// Retry schedule substituted into any job whose config still carries
    /// the fail-fast [`RetryPolicy::default`] (`max_retries: 0`). Defaults
    /// to 4 retries — a fleet-scale crawl against sources that can throttle
    /// should never fail fast by accident. A job that *wants* to fail fast
    /// must say so with a non-default schedule (e.g. `backoff_cap: 63`).
    pub default_retry: RetryPolicy,
    /// Slice restarts per job before the job is abandoned with
    /// [`StopReason::WorkerFailed`] (supervised fleets).
    pub max_restarts: u32,
    /// Per-source circuit-breaker thresholds (supervised fleets).
    pub breaker: BreakerConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            total_rounds: 10_000,
            slice: 500,
            allocation: AllocationStrategy::Even,
            workers: None,
            default_retry: RetryPolicy::retries(4),
            max_restarts: 3,
            breaker: BreakerConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Starts building a validated configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder { config: FleetConfig::default() }
    }

    /// The worker-thread count this configuration resolves to for a fleet
    /// of `jobs` jobs: the configured [`FleetConfig::workers`] (or
    /// `available_parallelism` when unset), capped at the job count,
    /// floored at 1.
    pub fn resolved_workers(&self, jobs: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.workers.unwrap_or(hw).min(jobs.max(1)).max(1)
    }
}

/// Builder for [`FleetConfig`]; see [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the global round budget. Must be positive.
    pub fn total_rounds(mut self, rounds: u64) -> Self {
        self.config.total_rounds = rounds;
        self
    }

    /// Sets the per-slice grant size. Must be positive.
    pub fn slice(mut self, slice: u64) -> Self {
        self.config.slice = slice;
        self
    }

    /// Sets the budget split strategy.
    pub fn allocation(mut self, allocation: AllocationStrategy) -> Self {
        self.config.allocation = allocation;
        self
    }

    /// Sets the pool worker-thread count. Must be positive; leave unset for
    /// `available_parallelism`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// Sets the retry schedule substituted into jobs left on
    /// [`RetryPolicy::default`].
    pub fn default_retry(mut self, retry: RetryPolicy) -> Self {
        self.config.default_retry = retry;
        self
    }

    /// Sets slice restarts per job before abandonment.
    pub fn max_restarts(mut self, restarts: u32) -> Self {
        self.config.max_restarts = restarts;
        self
    }

    /// Sets the per-source circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetConfig, ConfigError> {
        if self.config.total_rounds == 0 {
            return Err(ConfigError::ZeroBudget("total_rounds"));
        }
        if self.config.slice == 0 {
            return Err(ConfigError::ZeroBudget("slice"));
        }
        if self.config.workers == Some(0) {
            return Err(ConfigError::ZeroBudget("workers"));
        }
        Ok(self.config)
    }
}

/// Result of a fleet crawl: one report per job, in input order.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job crawl reports.
    pub sources: Vec<CrawlReport>,
    /// Total elapsed rounds actually spent across the fleet.
    pub total_rounds: u64,
    /// Per-job fault-tolerance counters, in input order. All-zero for
    /// unsupervised fleets ([`run_fleet`]).
    pub health: Vec<JobHealth>,
    /// Scheduler counters, derived from the fleet-level
    /// [`CrawlEvent::SliceScheduled`] / [`CrawlEvent::SliceCompleted`]
    /// stream. All-zero with `workers = 0` for the thread-per-job baseline
    /// ([`run_fleet_thread_per_job`]), which schedules no slices on a pool.
    pub scheduler: SchedulerStats,
}

impl FleetReport {
    /// Total records harvested across all jobs.
    pub fn total_records(&self) -> u64 {
        self.sources.iter().map(|r| r.records).sum()
    }

    /// Total circuit-breaker trips across all jobs.
    pub fn breaker_trips(&self) -> u64 {
        self.health.iter().map(|h| h.breaker_trips).sum()
    }

    /// Total circuit-breaker recoveries across all jobs.
    pub fn breaker_recoveries(&self) -> u64 {
        self.health.iter().map(|h| h.breaker_recoveries).sum()
    }

    /// Total worker restarts across all jobs.
    pub fn worker_restarts(&self) -> u64 {
        self.health.iter().map(|h| u64::from(h.worker_restarts)).sum()
    }

    fn empty(workers: u32) -> FleetReport {
        FleetReport {
            sources: Vec::new(),
            total_rounds: 0,
            health: Vec::new(),
            scheduler: SchedulerStats { workers, ..SchedulerStats::default() },
        }
    }
}

/// Splits one slice of the remaining budget across the active jobs,
/// returning `(job index, grant)` pairs. Shares follow the strategy's
/// formula, then are clamped so the cycle's grants never sum past the
/// slice (and therefore never past the remaining global budget). Both the
/// pooled engine and the thread-per-job baseline allocate through this one
/// function, which is what makes their grant sequences — and hence their
/// reports on deterministic sources — identical.
fn allocate(
    config: &FleetConfig,
    active: &[usize],
    rates: &[f64],
    remaining: u64,
) -> Vec<(usize, u64)> {
    if active.is_empty() || remaining == 0 {
        return Vec::new();
    }
    let slice = remaining.min(config.slice);
    let shares: Vec<u64> = match config.allocation {
        AllocationStrategy::Even => {
            let each = (slice / active.len() as u64).max(1);
            active.iter().map(|_| each).collect()
        }
        AllocationStrategy::HarvestProportional => {
            const FLOOR: f64 = 0.05;
            let weights: Vec<f64> = active.iter().map(|&i| rates[i].max(FLOOR)).collect();
            let total: f64 = weights.iter().sum();
            weights.iter().map(|w| (((w / total) * slice as f64).round() as u64).max(1)).collect()
        }
    };
    let mut cycle_left = slice;
    active
        .iter()
        .zip(shares)
        .filter_map(|(&i, share)| {
            let grant = share.min(cycle_left);
            cycle_left -= grant;
            (grant > 0).then_some((i, grant))
        })
        .collect()
}

/// One budget slice queued on the pool: a parked crawler plus its grant.
struct SliceTask<S: DataSource> {
    idx: usize,
    crawler: Crawler<S>,
    grant: u64,
}

/// What a pool worker hands back after executing (or crashing on) a slice.
struct SliceOutcome<S: DataSource> {
    idx: usize,
    worker: u32,
    stolen: bool,
    /// Cumulative elapsed rounds after the slice (0 when panicked).
    rounds_total: u64,
    /// Elapsed rounds billed during this slice alone (0 when panicked).
    slice_rounds: u64,
    recent_rate: f64,
    fault_streak: u32,
    exhausted: bool,
    panicked: bool,
    /// The parked crawler, returned to its coordinator slot. `None` when
    /// the slice panicked — the in-memory state is suspect then, and the
    /// supervisor rebuilds from the last durable checkpoint instead.
    crawler: Option<Crawler<S>>,
}

/// Executes one slice on a pool worker: steps the crawler until the grant
/// is spent or the frontier dries up, under `catch_unwind` so a panicking
/// job is isolated per *slice* and the worker thread survives.
fn slice_handler<S: DataSource>(ctx: TaskCtx, mut task: SliceTask<S>) -> SliceOutcome<S> {
    let before = task.crawler.elapsed_rounds();
    let target = before + task.grant;
    let stepped = catch_unwind(AssertUnwindSafe(|| {
        let mut exhausted = false;
        while !exhausted && task.crawler.elapsed_rounds() < target {
            if task.crawler.step().is_none() {
                exhausted = true;
            }
        }
        exhausted
    }));
    match stepped {
        Ok(exhausted) => {
            let recent_rate = task.crawler.state().recent_harvest_mean(8).unwrap_or(if exhausted {
                0.0
            } else {
                1.0
            });
            let rounds_total = task.crawler.elapsed_rounds();
            SliceOutcome {
                idx: task.idx,
                worker: ctx.worker,
                stolen: ctx.stolen,
                rounds_total,
                slice_rounds: rounds_total - before,
                recent_rate,
                fault_streak: task.crawler.fault_streak(),
                exhausted,
                panicked: false,
                crawler: Some(task.crawler),
            }
        }
        Err(_) => SliceOutcome {
            idx: task.idx,
            worker: ctx.worker,
            stolen: ctx.stolen,
            rounds_total: 0,
            slice_rounds: 0,
            recent_rate: 0.0,
            fault_streak: 0,
            exhausted: false,
            panicked: true,
            crawler: None,
        },
    }
}

/// Builds a job's crawler: fresh from its seeds, or resumed from
/// [`FleetJob::resume`].
fn build_crawler<S: DataSource>(job: FleetJob<S>) -> Crawler<S> {
    match &job.resume {
        Some(cp) => Crawler::resume(job.source, job.policy.build(), cp, job.config),
        None => {
            let mut c = Crawler::new(job.source, job.policy.build(), job.config);
            for (a, v) in &job.seeds {
                c.add_seed(a, v);
            }
            c
        }
    }
}

/// How a supervised fleet rebuilds a job after a panic. Only the supervised
/// entry point provides one (it needs `S: Clone`); the plain [`run_fleet`]
/// passes `None` and escalates panics instead.
trait Respawn<S: DataSource> {
    /// The job's last persisted checkpoint, if any generation loads.
    fn load_checkpoint(&self, idx: usize) -> Option<Checkpoint>;
    /// A fresh crawler for the job, resumed from `resume` when given.
    fn rebuild(&self, idx: usize, resume: Option<&Checkpoint>) -> Crawler<S>;
    /// A final report for a job whose crawler is gone: whatever the last
    /// checkpoint proves was harvested, under `stop`.
    fn synthesize_report(&self, idx: usize, stop: StopReason) -> CrawlReport;
}

/// Everything the supervisor needs to rebuild one job.
struct JobSpec<S: DataSource> {
    source: S,
    policy: PolicyKind,
    seeds: Vec<(String, String)>,
    config: CrawlConfig,
    resume: Option<Checkpoint>,
}

impl<S: DataSource + Clone> Respawn<S> for Vec<JobSpec<S>> {
    fn load_checkpoint(&self, idx: usize) -> Option<Checkpoint> {
        let store = self[idx].config.checkpoint_store.as_ref()?;
        store.load_or_backup().ok().map(|(cp, _)| cp)
    }

    fn rebuild(&self, idx: usize, resume: Option<&Checkpoint>) -> Crawler<S> {
        let spec = &self[idx];
        // No durable checkpoint yet: fall back to the job's own starting
        // checkpoint (if it was a resumed job) or its seeds.
        let resume = resume.or(spec.resume.as_ref());
        build_crawler(FleetJob {
            source: spec.source.clone(),
            policy: spec.policy.clone(),
            seeds: spec.seeds.clone(),
            config: spec.config.clone(),
            resume: resume.cloned(),
        })
    }

    fn synthesize_report(&self, idx: usize, stop: StopReason) -> CrawlReport {
        self.rebuild(idx, self.load_checkpoint(idx).as_ref()).into_report(stop)
    }
}

/// The pooled fleet engine behind both [`run_fleet`] and
/// [`run_fleet_supervised`]. The coordinator owns every parked crawler in a
/// slot vector; each allocation cycle it computes grants ([`allocate`]),
/// submits one [`SliceTask`] per granted job to the work-stealing pool, and
/// folds the outcomes back into rates / budget / breaker state before the
/// next cycle. A job is never in flight on two workers at once.
fn run_pooled<S>(
    jobs: Vec<FleetJob<S>>,
    config: FleetConfig,
    respawn: Option<&dyn Respawn<S>>,
) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    let n = jobs.len();
    let workers = config.resolved_workers(n);
    if n == 0 {
        return FleetReport::empty(workers as u32);
    }
    // Final checkpoint handles, kept so a finished job's last state is
    // durable even between periodic checkpoint ticks (what `dwc resume
    // --workers` picks up). The saves happen outside the crawlers' event
    // streams, so reports and replay parity are unaffected.
    let stores: Vec<Option<CheckpointStore>> =
        jobs.iter().map(|j| j.config.checkpoint_store.clone()).collect();
    let mut cells: Vec<Option<Crawler<S>>> = jobs
        .into_iter()
        .map(|mut job| {
            apply_default_retry(&mut job.config, &config);
            Some(build_crawler(job))
        })
        .collect();

    let pool: Pool<SliceTask<S>, SliceOutcome<S>> = Pool::new(workers, slice_handler::<S>);
    let mut fleet_events = MetricsRegistry::new();
    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    // Resumed jobs enter with their checkpointed rounds already billed.
    let mut rounds_used: Vec<u64> =
        cells.iter().map(|c| c.as_ref().map(Crawler::elapsed_rounds).unwrap_or(0)).collect();
    let mut breakers: Option<Vec<CircuitBreaker>> =
        respawn.is_some().then(|| (0..n).map(|_| CircuitBreaker::new(config.breaker)).collect());
    // One supervision event stream per job; `FleetReport::health` is derived
    // from these, never tallied by hand.
    let mut supervision: Vec<MetricsRegistry> = (0..n).map(|_| MetricsRegistry::new()).collect();
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();

    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        // One allocation round passes: open breakers cool toward half-open.
        if let Some(bs) = &mut breakers {
            for (i, b) in bs.iter_mut().enumerate() {
                if let Some((from, to)) = b.tick() {
                    supervision[i].record(&CrawlEvent::BreakerTransition {
                        job: i as u32,
                        from,
                        to,
                    });
                }
            }
        }
        // A tripped job is paused by *not scheduling it* — it holds no
        // thread, its crawler just stays parked in its slot.
        let active: Vec<usize> = (0..n)
            .filter(|&i| !done[i] && breakers.as_ref().is_none_or(|bs| !bs[i].is_open()))
            .collect();
        if active.is_empty() {
            // Every live job is paused; the round passes idle until a
            // breaker reaches its half-open probe (tick guarantees progress).
            continue;
        }
        let grants = allocate(&config, &active, &rates, remaining);
        if grants.is_empty() {
            break;
        }
        for &(i, grant) in &grants {
            let crawler = cells[i].take().expect("active job has a parked crawler");
            fleet_events.record(&CrawlEvent::SliceScheduled { job: i as u32, rounds: grant });
            pool.submit(SliceTask { idx: i, crawler, grant });
        }
        for _ in 0..grants.len() {
            let out = pool.recv();
            if out.panicked {
                let Some(respawn) = respawn else {
                    panic!("fleet worker panicked");
                };
                if supervision[out.idx].worker_restarts() >= config.max_restarts {
                    supervision[out.idx].record(&CrawlEvent::JobAbandoned { job: out.idx as u32 });
                    done[out.idx] = true;
                    finals[out.idx] =
                        Some(respawn.synthesize_report(out.idx, StopReason::WorkerFailed));
                } else {
                    supervision[out.idx]
                        .record(&CrawlEvent::WorkerRestarted { job: out.idx as u32 });
                    let cp = respawn.load_checkpoint(out.idx);
                    if let Some(cp) = &cp {
                        // The checkpointed rounds stay billed; only the work
                        // since the last snapshot is repeated.
                        rounds_used[out.idx] = rounds_used[out.idx].max(cp.rounds);
                    }
                    cells[out.idx] = Some(respawn.rebuild(out.idx, cp.as_ref()));
                }
            } else {
                fleet_events.record(&CrawlEvent::SliceCompleted {
                    job: out.idx as u32,
                    worker: out.worker,
                    rounds: out.slice_rounds,
                    stolen: out.stolen,
                });
                rates[out.idx] = out.recent_rate;
                done[out.idx] |= out.exhausted;
                rounds_used[out.idx] = rounds_used[out.idx].max(out.rounds_total);
                if let Some(bs) = &mut breakers {
                    if let Some((from, to)) = bs[out.idx].observe(out.fault_streak) {
                        supervision[out.idx].record(&CrawlEvent::BreakerTransition {
                            job: out.idx as u32,
                            from,
                            to,
                        });
                    }
                }
                cells[out.idx] = Some(out.crawler.expect("intact slice returns its crawler"));
            }
        }
    }
    let _ = pool.join();

    let sources: Vec<CrawlReport> = finals
        .into_iter()
        .enumerate()
        .map(|(i, done_report)| {
            if let Some(report) = done_report {
                return report; // abandoned: synthesized at abandonment time
            }
            let crawler = cells[i].take().expect("unfinished job has a parked crawler");
            if let Some(store) = &stores[i] {
                // Best effort: a failed final save leaves the last periodic
                // generation valid, exactly like CheckpointFailed mid-crawl.
                let _ = store.save(&crawler.checkpoint());
            }
            let stop =
                if done[i] { StopReason::FrontierExhausted } else { StopReason::RoundBudget };
            let report = crawler.into_report(stop);
            rounds_used[i] = rounds_used[i].max(report.elapsed_rounds());
            report
        })
        .collect();
    let health: Vec<JobHealth> = supervision.iter().map(MetricsRegistry::job_health).collect();
    FleetReport {
        sources,
        total_rounds: rounds_used.iter().sum(),
        health,
        scheduler: fleet_events.scheduler_stats(workers as u32),
    }
}

/// Runs the fleet to budget exhaustion (or until every job's frontier is
/// dry) on the bounded work-stealing pool. All accounting is in elapsed
/// rounds (requests + backoff waits). A panicking job brings the fleet down
/// (use [`run_fleet_supervised`] for isolation).
pub fn run_fleet<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    run_pooled(jobs, config, None)
}

/// Runs the fleet on the pool with crash supervision and per-source circuit
/// breakers.
///
/// Semantics of [`run_fleet`] plus the fault tolerance described in the
/// [module docs](self): a slice that panics is caught on the worker, the
/// job is rebuilt from its last persisted checkpoint (up to
/// [`FleetConfig::max_restarts`] times, then abandoned with
/// [`StopReason::WorkerFailed`]), jobs whose failure streak trips their
/// [`CircuitBreaker`] are paused by removal from the run queue, and
/// [`FleetReport::health`] carries the per-job tallies.
///
/// Requires `S: Clone` so the supervisor can hand a fresh source handle to
/// rebuilt jobs — the shape real fleets already have (`Arc<WebDbServer>`,
/// [`crate::FaultPlanSource`]).
pub fn run_fleet_supervised<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Clone + Send + 'static,
{
    let specs: Vec<JobSpec<S>> = jobs
        .iter()
        .map(|job| JobSpec {
            source: job.source.clone(),
            policy: job.policy.clone(),
            seeds: job.seeds.clone(),
            config: {
                let mut c = job.config.clone();
                apply_default_retry(&mut c, &config);
                c
            },
            resume: job.resume.clone(),
        })
        .collect();
    run_pooled(jobs, config, Some(&specs))
}

/// Substitutes the fleet's [`FleetConfig::default_retry`] into a job left on
/// the fail-fast [`RetryPolicy::default`]. An explicitly chosen schedule
/// (any non-default field) passes through untouched; an explicit
/// *fail-fast* wish must be expressed with a non-default schedule, since it
/// is indistinguishable from the unset default.
fn apply_default_retry(job_config: &mut CrawlConfig, fleet: &FleetConfig) {
    if job_config.retry == RetryPolicy::default() {
        job_config.retry = fleet.default_retry;
    }
}

/// Budget grants for the thread-per-job baseline's worker channels.
enum Grant {
    Rounds(u64),
    Finish,
}

/// Per-slice progress report on the baseline's shared result channel.
struct SliceResult {
    idx: usize,
    rounds_used: u64,
    recent_rate: f64,
    exhausted: bool,
    report: Option<CrawlReport>,
}

/// The original fleet engine: one OS thread and one grant channel **per
/// job**, kept as the A/B baseline the `fleet_sched` bench gate measures
/// the pool against. It allocates through the same [`allocate`] function as
/// the pool, so on deterministic sources its [`FleetReport`] matches
/// [`run_fleet`]'s (scheduler section aside — no slices are pooled here).
///
/// Don't use this for real fleets: at 1k+ jobs it burns ~8 MB of stack per
/// job and drowns in context switches — the regime the pooled scheduler
/// exists for.
pub fn run_fleet_thread_per_job<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    let n = jobs.len();
    if n == 0 {
        return FleetReport::empty(0);
    }
    let (result_tx, result_rx) = mpsc::channel::<SliceResult>();
    let mut grant_txs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (idx, mut job) in jobs.into_iter().enumerate() {
        apply_default_retry(&mut job.config, &config);
        let (grant_tx, grant_rx) = mpsc::channel::<Grant>();
        grant_txs.push(grant_tx);
        let result_tx = result_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut crawler = build_crawler(job);
            let mut exhausted = false;
            while let Ok(grant) = grant_rx.recv() {
                match grant {
                    Grant::Rounds(rounds) => {
                        let target = crawler.elapsed_rounds() + rounds;
                        while !exhausted && crawler.elapsed_rounds() < target {
                            if crawler.step().is_none() {
                                exhausted = true;
                            }
                        }
                        let recent_rate = crawler
                            .state()
                            .recent_harvest_mean(8)
                            .unwrap_or(if exhausted { 0.0 } else { 1.0 });
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used: crawler.elapsed_rounds(),
                            recent_rate,
                            exhausted,
                            report: None,
                        });
                    }
                    Grant::Finish => {
                        let rounds_used = crawler.elapsed_rounds();
                        let stop = if exhausted {
                            StopReason::FrontierExhausted
                        } else {
                            StopReason::RoundBudget
                        };
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used,
                            recent_rate: 0.0,
                            exhausted,
                            report: Some(crawler.into_report(stop)),
                        });
                        break;
                    }
                }
            }
        }));
    }
    drop(result_tx);

    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    let mut rounds_used = vec![0u64; n];
    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        let active: Vec<usize> = (0..n).filter(|&i| !done[i]).collect();
        let grants = allocate(&config, &active, &rates, remaining);
        if grants.is_empty() {
            break;
        }
        for &(i, grant) in &grants {
            grant_txs[i].send(Grant::Rounds(grant)).expect("worker alive");
        }
        for _ in 0..grants.len() {
            let r = result_rx.recv().expect("worker reports");
            rates[r.idx] = r.recent_rate;
            done[r.idx] |= r.exhausted;
            rounds_used[r.idx] = r.rounds_used;
        }
    }
    for tx in &grant_txs {
        let _ = tx.send(Grant::Finish);
    }
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    for r in result_rx.iter() {
        if let Some(report) = r.report {
            finals[r.idx] = Some(report);
        }
    }
    for h in handles {
        h.join().expect("fleet worker panicked");
    }
    let sources: Vec<CrawlReport> =
        finals.into_iter().map(|r| r.expect("every worker reported")).collect();
    let total_rounds = sources.iter().map(|r| r.elapsed_rounds()).sum();
    FleetReport {
        sources,
        total_rounds,
        health: vec![JobHealth::default(); n],
        scheduler: SchedulerStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultPlanSource};
    use crate::store::CheckpointStore;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};
    use std::sync::Arc;

    fn figure1_server() -> WebDbServer {
        let t = dwc_model::fixtures::figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn scratch_store(name: &str) -> CheckpointStore {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dwc-fleet-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        CheckpointStore::new(dir.join("job.ckpt"))
    }

    fn job(seed_value: &str) -> FleetJob<WebDbServer> {
        FleetJob {
            source: figure1_server(),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), seed_value.to_string())],
            config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
            resume: None,
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let report = run_fleet(Vec::<FleetJob<WebDbServer>>::new(), FleetConfig::default());
        assert_eq!(report.total_records(), 0);
        assert_eq!(report.scheduler.slices_scheduled, 0);
    }

    #[test]
    fn fleet_crawls_every_source_to_exhaustion() {
        let jobs = vec![job("a2"), job("a2"), job("a3")];
        let config = FleetConfig::builder()
            .total_rounds(1000)
            .slice(10)
            .allocation(AllocationStrategy::Even)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 3);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
        // Source 2 was seeded from a3 and also reaches everything (connected).
        assert_eq!(report.sources[2].records, 5);
        assert!(report.total_rounds <= 1000);
    }

    #[test]
    fn budget_is_respected() {
        let jobs = vec![job("a2"), job("a2")];
        let config = FleetConfig::builder().total_rounds(4).slice(2).build().unwrap();
        let report = run_fleet(jobs, config);
        assert!(
            report.total_rounds <= 6,
            "slight overshoot ≤ one query per source allowed, got {}",
            report.total_rounds
        );
        assert!(report.total_records() > 0);
    }

    #[test]
    fn proportional_allocation_finishes_too() {
        let jobs = vec![job("a2"), job("a1")];
        let config = FleetConfig::builder()
            .total_rounds(100)
            .slice(4)
            .allocation(AllocationStrategy::HarvestProportional)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        assert_eq!(
            FleetConfig::builder().total_rounds(0).build().unwrap_err(),
            ConfigError::ZeroBudget("total_rounds")
        );
        assert_eq!(
            FleetConfig::builder().slice(0).build().unwrap_err(),
            ConfigError::ZeroBudget("slice")
        );
        assert_eq!(
            FleetConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroBudget("workers")
        );
        assert!(FleetConfig::builder().workers(8).build().is_ok());
    }

    #[test]
    fn workers_resolve_capped_at_job_count() {
        let config = FleetConfig::builder().workers(8).build().unwrap();
        assert_eq!(config.resolved_workers(3), 3);
        assert_eq!(config.resolved_workers(100), 8);
        assert_eq!(config.resolved_workers(0), 1);
        let auto = FleetConfig::default();
        assert!(auto.resolved_workers(1000) >= 1);
    }

    #[test]
    fn two_jobs_share_one_source() {
        // Two jobs crawl the SAME server (different seed regions) — the
        // Arc handles land every request on one global round counter.
        let shared = Arc::new(figure1_server());
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
                resume: None,
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5, "each job harvests the full database");
        }
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(
            summed,
            shared.rounds_used(),
            "per-job request counts must add up to the shared global counter"
        );
    }

    #[test]
    fn pooled_report_matches_thread_per_job_baseline() {
        let make = || vec![job("a2"), job("a1"), job("a3"), job("a2")];
        let config = || {
            FleetConfig::builder()
                .total_rounds(300)
                .slice(12)
                .allocation(AllocationStrategy::HarvestProportional)
                .workers(2)
                .build()
                .unwrap()
        };
        let pooled = run_fleet(make(), config());
        let baseline = run_fleet_thread_per_job(make(), config());
        assert_eq!(pooled.sources, baseline.sources, "identical grant sequences, identical jobs");
        assert_eq!(pooled.total_rounds, baseline.total_rounds);
        assert_eq!(pooled.health, baseline.health);
    }

    #[test]
    fn scheduler_stats_account_for_every_slice() {
        let jobs = vec![job("a2"), job("a3")];
        let config =
            FleetConfig::builder().total_rounds(1000).slice(10).workers(2).build().unwrap();
        let report = run_fleet(jobs, config);
        let s = &report.scheduler;
        assert_eq!(s.workers, 2);
        assert!(s.slices_scheduled > 0);
        assert_eq!(s.slices_completed, s.slices_scheduled, "no panics: every slice completes");
        assert_eq!(
            s.per_worker_slices.iter().sum::<u64>(),
            s.slices_completed,
            "per-worker tallies cover every completed slice"
        );
        assert!(s.rounds_executed <= s.rounds_granted, "figure1 queries never overshoot");
        assert_eq!(s.rounds_executed, report.total_rounds);
    }

    #[test]
    fn single_worker_run_is_reproducible() {
        let run = || {
            let jobs = vec![job("a2"), job("a1"), job("a3")];
            let config = FleetConfig::builder()
                .total_rounds(500)
                .slice(7)
                .allocation(AllocationStrategy::HarvestProportional)
                .workers(1)
                .build()
                .unwrap();
            run_fleet(jobs, config)
        };
        let a = run();
        let b = run();
        assert_eq!(a.sources, b.sources, "reports (traces included) must match");
        assert_eq!(a.scheduler, b.scheduler, "the full slice schedule must match");
    }

    #[test]
    fn fleet_resumes_a_job_from_its_checkpoint() {
        let store = scratch_store("fleet-resume");
        let partial_config = CrawlConfig::builder()
            .known_target_size(5)
            .checkpoint_store(store.clone())
            .checkpoint_every(1)
            .build()
            .unwrap();
        let partial = run_fleet(
            vec![FleetJob {
                source: figure1_server(),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), "a2".to_string())],
                config: partial_config.clone(),
                resume: None,
            }],
            FleetConfig::builder().total_rounds(2).slice(2).build().unwrap(),
        );
        assert!(partial.sources[0].records < 5, "tiny budget must stop early");
        let (cp, _) = store.load_or_backup().expect("final checkpoint persisted");
        assert!(cp.rounds > 0);
        let resumed = run_fleet(
            vec![FleetJob {
                source: figure1_server(),
                policy: PolicyKind::GreedyLink,
                seeds: Vec::new(),
                config: partial_config,
                resume: Some(cp.clone()),
            }],
            FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap(),
        );
        assert_eq!(resumed.sources[0].records, 5, "resume finishes the crawl");
        assert!(
            resumed.total_rounds >= cp.rounds,
            "checkpointed rounds count against the fleet budget"
        );
    }

    /// A one-job supervised fleet over a fault-plan-wrapped shared server.
    fn supervised_job(
        plan: FaultPlan,
        store: Option<CheckpointStore>,
    ) -> FleetJob<FaultPlanSource<Arc<WebDbServer>>> {
        let mut builder = CrawlConfig::builder().known_target_size(5).max_requeues(10);
        if let Some(store) = store {
            builder = builder.checkpoint_store(store).checkpoint_every(1);
        }
        FleetJob {
            source: FaultPlanSource::new(Arc::new(figure1_server()), plan),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), "a2".to_string())],
            config: builder.build().unwrap(),
            resume: None,
        }
    }

    #[test]
    fn supervised_fleet_without_faults_matches_plain() {
        let jobs =
            vec![supervised_job(FaultPlan::new(), None), supervised_job(FaultPlan::new(), None)];
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5);
        }
        assert_eq!(report.breaker_trips(), 0);
        assert_eq!(report.worker_restarts(), 0);
        assert!(report.health.iter().all(|h| !h.abandoned));
    }

    #[test]
    fn panicking_slice_restarts_from_checkpoint_and_finishes() {
        let store = scratch_store("restart");
        let jobs = vec![supervised_job(FaultPlan::new().panic_at(4), Some(store.clone()))];
        let config = FleetConfig::builder().total_rounds(1000).slice(5).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert_eq!(report.health[0].worker_restarts, 1, "one injected crash, one restart");
        assert!(!report.health[0].abandoned);
        assert_eq!(report.sources[0].records, 5, "recovery must lose no records");
        assert!(store.exists(), "periodic checkpoints were persisted");
    }

    #[test]
    fn job_without_restart_budget_is_abandoned() {
        let store = scratch_store("abandon");
        // Panic on every early request: even rebuilt jobs die again.
        let plan = FaultPlan::new().panic_at(1).panic_at(2).panic_at(3).panic_at(4);
        let jobs = vec![supervised_job(plan, Some(store))];
        let config =
            FleetConfig::builder().total_rounds(1000).slice(5).max_restarts(2).build().unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert!(report.health[0].abandoned);
        assert_eq!(report.health[0].worker_restarts, 2, "restart budget spent before abandoning");
        assert_eq!(report.sources[0].stop, StopReason::WorkerFailed);
    }

    #[test]
    fn breaker_trips_on_burst_and_recovers() {
        let store = scratch_store("breaker");
        // 20 consecutive transient failures starting at request 4: long
        // enough that a slice boundary lands mid-burst with a live streak.
        let jobs = vec![supervised_job(FaultPlan::new().burst(4, 20), Some(store))];
        let config = FleetConfig::builder()
            .total_rounds(4000)
            .slice(8)
            .breaker(BreakerConfig { trip_after: 3, cooldown: 1 })
            .build()
            .unwrap();
        let report = run_fleet_supervised(jobs, config);
        assert!(report.breaker_trips() >= 1, "the burst must trip the breaker");
        assert!(report.breaker_recoveries() >= 1, "the probe after the burst must recover");
        assert_eq!(report.sources[0].records, 5, "zero records lost through the pause");
        assert!(!report.health[0].abandoned);
    }

    #[test]
    fn default_retry_substituted_only_for_default_jobs() {
        let fleet = FleetConfig::default();
        let mut on_default = CrawlConfig::default();
        apply_default_retry(&mut on_default, &fleet);
        assert_eq!(on_default.retry, fleet.default_retry, "default jobs get fleet retries");
        let explicit =
            RetryPolicy { max_retries: 2, backoff_base: 3, backoff_cap: 10, ..Default::default() };
        let mut custom = CrawlConfig { retry: explicit, ..CrawlConfig::default() };
        apply_default_retry(&mut custom, &fleet);
        assert_eq!(custom.retry, explicit, "explicit schedules pass through");
    }

    #[test]
    fn shared_source_with_faults_loses_no_records() {
        // The ISSUE acceptance scenario: two crawlers share one server with
        // FaultPolicy::every(7); retries (billed as rounds + backoff) must
        // still deliver every record to both jobs.
        let shared = Arc::new(figure1_server().with_faults(FaultPolicy::every(7)));
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder()
                    .known_target_size(5)
                    .max_retries(32)
                    .build()
                    .unwrap(),
                resume: None,
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(4000).slice(50).build().unwrap();
        let report = run_fleet(jobs, config);
        for r in &report.sources {
            assert_eq!(r.records, 5, "zero records may be lost to faults");
        }
        let failures: u64 = report.sources.iter().map(|r| r.transient_failures).sum();
        assert!(failures > 0, "the fault schedule must actually have fired");
        assert_eq!(failures, shared.faults_injected());
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(summed, shared.rounds_used(), "failed rounds are billed too");
    }
}
