//! Multi-worker fleet crawling — distinct and *shared* sources.
//!
//! The paper closes with "our future work also includes the implementation
//! and deployment of a real world product database crawler" — a crawler that
//! faces *many* crawl jobs at once under one global communication budget
//! (e.g. a comparison-shopping engine harvesting every DVD store it knows).
//! This module provides that deployment layer on top of [`crate::Crawler`]:
//!
//! * each job runs its own crawler (own policy, own vocabulary, own
//!   `DB_local`) on its own worker thread;
//! * jobs are generic over [`DataSource`], so a fleet can mix distinct
//!   servers with *shared* ones — pass `Arc<WebDbServer>` clones and N
//!   workers probe the same source concurrently, every page request landing
//!   in the same atomic round counter (partitioned crawling of one large
//!   source, e.g. different seed regions of the same store);
//! * the global budget is handed out in *slices*, split across jobs by an
//!   [`AllocationStrategy`]: evenly, or proportionally to each job's
//!   observed recent harvest rate — the fleet-level analogue of per-query
//!   selection (spend the next rounds where they buy the most new records);
//! * workers are billed in **elapsed rounds** — page requests plus retry
//!   backoff waits ([`crate::RetryPolicy`]) — so a worker stuck retrying a
//!   flaky source drains its own budget, not its siblings';
//! * a job whose frontier dries up stops drawing budget, and under
//!   proportional allocation a saturating job gradually loses budget to
//!   fresher ones.

use crate::config::ConfigError;
use crate::crawler::{CrawlConfig, CrawlReport, Crawler, StopReason};
use crate::policy::PolicyKind;
use crate::source::DataSource;
use std::sync::mpsc;

/// How the global round budget is divided across jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Every active job gets the same share of every slice.
    Even,
    /// Each slice is divided proportionally to the jobs' mean normalized
    /// harvest rates over their recent queries (floored at 5% so a job is
    /// never starved before it can prove itself).
    HarvestProportional,
}

/// One crawl job of the fleet.
///
/// `S` is any [`DataSource`] handle the worker thread can own: a
/// `WebDbServer` (exclusive), an `Arc<WebDbServer>` (shared with other
/// workers), or a [`crate::FaultySource`]-wrapped source.
pub struct FleetJob<S: DataSource> {
    /// The target source handle.
    pub source: S,
    /// Selection policy for this job.
    pub policy: PolicyKind,
    /// Seed values (attribute name, value string).
    pub seeds: Vec<(String, String)>,
    /// Per-job config template (budgets are driven by the fleet; leave
    /// `max_rounds` unset).
    pub config: CrawlConfig,
}

/// Fleet-level configuration. Prefer [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total elapsed rounds across all jobs (requests + backoff waits).
    pub total_rounds: u64,
    /// Rounds distributed per allocation slice.
    pub slice: u64,
    /// Budget split strategy.
    pub allocation: AllocationStrategy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { total_rounds: 10_000, slice: 500, allocation: AllocationStrategy::Even }
    }
}

impl FleetConfig {
    /// Starts building a validated configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder { config: FleetConfig::default() }
    }
}

/// Builder for [`FleetConfig`]; see [`FleetConfig::builder`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the global round budget. Must be positive.
    pub fn total_rounds(mut self, rounds: u64) -> Self {
        self.config.total_rounds = rounds;
        self
    }

    /// Sets the per-slice grant size. Must be positive.
    pub fn slice(mut self, slice: u64) -> Self {
        self.config.slice = slice;
        self
    }

    /// Sets the budget split strategy.
    pub fn allocation(mut self, allocation: AllocationStrategy) -> Self {
        self.config.allocation = allocation;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetConfig, ConfigError> {
        if self.config.total_rounds == 0 {
            return Err(ConfigError::ZeroBudget("total_rounds"));
        }
        if self.config.slice == 0 {
            return Err(ConfigError::ZeroBudget("slice"));
        }
        Ok(self.config)
    }
}

/// Result of a fleet crawl: one report per job, in input order.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job crawl reports.
    pub sources: Vec<CrawlReport>,
    /// Total elapsed rounds actually spent across the fleet.
    pub total_rounds: u64,
}

impl FleetReport {
    /// Total records harvested across all jobs.
    pub fn total_records(&self) -> u64 {
        self.sources.iter().map(|r| r.records).sum()
    }
}

enum Grant {
    Rounds(u64),
    Finish,
}

struct SliceResult {
    idx: usize,
    rounds_used: u64,
    recent_rate: f64,
    exhausted: bool,
    report: Option<CrawlReport>,
}

/// Runs the fleet to budget exhaustion (or until every job's frontier is
/// dry). Each job lives on its own worker thread and owns its source handle;
/// the coordinator hands out budget grants per slice and collects progress.
/// All accounting is in elapsed rounds (requests + backoff waits).
pub fn run_fleet<S>(jobs: Vec<FleetJob<S>>, config: FleetConfig) -> FleetReport
where
    S: DataSource + Send + 'static,
{
    assert!(config.slice > 0, "slice must be positive");
    let n = jobs.len();
    if n == 0 {
        return FleetReport { sources: Vec::new(), total_rounds: 0 };
    }
    let (result_tx, result_rx) = mpsc::channel::<SliceResult>();
    let mut grant_txs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (idx, job) in jobs.into_iter().enumerate() {
        let (grant_tx, grant_rx) = mpsc::channel::<Grant>();
        grant_txs.push(grant_tx);
        let result_tx = result_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut crawler = Crawler::new(job.source, job.policy.build(), job.config);
            for (a, v) in &job.seeds {
                crawler.add_seed(a, v);
            }
            let mut exhausted = false;
            while let Ok(grant) = grant_rx.recv() {
                match grant {
                    Grant::Rounds(rounds) => {
                        let target = crawler.elapsed_rounds() + rounds;
                        while !exhausted && crawler.elapsed_rounds() < target {
                            if crawler.step().is_none() {
                                exhausted = true;
                            }
                        }
                        let recent_rate = crawler
                            .state()
                            .recent_harvest_mean(8)
                            .unwrap_or(if exhausted { 0.0 } else { 1.0 });
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used: crawler.elapsed_rounds(),
                            recent_rate,
                            exhausted,
                            report: None,
                        });
                    }
                    Grant::Finish => {
                        let rounds_used = crawler.elapsed_rounds();
                        let stop = if exhausted {
                            StopReason::FrontierExhausted
                        } else {
                            StopReason::RoundBudget
                        };
                        let _ = result_tx.send(SliceResult {
                            idx,
                            rounds_used,
                            recent_rate: 0.0,
                            exhausted,
                            report: Some(crawler.into_report(stop)),
                        });
                        break;
                    }
                }
            }
        }));
    }
    drop(result_tx);

    let mut rates = vec![1.0f64; n];
    let mut done = vec![false; n];
    let mut rounds_used = vec![0u64; n];
    loop {
        let spent: u64 = rounds_used.iter().sum();
        let remaining = config.total_rounds.saturating_sub(spent);
        if remaining == 0 || done.iter().all(|&d| d) {
            break;
        }
        let slice = remaining.min(config.slice);
        let shares: Vec<u64> = match config.allocation {
            AllocationStrategy::Even => {
                let active = done.iter().filter(|&&d| !d).count() as u64;
                (0..n).map(|i| if done[i] { 0 } else { (slice / active.max(1)).max(1) }).collect()
            }
            AllocationStrategy::HarvestProportional => {
                const FLOOR: f64 = 0.05;
                let weights: Vec<f64> =
                    (0..n).map(|i| if done[i] { 0.0 } else { rates[i].max(FLOOR) }).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| {
                        if *w == 0.0 {
                            0
                        } else {
                            (((w / total) * slice as f64).round() as u64).max(1)
                        }
                    })
                    .collect()
            }
        };
        let mut expected = 0;
        for (i, &share) in shares.iter().enumerate() {
            if share > 0 && !done[i] {
                grant_txs[i].send(Grant::Rounds(share)).expect("worker alive");
                expected += 1;
            }
        }
        if expected == 0 {
            break;
        }
        for _ in 0..expected {
            let r = result_rx.recv().expect("worker reports");
            rates[r.idx] = r.recent_rate;
            done[r.idx] = r.exhausted;
            rounds_used[r.idx] = r.rounds_used;
        }
    }
    for tx in &grant_txs {
        let _ = tx.send(Grant::Finish);
    }
    let mut finals: Vec<Option<CrawlReport>> = (0..n).map(|_| None).collect();
    for r in result_rx.iter() {
        if let Some(report) = r.report {
            finals[r.idx] = Some(report);
        }
    }
    for h in handles {
        h.join().expect("fleet worker panicked");
    }
    let sources: Vec<CrawlReport> =
        finals.into_iter().map(|r| r.expect("every worker reported")).collect();
    let total_rounds = sources.iter().map(|r| r.elapsed_rounds()).sum();
    FleetReport { sources, total_rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_server::{FaultPolicy, InterfaceSpec, WebDbServer};
    use std::sync::Arc;

    fn figure1_server() -> WebDbServer {
        let t = dwc_model::fixtures::figure1_table();
        let spec = InterfaceSpec::permissive(t.schema(), 10);
        WebDbServer::new(t, spec)
    }

    fn job(seed_value: &str) -> FleetJob<WebDbServer> {
        FleetJob {
            source: figure1_server(),
            policy: PolicyKind::GreedyLink,
            seeds: vec![("A".into(), seed_value.to_string())],
            config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let report = run_fleet(Vec::<FleetJob<WebDbServer>>::new(), FleetConfig::default());
        assert_eq!(report.total_records(), 0);
    }

    #[test]
    fn fleet_crawls_every_source_to_exhaustion() {
        let jobs = vec![job("a2"), job("a2"), job("a3")];
        let config = FleetConfig::builder()
            .total_rounds(1000)
            .slice(10)
            .allocation(AllocationStrategy::Even)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 3);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
        // Source 2 was seeded from a3 and also reaches everything (connected).
        assert_eq!(report.sources[2].records, 5);
        assert!(report.total_rounds <= 1000);
    }

    #[test]
    fn budget_is_respected() {
        let jobs = vec![job("a2"), job("a2")];
        let config = FleetConfig::builder().total_rounds(4).slice(2).build().unwrap();
        let report = run_fleet(jobs, config);
        assert!(
            report.total_rounds <= 6,
            "slight overshoot ≤ one query per source allowed, got {}",
            report.total_rounds
        );
        assert!(report.total_records() > 0);
    }

    #[test]
    fn proportional_allocation_finishes_too() {
        let jobs = vec![job("a2"), job("a1")];
        let config = FleetConfig::builder()
            .total_rounds(100)
            .slice(4)
            .allocation(AllocationStrategy::HarvestProportional)
            .build()
            .unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        assert_eq!(report.sources[0].records, 5);
        assert_eq!(report.sources[1].records, 5);
    }

    #[test]
    fn builder_rejects_zero_parameters() {
        assert_eq!(
            FleetConfig::builder().total_rounds(0).build().unwrap_err(),
            ConfigError::ZeroBudget("total_rounds")
        );
        assert_eq!(
            FleetConfig::builder().slice(0).build().unwrap_err(),
            ConfigError::ZeroBudget("slice")
        );
    }

    #[test]
    fn two_jobs_share_one_source() {
        // Two workers crawl the SAME server (different seed regions) — the
        // Arc handles land every request on one global round counter.
        let shared = Arc::new(figure1_server());
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder().known_target_size(5).build().unwrap(),
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(1000).slice(10).build().unwrap();
        let report = run_fleet(jobs, config);
        assert_eq!(report.sources.len(), 2);
        for r in &report.sources {
            assert_eq!(r.records, 5, "each worker harvests the full database");
        }
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(
            summed,
            shared.rounds_used(),
            "per-worker request counts must add up to the shared global counter"
        );
    }

    #[test]
    fn shared_source_with_faults_loses_no_records() {
        // The ISSUE acceptance scenario: two crawlers share one server with
        // FaultPolicy::every(7); retries (billed as rounds + backoff) must
        // still deliver every record to both workers.
        let shared = Arc::new(figure1_server().with_faults(FaultPolicy::every(7)));
        let jobs: Vec<FleetJob<Arc<WebDbServer>>> = ["a2", "a3"]
            .iter()
            .map(|seed| FleetJob {
                source: Arc::clone(&shared),
                policy: PolicyKind::GreedyLink,
                seeds: vec![("A".into(), seed.to_string())],
                config: CrawlConfig::builder()
                    .known_target_size(5)
                    .max_retries(32)
                    .build()
                    .unwrap(),
            })
            .collect();
        let config = FleetConfig::builder().total_rounds(4000).slice(50).build().unwrap();
        let report = run_fleet(jobs, config);
        for r in &report.sources {
            assert_eq!(r.records, 5, "zero records may be lost to faults");
        }
        let failures: u64 = report.sources.iter().map(|r| r.transient_failures).sum();
        assert!(failures > 0, "the fault schedule must actually have fired");
        assert_eq!(failures, shared.faults_injected());
        let summed: u64 = report.sources.iter().map(|r| r.rounds).sum();
        assert_eq!(summed, shared.rounds_used(), "failed rounds are billed too");
    }
}
