//! Min–Max Mutual-Information query selection (MMMI, §3.3).
//!
//! The greedy link-based policy "always favours popular nodes and does not
//! take into consideration the dependency between the queries to issue and
//! the queries already issued". Once the crawl saturates (the
//! "low marginal benefit" regime, ~85% coverage), MMMI re-ranks the frontier:
//! every candidate gets the score
//!
//! ```text
//! s(q_i) = max_{q_j ∈ L_queried} ln P(q_i, q_j | DB_local)
//!                                   / (P(q_i|DB_local) · P(q_j|DB_local))
//! ```
//!
//! (Definition 3.1) and `L_to-query` is sorted **ascending** — candidates
//! least correlated with past queries first. Scores are recomputed in batch
//! mode ("the dependency information is recomputed when a batch of queries
//! has been issued") because per-record updates would be too expensive.

use crate::policy::greedy::GreedyLink;
use crate::policy::SelectionPolicy;
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use dwc_stats::pmi;
use std::collections::HashMap;

/// Weight `w` of the standardized dependency penalty in the combined MMMI
/// rank key `z(log degree) − w·z(dependency)` (see [`Mmmi::recompute`]).
/// Calibrated on the Figure 4 reproduction: larger weights buy bigger savings
/// in the 85–95% band but defer the block-connector values that guard the
/// very last records.
const MMMI_PENALTY_WEIGHT: f64 = 0.5;

/// When to switch from greedy-link to MMMI ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Saturation {
    /// Switch when true coverage reaches this fraction (controlled
    /// experiments where the harness knows the target size; the paper
    /// switches at 0.85).
    Coverage(f64),
    /// Switch when the mean normalized harvest rate over the last `window`
    /// queries drops below `threshold` (the realistic automatic detector).
    HarvestWindow {
        /// Number of most recent queries averaged.
        window: usize,
        /// Mean normalized harvest rate below which the crawl is saturated.
        threshold: f64,
    },
    /// MMMI ordering from the first query (ablation).
    Immediately,
}

/// MMMI configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmmiConfig {
    /// Switch-over trigger.
    pub trigger: Saturation,
    /// Recompute the dependency scores after this many MMMI-phase queries.
    pub batch: usize,
}

impl Default for MmmiConfig {
    fn default() -> Self {
        // The paper's Figure 4 setting: switch at 85% coverage; batch-mode
        // recomputation every 50 queries.
        MmmiConfig { trigger: Saturation::Coverage(0.85), batch: 50 }
    }
}

/// Greedy-link selection with MMMI re-ranking after saturation (GL+MMMI).
#[derive(Debug)]
pub struct Mmmi {
    config: MmmiConfig,
    greedy: GreedyLink,
    active: bool,
    /// Frontier sorted ascending by dependency score (least dependent first).
    ranked: Vec<ValueId>,
    cursor: usize,
    since_recompute: usize,
}

impl Mmmi {
    /// New GL+MMMI policy.
    pub fn new(config: MmmiConfig) -> Self {
        assert!(config.batch > 0, "batch must be positive");
        Mmmi {
            config,
            greedy: GreedyLink::new(),
            active: false,
            ranked: Vec::new(),
            cursor: 0,
            since_recompute: 0,
        }
    }

    /// Whether the MMMI phase has begun.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn triggered(&self, state: &CrawlState) -> bool {
        match self.config.trigger {
            Saturation::Coverage(c) => state.coverage().is_some_and(|cov| cov >= c),
            Saturation::HarvestWindow { window, threshold } => {
                state.recent_harvest_mean(window).is_some_and(|m| m < threshold)
            }
            Saturation::Immediately => true,
        }
    }

    /// Batch recomputation of Definition 3.1 scores over `DB_local`.
    ///
    /// One pass over the harvested records accumulates, for every
    /// (frontier candidate, issued query) pair that co-occurs, the
    /// co-occurrence count; the dependency of a candidate is its **maximum**
    /// PMI against any issued query (Definition 3.1's min–max).
    ///
    /// Ranking: the paper uses MMMI "together with the greedy link-based
    /// approach", estimating `HR(q) ∝ degree(q)` (§3.2) and
    /// `HR(q) ∝ 1/s(q)` (§3.3). Both signals are standardized over the
    /// current frontier and combined into the rank key
    /// `z(log degree) − w·z(s)`; candidates are selected in descending key
    /// order, so an independent popular value beats both a saturated hub
    /// (high dependency) and an equally independent but unproductive
    /// singleton (no degree).
    fn recompute(&mut self, state: &CrawlState) {
        let n = state.local.num_records();
        // (candidate, issued) → co-occurrence count.
        let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
        let mut scratch_issued: Vec<ValueId> = Vec::new();
        for rec in state.local.records() {
            scratch_issued.clear();
            scratch_issued
                .extend(rec.iter().copied().filter(|&v| state.status_of(v) == CandStatus::Queried));
            if scratch_issued.is_empty() {
                continue;
            }
            for &c in rec {
                if state.status_of(c) != CandStatus::Frontier {
                    continue;
                }
                for &q in &scratch_issued {
                    *pair_counts.entry((c.0, q.0)).or_insert(0) += 1;
                }
            }
        }
        // Max PMI per candidate.
        let mut score: HashMap<u32, f64> = HashMap::new();
        for (&(c, q), &co) in &pair_counts {
            let p = pmi(
                co as usize,
                state.local.count(ValueId(c)) as usize,
                state.local.count(ValueId(q)) as usize,
                n,
            )
            .unwrap_or(f64::NEG_INFINITY);
            let e = score.entry(c).or_insert(f64::NEG_INFINITY);
            if p > *e {
                *e = p;
            }
        }
        self.ranked.clear();
        self.ranked.extend(
            (0..state.status.len() as u32)
                .map(ValueId)
                .filter(|&v| state.status_of(v) == CandStatus::Frontier),
        );
        // Standardize both signals over the current frontier so neither unit
        // dominates: the combined key is z(log-degree) − w·z(dependency) —
        // the greedy productivity signal minus the min–max dependency
        // penalty, each in frontier-relative standard deviations.
        let deg_of = |v: ValueId| (1.0 + f64::from(state.local.degree(v))).ln();
        let dep_of =
            |v: ValueId| score.get(&v.0).copied().unwrap_or(f64::NEG_INFINITY).clamp(-8.0, 8.0);
        let m = self.ranked.len().max(1) as f64;
        let (mut mean_deg, mut mean_dep) = (0.0, 0.0);
        for &v in &self.ranked {
            mean_deg += deg_of(v);
            mean_dep += dep_of(v);
        }
        mean_deg /= m;
        mean_dep /= m;
        let (mut var_deg, mut var_dep) = (0.0, 0.0);
        for &v in &self.ranked {
            var_deg += (deg_of(v) - mean_deg).powi(2);
            var_dep += (dep_of(v) - mean_dep).powi(2);
        }
        let sd_deg = (var_deg / m).sqrt().max(1e-9);
        let sd_dep = (var_dep / m).sqrt().max(1e-9);
        let rank_key = |v: ValueId| -> f64 {
            (deg_of(v) - mean_deg) / sd_deg - MMMI_PENALTY_WEIGHT * (dep_of(v) - mean_dep) / sd_dep
        };
        // Only the next `batch` selections can happen before the scores go
        // stale and this runs again, so a full `O(m log m)` sort of the
        // frontier is wasted work: partition the top `batch` candidates out
        // with `select_nth_unstable` (`O(m)`) and sort just those. The key
        // (id tie-broken) is a strict total order, so the partition — and
        // therefore the selection order — is identical to the full sort's.
        let mut keyed: Vec<(f64, ValueId)> =
            self.ranked.iter().map(|&v| (rank_key(v), v)).collect();
        let cmp = |a: &(f64, ValueId), b: &(f64, ValueId)| {
            b.0.total_cmp(&a.0).then_with(|| (a.1).0.cmp(&(b.1).0))
        };
        let k = self.config.batch.min(keyed.len());
        if k > 0 && k < keyed.len() {
            keyed.select_nth_unstable_by(k - 1, cmp);
            keyed.truncate(k);
        }
        keyed.sort_by(cmp);
        self.ranked.clear();
        self.ranked.extend(keyed.into_iter().map(|(_, v)| v));
        self.cursor = 0;
        self.since_recompute = 0;
    }
}

impl SelectionPolicy for Mmmi {
    fn name(&self) -> &'static str {
        "greedy-link+mmmi"
    }

    fn on_discovered(&mut self, state: &CrawlState, v: ValueId) {
        // Keep the greedy structure warm throughout; during the MMMI phase a
        // newly discovered value is picked up at the next batch recompute.
        self.greedy.on_discovered(state, v);
    }

    fn on_query_done(&mut self, state: &CrawlState, v: ValueId, outcome: &QueryOutcome) {
        self.greedy.on_query_done(state, v, outcome);
        if self.active {
            self.since_recompute += 1;
        }
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        if !self.active {
            if self.triggered(state) {
                self.active = true;
                self.recompute(state);
            } else {
                return self.greedy.select(state);
            }
        }
        if self.since_recompute >= self.config.batch || self.cursor >= self.ranked.len() {
            self.recompute(state);
        }
        while self.cursor < self.ranked.len() {
            let v = self.ranked[self.cursor];
            self.cursor += 1;
            if state.status_of(v) == CandStatus::Frontier {
                return Some(v);
            }
        }
        // Frontier exhausted even after recompute: fall back to greedy (which
        // will also return None when truly done).
        self.greedy.select(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::AttrId;

    fn frontier_state() -> (CrawlState, Vec<ValueId>) {
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let ids: Vec<ValueId> = ["q1", "dependent", "independent", "fresh"]
            .iter()
            .map(|s| st.intern(AttrId(0), s))
            .collect();
        // q1 has been queried; "dependent" co-occurs with q1 in most records,
        // "independent" rarely, "fresh" never.
        st.status[ids[0].index()] = CandStatus::Queried;
        for id in &ids[1..4] {
            st.status[id.index()] = CandStatus::Frontier;
        }
        st.queried.push(ids[0]);
        // 10 records: 6 contain {q1, dependent}, 1 contains {q1, independent},
        // 2 contain {independent}, 1 contains {fresh}.
        let mut key = 0u64;
        for _ in 0..6 {
            st.local.insert(
                {
                    key += 1;
                    key
                },
                vec![ids[0], ids[1]],
            );
        }
        st.local.insert(
            {
                key += 1;
                key
            },
            vec![ids[0], ids[2]],
        );
        for _ in 0..2 {
            st.local.insert(
                {
                    key += 1;
                    key
                },
                vec![ids[2]],
            );
        }
        st.local.insert(
            {
                key += 1;
                key
            },
            vec![ids[3]],
        );
        (st, ids)
    }

    #[test]
    fn mmmi_prefers_least_dependent() {
        let (st, ids) = frontier_state();
        let mut p = Mmmi::new(MmmiConfig { trigger: Saturation::Immediately, batch: 100 });
        for &v in &ids[1..] {
            p.on_discovered(&st, v);
        }
        // Dependencies: PMI(dependent, q1) = ln(6·10/(6·7)) ≈ +0.36 (penalized);
        // PMI(independent, q1) = ln(1·10/(3·7)) < 0 (no penalty);
        // fresh never co-occurs (no penalty). All three have degree ≤ 1, so
        // the positively-dependent candidate must sort last.
        let first = p.select(&st).unwrap();
        assert_ne!(first, ids[1], "positively dependent value must not come first");
        assert!(p.is_active());
    }

    #[test]
    fn dependency_buckets_order_the_frontier() {
        let (mut st, ids) = frontier_state();
        let mut p = Mmmi::new(MmmiConfig { trigger: Saturation::Immediately, batch: 100 });
        for &v in &ids[1..] {
            p.on_discovered(&st, v);
        }
        let mut order = Vec::new();
        while let Some(v) = p.select(&st) {
            order.push(v);
            st.status[v.index()] = CandStatus::Queried;
        }
        // Keys combine z(log-degree) − w·z(dependency): "independent"
        // (degree 1, negative dependency) wins; "dependent" (same degree,
        // positive dependency) is second; "fresh" (degree 0 — no observed
        // productivity at all) comes last despite having no dependency.
        assert_eq!(order, vec![ids[2], ids[1], ids[3]]);
    }

    #[test]
    fn popular_and_less_dependent_wins() {
        // A popular candidate whose occurrences are spread out (PMI ≈ 0)
        // must outrank a singleton fully explained by an issued query
        // (PMI = ln n > 0).
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let q = st.intern(AttrId(0), "q");
        let hub = st.intern(AttrId(0), "hub");
        let tiny = st.intern(AttrId(0), "tiny");
        st.status[q.index()] = CandStatus::Queried;
        st.status[hub.index()] = CandStatus::Frontier;
        st.status[tiny.index()] = CandStatus::Frontier;
        st.queried.push(q);
        // One record with all three; four more spreading hub out.
        let mut key = 0u64;
        st.local.insert(
            {
                key += 1;
                key
            },
            vec![q, hub, tiny],
        );
        for i in 0..4u32 {
            let other = st.intern(AttrId(0), &format!("x{i}"));
            st.local.insert(
                {
                    key += 1;
                    key
                },
                vec![hub, other],
            );
        }
        // PMI(hub, q) = ln(1·5/(5·1)) = 0; PMI(tiny, q) = ln(5) > 0.
        let mut p = Mmmi::new(MmmiConfig { trigger: Saturation::Immediately, batch: 100 });
        p.on_discovered(&st, hub);
        p.on_discovered(&st, tiny);
        assert_eq!(p.select(&st), Some(hub));
    }

    #[test]
    fn top_k_ranking_is_a_prefix_of_the_full_sort() {
        // 20 frontier values with distinct degrees; the batch-5 policy keeps
        // only its top 5 but must hand them out in exactly the order the
        // batch-100 (effectively full-sort) policy does.
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let q = st.intern(AttrId(0), "q");
        st.status[q.index()] = CandStatus::Queried;
        st.queried.push(q);
        let mut key = 0u64;
        let ids: Vec<ValueId> = (0..20u32)
            .map(|i| {
                let v = st.intern(AttrId(0), &format!("v{i}"));
                st.status[v.index()] = CandStatus::Frontier;
                // Give v{i} a degree of i by linking it to i fillers.
                for j in 0..i {
                    let filler = st.intern(AttrId(0), &format!("f{i}_{j}"));
                    key += 1;
                    st.local.insert(key, vec![v, filler]);
                }
                v
            })
            .collect();
        // A couple of dependency edges so scores are not all-absent.
        for &v in &ids[..3] {
            key += 1;
            st.local.insert(key, vec![q, v]);
        }
        let mut small = Mmmi::new(MmmiConfig { trigger: Saturation::Immediately, batch: 5 });
        let mut full = Mmmi::new(MmmiConfig { trigger: Saturation::Immediately, batch: 100 });
        for &v in &ids {
            small.on_discovered(&st, v);
            full.on_discovered(&st, v);
        }
        // No statuses change between selects, so each call walks the cursor.
        let first5_small: Vec<_> = (0..5).map(|_| small.select(&st).unwrap()).collect();
        let first5_full: Vec<_> = (0..5).map(|_| full.select(&st).unwrap()).collect();
        assert_eq!(first5_small, first5_full);
    }

    #[test]
    fn coverage_trigger_switches_late() {
        let (mut st, ids) = frontier_state();
        st.target_size = Some(st.local.num_records()); // coverage = 1.0
        let mut p = Mmmi::new(MmmiConfig { trigger: Saturation::Coverage(0.85), batch: 10 });
        for &v in &ids[1..] {
            p.on_discovered(&st, v);
        }
        let _ = p.select(&st);
        assert!(p.is_active(), "coverage 1.0 ≥ 0.85 must trigger");
    }

    #[test]
    fn stays_greedy_before_trigger() {
        let (mut st, ids) = frontier_state();
        st.target_size = Some(1_000_000); // coverage ≈ 0
        let mut p = Mmmi::new(MmmiConfig { trigger: Saturation::Coverage(0.85), batch: 10 });
        for &v in &ids[1..] {
            p.on_discovered(&st, v);
        }
        let first = p.select(&st).unwrap();
        assert!(!p.is_active());
        // Greedy picks the max-degree frontier value: "dependent" (degree 1)
        // ties with "independent" (degree 1)… degree of dependent = 1
        // (edge to q1), independent = 1 (edge to q1), fresh = 0.
        assert!(first == ids[1] || first == ids[2]);
    }

    #[test]
    fn harvest_window_trigger() {
        let (mut st, ids) = frontier_state();
        let mut p = Mmmi::new(MmmiConfig {
            trigger: Saturation::HarvestWindow { window: 3, threshold: 0.2 },
            batch: 10,
        });
        for &v in &ids[1..] {
            p.on_discovered(&st, v);
        }
        st.push_harvest(0.1);
        st.push_harvest(0.1);
        assert!(!p.triggered(&st), "window not yet full");
        st.push_harvest(0.1);
        assert!(p.triggered(&st));
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn zero_batch_rejected() {
        let _ = Mmmi::new(MmmiConfig { trigger: Saturation::Immediately, batch: 0 });
    }
}
