//! The greedy relational-link-based policy of §3.2.
//!
//! "At each step it selects from L_to-query the next attribute value with
//! greatest link number in G_local for query formulation. In other words, the
//! greedy link-based algorithm estimates HR(q_i) as proportional to
//! degree(q_i, G_local)."
//!
//! Implementation: a lazy max-heap over `(degree, value)`. Degrees only grow,
//! so whenever a query's new records touch a frontier value, a fresh entry
//! with the current degree is pushed; stale entries (stored degree ≠ current
//! degree, or value no longer in the frontier) are discarded on pop. The
//! newest entry for a value always carries its true degree, so the pop order
//! is exact max-degree selection.

use crate::policy::SelectionPolicy;
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use std::collections::BinaryHeap;

/// Greedy link-based query selection (GL).
#[derive(Debug, Default)]
pub struct GreedyLink {
    /// Packed `(degree << 32) | value_id` max-heap entries.
    heap: BinaryHeap<u64>,
    /// Live entry count as of the last compaction — the baseline the stale
    /// threshold is measured against.
    live_after_compact: usize,
}

/// Heap size below which compaction is never attempted (tiny crawls churn
/// freely without paying the rebuild).
const COMPACT_MIN: usize = 32;

#[inline]
fn pack(degree: u32, v: ValueId) -> u64 {
    (u64::from(degree) << 32) | u64::from(v.0)
}

#[inline]
fn unpack(e: u64) -> (u32, ValueId) {
    ((e >> 32) as u32, ValueId(e as u32))
}

impl GreedyLink {
    /// New empty GL frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (possibly stale) heap entries — diagnostics only.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Rebuilds the heap from its live entries once stale ones outnumber
    /// live 2:1 (heap > 3× the last live count). Long crawls re-push every
    /// touched frontier value per query, so without this the lazy heap
    /// grows with total churn instead of frontier size.
    fn maybe_compact(&mut self, state: &CrawlState) {
        if self.heap.len() <= COMPACT_MIN.max(3 * self.live_after_compact) {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut seen = std::collections::HashSet::with_capacity(entries.len());
        let mut kept = Vec::with_capacity(entries.len() / 3);
        for e in entries {
            let (degree, v) = unpack(e);
            if state.status_of(v) == CandStatus::Frontier
                && degree == state.local.degree(v)
                && seen.insert(v.0)
            {
                kept.push(e);
            }
        }
        self.live_after_compact = kept.len();
        self.heap = BinaryHeap::from(kept);
    }
}

impl SelectionPolicy for GreedyLink {
    fn name(&self) -> &'static str {
        "greedy-link"
    }

    fn on_discovered(&mut self, state: &CrawlState, v: ValueId) {
        self.heap.push(pack(state.local.degree(v), v));
        self.maybe_compact(state);
    }

    fn on_query_done(&mut self, state: &CrawlState, _v: ValueId, outcome: &QueryOutcome) {
        for &v in &outcome.touched_values {
            if state.status_of(v) == CandStatus::Frontier {
                self.heap.push(pack(state.local.degree(v), v));
            }
        }
        self.maybe_compact(state);
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        while let Some(e) = self.heap.pop() {
            let (stored_degree, v) = unpack(e);
            if state.status_of(v) != CandStatus::Frontier {
                continue; // already queried (or never selectable)
            }
            if stored_degree != state.local.degree(v) {
                continue; // stale — a fresher entry exists further up
            }
            return Some(v);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::AttrId;

    /// Builds a state where values have controlled local degrees by inserting
    /// records into DB_local directly.
    fn seeded_state() -> (CrawlState, Vec<ValueId>) {
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let ids: Vec<ValueId> = ["hub", "mid", "leaf", "solo"]
            .iter()
            .map(|s| {
                let id = st.intern(AttrId(0), s);
                st.status[id.index()] = CandStatus::Frontier;
                id
            })
            .collect();
        // hub co-occurs with mid, leaf and two extra values; mid with hub and
        // leaf; leaf with hub and mid; solo with nothing.
        let extra1 = st.intern(AttrId(0), "x1");
        let extra2 = st.intern(AttrId(0), "x2");
        st.local.insert(1, vec![ids[0], ids[1], ids[2]]);
        st.local.insert(2, vec![ids[0], extra1]);
        st.local.insert(3, vec![ids[0], extra2]);
        st.local.insert(4, vec![ids[3]]);
        (st, ids)
    }

    #[test]
    fn selects_highest_degree_first() {
        let (st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // Degrees: hub 4, mid 2, leaf 2, solo 0.
        assert_eq!(p.select(&st), Some(ids[0]));
    }

    #[test]
    fn degree_updates_are_respected_via_touched_values() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // "solo" suddenly becomes the biggest hub.
        let extras: Vec<ValueId> = (0..6).map(|i| st.intern(AttrId(0), &format!("y{i}"))).collect();
        let mut rec = vec![ids[3]];
        rec.extend(&extras);
        st.local.insert(99, rec);
        let outcome = QueryOutcome { touched_values: vec![ids[3]], ..Default::default() };
        p.on_query_done(&st, ids[0], &outcome);
        assert_eq!(st.local.degree(ids[3]), 6);
        assert_eq!(p.select(&st), Some(ids[3]), "fresh degree must win");
    }

    #[test]
    fn stale_entries_are_discarded() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // Bump mid's degree without telling the policy: the old entry for
        // mid is now stale; after re-pushing via on_query_done the policy
        // must not return mid twice.
        let e = st.intern(AttrId(0), "z");
        st.local.insert(50, vec![ids[1], e]);
        let outcome = QueryOutcome { touched_values: vec![ids[1]], ..Default::default() };
        p.on_query_done(&st, ids[0], &outcome);
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = p.select(&st) {
            assert!(seen.insert(v), "value {v} selected twice");
            st.status[v.index()] = CandStatus::Queried;
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn exhausted_frontier_returns_none() {
        let (st, _) = seeded_state();
        let mut p = GreedyLink::new();
        assert_eq!(p.select(&st), None);
    }

    #[test]
    fn queried_values_never_returned() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        st.status[ids[0].index()] = CandStatus::Queried;
        let got = p.select(&st);
        assert!(got == Some(ids[1]) || got == Some(ids[2]), "got {got:?}");
    }

    #[test]
    fn heap_stays_bounded_over_a_long_churny_crawl() {
        // 50 frontier values whose degrees change every round: each round
        // inserts a record linking all of them to one fresh filler value,
        // then reports them all touched. The lazy heap would otherwise
        // accumulate 50 stale entries per round (10_000 over the run).
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let ids: Vec<ValueId> = (0..50)
            .map(|i| {
                let id = st.intern(AttrId(0), &format!("v{i}"));
                st.status[id.index()] = CandStatus::Frontier;
                id
            })
            .collect();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        let mut max_len = p.heap_len();
        for round in 0..200u64 {
            let filler = st.intern(AttrId(0), &format!("filler{round}"));
            let mut rec = ids.clone();
            rec.push(filler);
            st.local.insert(1000 + round, rec);
            let outcome = QueryOutcome { touched_values: ids.clone(), ..Default::default() };
            p.on_query_done(&st, ids[0], &outcome);
            max_len = max_len.max(p.heap_len());
        }
        // Live entries never exceed 50 (one fresh per frontier value), so a
        // 2:1 stale ratio caps the heap at ~3×50 plus one round of pushes.
        assert!(max_len <= 3 * ids.len() + 64, "heap peaked at {max_len}");
        // Compaction must not change what gets selected: the freshest entry
        // per value survives, so selection still sees true degrees.
        let picked = p.select(&st).unwrap();
        assert_eq!(st.local.degree(picked), 200 + 49, "all values tie at max degree");
    }

    #[test]
    fn compaction_preserves_selection_order() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // Churn mid's entry hundreds of times to force compactions.
        for i in 0..300u64 {
            let e = st.intern(AttrId(0), &format!("churn{i}"));
            st.local.insert(2000 + i, vec![ids[1], e]);
            let outcome = QueryOutcome { touched_values: vec![ids[1]], ..Default::default() };
            p.on_query_done(&st, ids[0], &outcome);
        }
        assert!(p.heap_len() <= 3 * 4 + COMPACT_MIN, "heap peaked at {}", p.heap_len());
        // mid now has degree 300+, dwarfing hub's 4.
        assert_eq!(p.select(&st), Some(ids[1]));
        st.status[ids[1].index()] = CandStatus::Queried;
        assert_eq!(p.select(&st), Some(ids[0]), "hub is next");
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (d, v) = unpack(pack(12345, ValueId(678)));
        assert_eq!((d, v), (12345, ValueId(678)));
    }
}
