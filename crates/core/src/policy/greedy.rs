//! The greedy relational-link-based policy of §3.2.
//!
//! "At each step it selects from L_to-query the next attribute value with
//! greatest link number in G_local for query formulation. In other words, the
//! greedy link-based algorithm estimates HR(q_i) as proportional to
//! degree(q_i, G_local)."
//!
//! Implementation: a lazy max-heap over `(degree, value)`. Degrees only grow,
//! so whenever a query's new records touch a frontier value, a fresh entry
//! with the current degree is pushed; stale entries (stored degree ≠ current
//! degree, or value no longer in the frontier) are discarded on pop. The
//! newest entry for a value always carries its true degree, so the pop order
//! is exact max-degree selection.

use crate::policy::SelectionPolicy;
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use std::collections::BinaryHeap;

/// Greedy link-based query selection (GL).
#[derive(Debug, Default)]
pub struct GreedyLink {
    /// Packed `(degree << 32) | value_id` max-heap entries.
    heap: BinaryHeap<u64>,
}

#[inline]
fn pack(degree: u32, v: ValueId) -> u64 {
    (u64::from(degree) << 32) | u64::from(v.0)
}

#[inline]
fn unpack(e: u64) -> (u32, ValueId) {
    ((e >> 32) as u32, ValueId(e as u32))
}

impl GreedyLink {
    /// New empty GL frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (possibly stale) heap entries — diagnostics only.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }
}

impl SelectionPolicy for GreedyLink {
    fn name(&self) -> &'static str {
        "greedy-link"
    }

    fn on_discovered(&mut self, state: &CrawlState, v: ValueId) {
        self.heap.push(pack(state.local.degree(v), v));
    }

    fn on_query_done(&mut self, state: &CrawlState, _v: ValueId, outcome: &QueryOutcome) {
        for &v in &outcome.touched_values {
            if state.status_of(v) == CandStatus::Frontier {
                self.heap.push(pack(state.local.degree(v), v));
            }
        }
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        while let Some(e) = self.heap.pop() {
            let (stored_degree, v) = unpack(e);
            if state.status_of(v) != CandStatus::Frontier {
                continue; // already queried (or never selectable)
            }
            if stored_degree != state.local.degree(v) {
                continue; // stale — a fresher entry exists further up
            }
            return Some(v);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::AttrId;

    /// Builds a state where values have controlled local degrees by inserting
    /// records into DB_local directly.
    fn seeded_state() -> (CrawlState, Vec<ValueId>) {
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let ids: Vec<ValueId> = ["hub", "mid", "leaf", "solo"]
            .iter()
            .map(|s| {
                let id = st.intern(AttrId(0), s);
                st.status[id.index()] = CandStatus::Frontier;
                id
            })
            .collect();
        // hub co-occurs with mid, leaf and two extra values; mid with hub and
        // leaf; leaf with hub and mid; solo with nothing.
        let extra1 = st.intern(AttrId(0), "x1");
        let extra2 = st.intern(AttrId(0), "x2");
        st.local.insert(1, vec![ids[0], ids[1], ids[2]]);
        st.local.insert(2, vec![ids[0], extra1]);
        st.local.insert(3, vec![ids[0], extra2]);
        st.local.insert(4, vec![ids[3]]);
        (st, ids)
    }

    #[test]
    fn selects_highest_degree_first() {
        let (st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // Degrees: hub 4, mid 2, leaf 2, solo 0.
        assert_eq!(p.select(&st), Some(ids[0]));
    }

    #[test]
    fn degree_updates_are_respected_via_touched_values() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // "solo" suddenly becomes the biggest hub.
        let extras: Vec<ValueId> = (0..6).map(|i| st.intern(AttrId(0), &format!("y{i}"))).collect();
        let mut rec = vec![ids[3]];
        rec.extend(&extras);
        st.local.insert(99, rec);
        let outcome = QueryOutcome { touched_values: vec![ids[3]], ..Default::default() };
        p.on_query_done(&st, ids[0], &outcome);
        assert_eq!(st.local.degree(ids[3]), 6);
        assert_eq!(p.select(&st), Some(ids[3]), "fresh degree must win");
    }

    #[test]
    fn stale_entries_are_discarded() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        // Bump mid's degree without telling the policy: the old entry for
        // mid is now stale; after re-pushing via on_query_done the policy
        // must not return mid twice.
        let e = st.intern(AttrId(0), "z");
        st.local.insert(50, vec![ids[1], e]);
        let outcome = QueryOutcome { touched_values: vec![ids[1]], ..Default::default() };
        p.on_query_done(&st, ids[0], &outcome);
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = p.select(&st) {
            assert!(seen.insert(v), "value {v} selected twice");
            st.status[v.index()] = CandStatus::Queried;
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn exhausted_frontier_returns_none() {
        let (st, _) = seeded_state();
        let mut p = GreedyLink::new();
        assert_eq!(p.select(&st), None);
    }

    #[test]
    fn queried_values_never_returned() {
        let (mut st, ids) = seeded_state();
        let mut p = GreedyLink::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        st.status[ids[0].index()] = CandStatus::Queried;
        let got = p.select(&st);
        assert!(got == Some(ids[1]) || got == Some(ids[2]), "got {got:?}");
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (d, v) = unpack(pack(12345, ValueId(678)));
        assert_eq!((d, v), (12345, ValueId(678)));
    }
}
