//! Frequency-greedy selection — the keyword-crawling baseline of the
//! parallel line of work the paper cites (Ntoulas, Zerfos & Cho, JCDL 2005:
//! "Downloading textual hidden Web content through keyword queries").
//!
//! Instead of the *link structure* (degree in `G_local`), it ranks candidates
//! by their local *match frequency* `num(q, DB_local)` — the document-
//! frequency signal used for text collections. On relational AVGs degree and
//! frequency correlate but are not identical: frequency counts records, while
//! degree counts distinct co-occurring values, so frequency over-rates values
//! that repeat inside a small clique. The Figure 3 harness can compare both.

use crate::policy::SelectionPolicy;
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use std::collections::BinaryHeap;

/// Frequency-greedy query selection (max `num(q, DB_local)` first).
#[derive(Debug, Default)]
pub struct FreqGreedy {
    /// Packed `(count << 32) | value_id` max-heap entries; stale entries are
    /// re-validated on pop exactly like [`crate::policy::GreedyLink`].
    heap: BinaryHeap<u64>,
}

#[inline]
fn pack(count: u32, v: ValueId) -> u64 {
    (u64::from(count) << 32) | u64::from(v.0)
}

impl FreqGreedy {
    /// New empty frequency-greedy frontier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionPolicy for FreqGreedy {
    fn name(&self) -> &'static str {
        "freq-greedy"
    }

    fn on_discovered(&mut self, state: &CrawlState, v: ValueId) {
        self.heap.push(pack(state.local.count(v), v));
    }

    fn on_query_done(&mut self, state: &CrawlState, _v: ValueId, outcome: &QueryOutcome) {
        for &v in &outcome.touched_values {
            if state.status_of(v) == CandStatus::Frontier {
                self.heap.push(pack(state.local.count(v), v));
            }
        }
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        while let Some(e) = self.heap.pop() {
            let (stored, v) = ((e >> 32) as u32, ValueId(e as u32));
            if state.status_of(v) != CandStatus::Frontier {
                continue;
            }
            if stored != state.local.count(v) {
                continue; // stale; a fresher entry exists
            }
            return Some(v);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::AttrId;

    #[test]
    fn selects_most_frequent_first() {
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let hot = st.intern(AttrId(0), "hot");
        let cold = st.intern(AttrId(0), "cold");
        st.status[hot.index()] = CandStatus::Frontier;
        st.status[cold.index()] = CandStatus::Frontier;
        for k in 0..3 {
            st.local.insert(k, vec![hot]);
        }
        st.local.insert(99, vec![cold]);
        let mut p = FreqGreedy::new();
        p.on_discovered(&st, hot);
        p.on_discovered(&st, cold);
        assert_eq!(p.select(&st), Some(hot));
    }

    #[test]
    fn count_updates_respected_via_touched() {
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let a = st.intern(AttrId(0), "a");
        let b = st.intern(AttrId(0), "b");
        st.status[a.index()] = CandStatus::Frontier;
        st.status[b.index()] = CandStatus::Frontier;
        st.local.insert(1, vec![a]);
        let mut p = FreqGreedy::new();
        p.on_discovered(&st, a);
        p.on_discovered(&st, b);
        // b surges past a.
        st.local.insert(2, vec![b]);
        st.local.insert(3, vec![b]);
        let outcome = QueryOutcome { touched_values: vec![b], ..Default::default() };
        p.on_query_done(&st, a, &outcome);
        assert_eq!(p.select(&st), Some(b));
    }

    #[test]
    fn exhaustion_returns_none() {
        let st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let mut p = FreqGreedy::new();
        assert_eq!(p.select(&st), None);
    }
}
