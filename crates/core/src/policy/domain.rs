//! The domain-knowledge query-selection policy (paper Section 4).
//!
//! Overcomes the two fundamental limitations of local-information policies:
//! *near-sighted estimation* (harvest rates estimated only from `DB_local`)
//! and the *limited candidate pool* (only already-seen values can be
//! queried). A [`DomainTable`] built from a same-domain sample database
//! provides:
//!
//! * **Q_DB estimation** (§4.2): for a discovered candidate,
//!   `HR(q) = 1 − num(q, DB_local) / n̂um(q, DB)` with
//!   `n̂um(q, DB) = |DB_local| · P(q, DM) / P(L_queried, DM)` (eq. 4.2) and
//!   the Δ_DM smoothing of eq. 4.3 for values missing from the table
//!   (we use the normalized, ∈[0,1] form of eq. 4.1 — see DESIGN.md);
//! * **Q_DT estimation** (§4.3): for a table value never seen in the target,
//!   `HR(q) = P(q ∈ DB | q ∈ DM)`, estimated by the running *hit rate* of the
//!   domain table against discovered values;
//! * **lazy harvest-rate evaluation** (§4.4): a lazy max-heap recomputes the
//!   exact HR only for popped candidates;
//! * **incremental `P(L_queried, DM)`** (§4.4) via
//!   [`crate::domain_table::CoveredSet`].

use crate::domain_table::{CoveredSet, DomainTable};
use crate::policy::SelectionPolicy;
use crate::state::{CandStatus, CrawlState, QueryOutcome};
use dwc_model::ValueId;
use std::collections::HashMap;
use std::sync::Arc;

/// Max-heap entry ordered by an `f64` harvest rate.
#[derive(Debug, PartialEq)]
struct QdbEntry {
    hr: f64,
    value: ValueId,
}

impl Eq for QdbEntry {}

impl PartialOrd for QdbEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QdbEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.hr.total_cmp(&other.hr).then_with(|| self.value.0.cmp(&other.value.0))
    }
}

/// Domain-knowledge-based query selection (DM).
#[derive(Debug)]
pub struct DomainPolicy {
    dm: Arc<DomainTable>,
    /// crawler value id → sample-side value id (None = not in the table).
    dm_of: Vec<Option<ValueId>>,
    /// `S(L_queried, DM)` maintained incrementally.
    covered: CoveredSet,
    /// Lazy max-heap over discovered candidates (Q_DB).
    qdb: std::collections::BinaryHeap<QdbEntry>,
    /// Static max-heap over never-discovered table values (Q_DT), keyed by
    /// domain frequency (packed `(freq << 32) | id`).
    qdt: std::collections::BinaryHeap<u64>,
    /// `|Δ_DM|` (eq. 4.3): target records carrying at least one out-of-table
    /// value.
    delta_size: u64,
    /// `num(q, Δ_DM)` per crawler value id.
    delta_counts: HashMap<u32, u32>,
    /// Cursor into `DB_local`'s append-only record list.
    processed_records: usize,
    /// Hit-rate counters for the §4.3 estimator: fraction of discovered
    /// values present in the table (`P(q ∈ DM | q ∈ DB)`).
    discovered_values: u64,
    hit_values: u64,
    /// Adaptive Q_DT success counters: how many Q_DT probes were issued and
    /// how many returned at least one record. The paper equates
    /// `P(q ∈ DB | q ∈ DM)` with the discovered-value hit rate via a
    /// symmetric-prior assumption; that assumption collapses when the target
    /// is much smaller than the sample, so the probe success rate is tracked
    /// directly (Laplace-smoothed) and the smaller of the two estimates wins.
    qdt_issued: u64,
    qdt_hits: u64,
    /// The in-flight Q_DT probe, if the last selection came from Q_DT.
    pending_qdt: Option<ValueId>,
}

impl DomainPolicy {
    /// New DM policy over a domain table.
    pub fn new(dm: Arc<DomainTable>) -> Self {
        let covered = CoveredSet::new(dm.num_records());
        DomainPolicy {
            dm,
            dm_of: Vec::new(),
            covered,
            qdb: std::collections::BinaryHeap::new(),
            qdt: std::collections::BinaryHeap::new(),
            delta_size: 0,
            delta_counts: HashMap::new(),
            processed_records: 0,
            discovered_values: 0,
            hit_values: 0,
            qdt_issued: 0,
            qdt_hits: 0,
            pending_qdt: None,
        }
    }

    fn dm_id(&self, v: ValueId) -> Option<ValueId> {
        self.dm_of.get(v.index()).copied().flatten()
    }

    fn set_dm_id(&mut self, v: ValueId, dm: ValueId) {
        if v.index() >= self.dm_of.len() {
            self.dm_of.resize(v.index() + 1, None);
        }
        self.dm_of[v.index()] = Some(dm);
    }

    /// Smoothed `P(q, DM)` per eq. 4.3:
    /// `(num(q, Δ_DM) + num(q, DM)) / (|Δ_DM| + |DM|)`.
    fn p_dm(&self, v: ValueId) -> f64 {
        let delta = self.delta_counts.get(&v.0).copied().unwrap_or(0) as f64;
        let base = self.dm_id(v).map_or(0, |d| self.dm.freq(d)) as f64;
        let denom = self.delta_size as f64 + self.dm.num_records() as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (delta + base) / denom
    }

    /// Estimated total matches of `v` in the target (eq. 4.2):
    /// `n̂um(v, DB) = |DB_local| · P(v, DM) / P(L_queried, DM)`.
    /// `None` until the estimator has evidence (nothing issued / no smoothed
    /// probability).
    fn est_total(&self, state: &CrawlState, v: ValueId) -> Option<f64> {
        let p_lq = self.covered.fraction();
        let p_dm = self.p_dm(v);
        if p_lq <= 0.0 || p_dm <= 0.0 {
            return None;
        }
        Some((state.local.num_records() as f64 * p_dm / p_lq).max(1.0))
    }

    /// Expected *new records per communication round* of retrieving `total`
    /// matches of which `local` are already held: Definition 2.5 with
    /// `cost = ⌈total / k⌉`.
    fn per_round_rate(&self, state: &CrawlState, total: f64, local: f64) -> f64 {
        let k = state.page_size as f64;
        let total = total.max(local).max(1.0);
        let pages = (total / k).ceil().max(1.0);
        ((total - local) / pages).max(0.0)
    }

    /// Harvest-rate estimate (new records/round) for a discovered candidate,
    /// combining eqs. 4.1–4.2 (see DESIGN.md on the per-round units).
    fn hr_qdb(&self, state: &CrawlState, v: ValueId) -> f64 {
        let num_local = f64::from(state.local.count(v));
        let k = state.page_size as f64;
        match self.est_total(state, v) {
            // No estimate yet → optimistic: a full page of new records.
            None => {
                if num_local == 0.0 {
                    k
                } else {
                    // Seen but unestimable: assume double what we hold.
                    self.per_round_rate(state, 2.0 * num_local, num_local)
                }
            }
            Some(est) => self.per_round_rate(state, est, num_local),
        }
    }

    /// The §4.3 discovered-value hit rate, `P(q ∈ DM | q ∈ DB)`.
    fn dm_hit_rate(&self) -> f64 {
        if self.discovered_values == 0 {
            return 1.0; // optimistic before any evidence
        }
        self.hit_values as f64 / self.discovered_values as f64
    }

    /// Laplace-smoothed Q_DT probe success rate — the direct estimate of
    /// `P(q ∈ DB | q ∈ DM)` from the crawl history.
    fn qdt_success_rate(&self) -> f64 {
        (self.qdt_hits as f64 + 1.0) / (self.qdt_issued as f64 + 2.0)
    }

    /// Expected harvest rate (new records/round) of the best unseen table
    /// value `v`: existence probability × per-round rate if it exists (all
    /// matches would be new, §4.3).
    fn hr_qdt(&self, state: &CrawlState, v: ValueId) -> f64 {
        let p_exist = self.dm_hit_rate().min(self.qdt_success_rate());
        let rate = match self.est_total(state, v) {
            Some(est) => self.per_round_rate(state, est, 0.0),
            None => state.page_size as f64,
        };
        p_exist * rate
    }

    /// Ingests records added to `DB_local` since the last query, maintaining
    /// Δ_DM (eq. 4.3).
    fn ingest_new_records(&mut self, state: &CrawlState) {
        let total = state.local.num_records();
        // Collect first to keep the borrow checker happy (records borrows
        // state, delta updates borrow self).
        let mut delta_updates: Vec<ValueId> = Vec::new();
        let mut new_delta_records = 0u64;
        for rec in state.local.records_since(self.processed_records) {
            let in_delta = rec.iter().any(|&v| self.dm_id(v).is_none());
            if in_delta {
                new_delta_records += 1;
                delta_updates.extend_from_slice(rec);
            }
        }
        self.processed_records = total;
        self.delta_size += new_delta_records;
        for v in delta_updates {
            *self.delta_counts.entry(v.0).or_insert(0) += 1;
        }
    }

    /// Pops the best valid Q_DB candidate using lazy re-evaluation: the top
    /// entry's HR is recomputed against current state; if it still beats the
    /// next entry's (stale, upper-bound-ish) key it is selected, otherwise it
    /// is re-pushed with its fresh value.
    fn pop_qdb(&mut self, state: &CrawlState) -> Option<(ValueId, f64)> {
        while let Some(top) = self.qdb.pop() {
            if state.status_of(top.value) != CandStatus::Frontier {
                continue;
            }
            let fresh = self.hr_qdb(state, top.value);
            match self.qdb.peek() {
                Some(next) if fresh < next.hr => {
                    self.qdb.push(QdbEntry { hr: fresh, value: top.value });
                }
                _ => return Some((top.value, fresh)),
            }
        }
        None
    }

    /// Pops the most domain-frequent Q_DT candidate still undiscovered.
    fn pop_qdt(&mut self, state: &CrawlState) -> Option<ValueId> {
        while let Some(e) = self.qdt.pop() {
            let v = ValueId(e as u32);
            if state.status_of(v) == CandStatus::Undiscovered {
                return Some(v);
            }
        }
        None
    }
}

impl SelectionPolicy for DomainPolicy {
    fn name(&self) -> &'static str {
        "domain"
    }

    /// Interns the whole domain table into the crawler vocabulary ("the
    /// database crawler not only acquires the categorical attribute values
    /// for query generation…", §4.1) and fills the Q_DT pool.
    fn init(&mut self, state: &mut CrawlState) {
        let dm = Arc::clone(&self.dm);
        for v in dm.sample().interner().iter_ids() {
            let attr = dm.sample().interner().attr_of(v);
            let attr_name = &dm.sample().schema().attr(attr).name;
            let Some(crawler_attr) = state.attr_by_name(attr_name) else { continue };
            let s = dm.sample().interner().value_str(v);
            let cv = state.intern(crawler_attr, s);
            self.set_dm_id(cv, v);
            if state.is_queriable(cv) {
                let freq = dm.freq(v) as u64;
                self.qdt.push((freq << 32) | u64::from(cv.0));
            }
        }
    }

    /// Rebuilds the covered set, Δ_DM and hit counters from a resumed state.
    /// The Q_DT probe statistics are not checkpointed and restart at the
    /// Laplace prior.
    fn resume(&mut self, state: &mut CrawlState) {
        self.init(state);
        let ids: Vec<ValueId> = (0..state.status.len() as u32).map(ValueId).collect();
        for v in ids {
            match state.status_of(v) {
                CandStatus::Undiscovered => {}
                status @ (CandStatus::Frontier | CandStatus::Queried) => {
                    self.discovered_values += 1;
                    if self.dm_id(v).is_some() {
                        self.hit_values += 1;
                    }
                    if status == CandStatus::Frontier {
                        let hr = self.hr_qdb(state, v);
                        self.qdb.push(QdbEntry { hr, value: v });
                    }
                }
            }
        }
        let queried = state.queried.clone();
        for q in queried {
            if let Some(dmid) = self.dm_id(q) {
                let dm = Arc::clone(&self.dm);
                self.covered.union_postings(dm.postings(dmid));
            }
        }
        self.ingest_new_records(state);
    }

    fn on_discovered(&mut self, state: &CrawlState, v: ValueId) {
        self.discovered_values += 1;
        if self.dm_id(v).is_some() {
            self.hit_values += 1;
        }
        let hr = self.hr_qdb(state, v);
        self.qdb.push(QdbEntry { hr, value: v });
    }

    fn on_query_done(&mut self, state: &CrawlState, v: ValueId, outcome: &QueryOutcome) {
        if self.pending_qdt.take() == Some(v) {
            self.qdt_issued += 1;
            if outcome.returned_records > 0 {
                self.qdt_hits += 1;
            }
        }
        self.ingest_new_records(state);
        if let Some(dmid) = self.dm_id(v) {
            // §4.4: S(L_queried[1..m], DM) ∪ S(L_queried[m], DM).
            let dm = Arc::clone(&self.dm);
            self.covered.union_postings(dm.postings(dmid));
        }
        for &t in &outcome.touched_values {
            if state.status_of(t) == CandStatus::Frontier {
                let hr = self.hr_qdb(state, t);
                self.qdb.push(QdbEntry { hr, value: t });
            }
        }
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        let qdb_best = self.pop_qdb(state);
        let qdt_best = self.pop_qdt(state);
        // Both candidates priced in the same units: expected new records per
        // communication round.
        let qdt_rate = qdt_best.map(|v| self.hr_qdt(state, v));
        let prefer_qdt = match (qdb_best, qdt_rate) {
            (Some((_, qdb_hr)), Some(rate)) => rate > qdb_hr,
            (None, Some(_)) => true,
            _ => false,
        };
        if prefer_qdt {
            if let Some((b, hr)) = qdb_best {
                self.qdb.push(QdbEntry { hr, value: b });
            }
            self.pending_qdt = qdt_best;
            qdt_best
        } else {
            // Return the unused Q_DT probe to its pool.
            if let Some(t) = qdt_best {
                let freq = self.dm_id(t).map_or(0, |d| self.dm.freq(d)) as u64;
                self.qdt.push((freq << 32) | u64::from(t.0));
            }
            qdb_best.map(|(v, _)| v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::fixtures::{figure1_schema, figure1_table};
    use dwc_model::AttrId;

    fn figure1_state() -> CrawlState {
        let schema = figure1_schema();
        let names = (0..schema.len()).map(|i| schema.attr(AttrId(i as u16)).name.clone()).collect();
        CrawlState::new(names, vec![true, true, true], 10)
    }

    fn policy_with_figure1_dm() -> (DomainPolicy, CrawlState) {
        let dm = Arc::new(DomainTable::build(figure1_table()));
        let mut p = DomainPolicy::new(dm);
        let mut st = figure1_state();
        p.init(&mut st);
        (p, st)
    }

    #[test]
    fn init_interns_whole_table_as_undiscovered() {
        let (_, st) = policy_with_figure1_dm();
        assert_eq!(st.vocab.len(), 9);
        assert!(st.vocab.iter_ids().all(|v| st.status_of(v) == CandStatus::Undiscovered));
    }

    #[test]
    fn first_selection_is_most_domain_frequent_table_value() {
        let (mut p, st) = policy_with_figure1_dm();
        // Frequencies in Figure 1: a2 and c2 match 3 records each; c1 two.
        let v = p.select(&st).expect("Q_DT pool nonempty");
        let s = st.vocab.value_str(v);
        assert!(s == "a2" || s == "c2", "got {s}");
    }

    #[test]
    fn discovered_in_table_values_raise_hit_rate() {
        let (mut p, mut st) = policy_with_figure1_dm();
        let a2 = st.vocab.get(AttrId(0), "a2").unwrap();
        st.status[a2.index()] = CandStatus::Frontier;
        p.on_discovered(&st, a2);
        assert_eq!(p.dm_hit_rate(), 1.0);
        // An out-of-table discovery lowers it.
        let alien = st.intern(AttrId(0), "alien");
        st.status[alien.index()] = CandStatus::Frontier;
        p.on_discovered(&st, alien);
        assert_eq!(p.dm_hit_rate(), 0.5);
    }

    #[test]
    fn qdt_probe_success_is_learned() {
        let (mut p, mut st) = policy_with_figure1_dm();
        assert_eq!(p.qdt_success_rate(), 0.5, "Laplace prior");
        // First selection comes from Q_DT; report it as a miss.
        let v = p.select(&st).unwrap();
        st.status[v.index()] = CandStatus::Queried;
        let miss = QueryOutcome::default();
        p.on_query_done(&st, v, &miss);
        assert_eq!(p.qdt_issued, 1);
        assert_eq!(p.qdt_hits, 0);
        assert!(p.qdt_success_rate() < 0.5, "misses must lower the estimate");
        // A successful probe raises it again.
        let v2 = p.select(&st).unwrap();
        st.status[v2.index()] = CandStatus::Queried;
        let hit = QueryOutcome { returned_records: 4, ..Default::default() };
        p.on_query_done(&st, v2, &hit);
        assert_eq!(p.qdt_hits, 1);
    }

    #[test]
    fn delta_dm_smoothing_tracks_out_of_table_records() {
        let (mut p, mut st) = policy_with_figure1_dm();
        let a2 = st.vocab.get(AttrId(0), "a2").unwrap();
        let alien = st.intern(AttrId(1), "alien");
        // One record entirely inside the table, one carrying an unknown value.
        st.local.insert(1, vec![a2]);
        st.local.insert(2, vec![a2, alien]);
        p.ingest_new_records(&st);
        assert_eq!(p.delta_size, 1);
        // a2 appears in 1 Δ_DM record; alien too.
        assert_eq!(p.delta_counts.get(&a2.0), Some(&1));
        assert_eq!(p.delta_counts.get(&alien.0), Some(&1));
        // Smoothed P(alien, DM) = (1 + 0) / (1 + 5).
        assert!((p.p_dm(alien) - 1.0 / 6.0).abs() < 1e-12);
        // Smoothed P(a2, DM) = (1 + 3) / (1 + 5).
        assert!((p.p_dm(a2) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn covered_set_grows_only_for_table_queries() {
        let (mut p, mut st) = policy_with_figure1_dm();
        let a2 = st.vocab.get(AttrId(0), "a2").unwrap();
        st.status[a2.index()] = CandStatus::Queried;
        st.queried.push(a2);
        p.on_query_done(&st, a2, &QueryOutcome::default());
        assert_eq!(p.covered.len(), 3, "a2 matches 3 sample records");
        let alien = st.intern(AttrId(0), "alien");
        st.status[alien.index()] = CandStatus::Queried;
        p.on_query_done(&st, alien, &QueryOutcome::default());
        assert_eq!(p.covered.len(), 3, "out-of-table query covers nothing");
    }

    #[test]
    fn hr_qdb_decreases_as_local_copies_accumulate() {
        let (mut p, mut st) = policy_with_figure1_dm();
        let a2 = st.vocab.get(AttrId(0), "a2").unwrap();
        let c1 = st.vocab.get(AttrId(2), "c1").unwrap();
        st.status[a2.index()] = CandStatus::Frontier;
        assert_eq!(p.hr_qdb(&st, a2), 10.0, "nothing local yet → a full page of new records");
        // Simulate: c1 was queried and covered 2 sample records; two records
        // containing a2 are local.
        st.status[c1.index()] = CandStatus::Queried;
        st.local.insert(1, vec![a2, c1]);
        st.local.insert(2, vec![a2, c1]);
        p.on_query_done(&st, c1, &QueryOutcome::default());
        let hr = p.hr_qdb(&st, a2);
        // est_total = |DBlocal|·P(a2,DM)/P(Lq,DM) = 2·0.6/0.4 = 3 matches;
        // 2 already local → 1 new record in ⌈3/10⌉ = 1 round.
        assert!((hr - 1.0).abs() < 1e-9, "hr = {hr}");
        assert!(hr < 10.0, "estimate must drop as local copies accumulate");
    }

    #[test]
    fn selection_prefers_qdb_when_hit_rate_low() {
        let (mut p, mut st) = policy_with_figure1_dm();
        // Make hit rate 0 by discovering only out-of-table values.
        let alien = st.intern(AttrId(0), "alien1");
        st.status[alien.index()] = CandStatus::Frontier;
        p.on_discovered(&st, alien);
        let alien2 = st.intern(AttrId(0), "alien2");
        st.status[alien2.index()] = CandStatus::Frontier;
        p.on_discovered(&st, alien2);
        assert_eq!(p.dm_hit_rate(), 0.0);
        let v = p.select(&st).unwrap();
        assert!(st.vocab.value_str(v).starts_with("alien"), "Q_DB must win");
    }

    #[test]
    fn qdt_entries_skipped_once_discovered() {
        let (mut p, mut st) = policy_with_figure1_dm();
        // Discover a2 (a Q_DT favourite) in the target: the Q_DT pool must
        // no longer offer it.
        let a2 = st.vocab.get(AttrId(0), "a2").unwrap();
        st.status[a2.index()] = CandStatus::Frontier;
        p.on_discovered(&st, a2);
        let probe = p.pop_qdt(&st).unwrap();
        assert_ne!(probe, a2, "discovered values leave the Q_DT pool");
        assert_eq!(st.vocab.value_str(probe), "c2", "next-most-frequent table value");
    }

    #[test]
    fn exhausted_pools_return_none() {
        let dm = Arc::new(DomainTable::build(dwc_model::UniversalTable::new(figure1_schema())));
        let mut p = DomainPolicy::new(dm);
        let mut st = figure1_state();
        p.init(&mut st);
        assert_eq!(p.select(&st), None);
    }
}
