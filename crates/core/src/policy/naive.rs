//! The naive query-selection policies of §3.1.
//!
//! "For the breath-first selection, L_to-query is organized as a queue. …
//! For the depth-first query selection, L_to-query is implemented as a stack.
//! … Finally, the random query selector picks a random element from
//! L_to-query."

use crate::policy::SelectionPolicy;
use crate::state::{CandStatus, CrawlState};
use dwc_model::ValueId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Breadth-first selection: earliest-discovered value first.
#[derive(Debug, Default)]
pub struct Bfs {
    queue: VecDeque<ValueId>,
}

impl Bfs {
    /// New empty BFS frontier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionPolicy for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn on_discovered(&mut self, _state: &CrawlState, v: ValueId) {
        self.queue.push_back(v);
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        while let Some(v) = self.queue.pop_front() {
            if state.status_of(v) == CandStatus::Frontier {
                return Some(v);
            }
        }
        None
    }
}

/// Depth-first selection: newest-discovered value first.
#[derive(Debug, Default)]
pub struct Dfs {
    stack: Vec<ValueId>,
}

impl Dfs {
    /// New empty DFS frontier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionPolicy for Dfs {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn on_discovered(&mut self, _state: &CrawlState, v: ValueId) {
        self.stack.push(v);
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        while let Some(v) = self.stack.pop() {
            if state.status_of(v) == CandStatus::Frontier {
                return Some(v);
            }
        }
        None
    }
}

/// Uniform random selection from the frontier.
#[derive(Debug)]
pub struct RandomSelect {
    pool: Vec<ValueId>,
    rng: StdRng,
}

impl RandomSelect {
    /// New random selector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSelect { pool: Vec::new(), rng: StdRng::seed_from_u64(seed) }
    }
}

impl SelectionPolicy for RandomSelect {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_discovered(&mut self, _state: &CrawlState, v: ValueId) {
        self.pool.push(v);
    }

    fn select(&mut self, state: &CrawlState) -> Option<ValueId> {
        while !self.pool.is_empty() {
            let i = self.rng.gen_range(0..self.pool.len());
            let v = self.pool.swap_remove(i);
            if state.status_of(v) == CandStatus::Frontier {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_model::AttrId;

    fn state_with(values: &[&str]) -> (CrawlState, Vec<ValueId>) {
        let mut st = CrawlState::new(vec!["A".into()], vec![true], 10);
        let ids: Vec<ValueId> = values
            .iter()
            .map(|s| {
                let id = st.intern(AttrId(0), s);
                st.status[id.index()] = CandStatus::Frontier;
                id
            })
            .collect();
        (st, ids)
    }

    #[test]
    fn bfs_is_fifo() {
        let (st, ids) = state_with(&["a", "b", "c"]);
        let mut p = Bfs::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        assert_eq!(p.select(&st), Some(ids[0]));
        assert_eq!(p.select(&st), Some(ids[1]));
        assert_eq!(p.select(&st), Some(ids[2]));
        assert_eq!(p.select(&st), None);
    }

    #[test]
    fn dfs_is_lifo() {
        let (st, ids) = state_with(&["a", "b", "c"]);
        let mut p = Dfs::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        assert_eq!(p.select(&st), Some(ids[2]));
        assert_eq!(p.select(&st), Some(ids[1]));
        assert_eq!(p.select(&st), Some(ids[0]));
        assert_eq!(p.select(&st), None);
    }

    #[test]
    fn random_selects_each_exactly_once() {
        let (st, ids) = state_with(&["a", "b", "c", "d", "e"]);
        let mut p = RandomSelect::new(7);
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        let mut got: Vec<ValueId> = (0..5).map(|_| p.select(&st).unwrap()).collect();
        assert_eq!(p.select(&st), None);
        got.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (st, ids) = state_with(&["a", "b", "c", "d", "e", "f"]);
        let run = |seed| {
            let mut p = RandomSelect::new(seed);
            for &v in &ids {
                p.on_discovered(&st, v);
            }
            (0..6).map(|_| p.select(&st).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn queried_entries_are_skipped() {
        let (mut st, ids) = state_with(&["a", "b"]);
        let mut p = Bfs::new();
        for &v in &ids {
            p.on_discovered(&st, v);
        }
        st.status[ids[0].index()] = CandStatus::Queried;
        assert_eq!(p.select(&st), Some(ids[1]));
    }
}
