//! Query selection policies (`L_to-query` organizations).
//!
//! The Query Selector of §2.5 is a pluggable policy deciding which candidate
//! attribute value to issue next. "The naïve methods … do not utilize any
//! database information"; the greedy link-based method follows local-graph
//! degree; MMMI re-ranks by mutual information; the domain-knowledge policy
//! estimates harvest rates from a domain statistics table.

use crate::domain_table::DomainTable;
use crate::state::{CrawlState, QueryOutcome};
use dwc_model::ValueId;
use std::sync::Arc;

mod domain;
mod freq;
mod greedy;
mod mmmi;
mod naive;

pub use domain::DomainPolicy;
pub use freq::FreqGreedy;
pub use greedy::GreedyLink;
pub use mmmi::{Mmmi, MmmiConfig, Saturation};
pub use naive::{Bfs, Dfs, RandomSelect};

/// A query-selection policy: the organization of `L_to-query`.
///
/// The crawler owns the shared [`CrawlState`] (vocabulary, statuses,
/// `L_queried`, `DB_local`) and drives the policy through these hooks. A
/// policy must only return values whose status is
/// [`crate::state::CandStatus::Frontier`] — except the domain-knowledge
/// policy, which may return `Undiscovered` values from its domain-table pool
/// (Q_DT).
///
/// Policies are `Send` so a parked crawler (policy included) can migrate
/// between the fleet scheduler's worker threads across budget slices; every
/// built-in policy is plain owned data.
pub trait SelectionPolicy: Send {
    /// Display name (used by the experiment harnesses).
    fn name(&self) -> &'static str;

    /// One-time setup before any seed is added (e.g. the DM policy interns
    /// its whole domain table into the crawler vocabulary here — "the
    /// database crawler … acquires the categorical attribute values for query
    /// generation", §4.1).
    fn init(&mut self, _state: &mut CrawlState) {}

    /// A queriable value just entered the frontier.
    fn on_discovered(&mut self, state: &CrawlState, v: ValueId);

    /// Rebuilds policy-internal structures from a resumed crawl state
    /// (see `dwc_core::checkpoint`). The default runs [`Self::init`] and
    /// re-announces every frontier value; ids are assigned in discovery
    /// order, so queue/stack/heap policies recover their original semantics.
    /// Policies with derived aggregates (the DM policy's covered set, Δ_DM
    /// and hit counters) override this.
    fn resume(&mut self, state: &mut CrawlState) {
        self.init(state);
        let frontier: Vec<ValueId> = (0..state.status.len() as u32)
            .map(ValueId)
            .filter(|&v| state.status_of(v) == crate::state::CandStatus::Frontier)
            .collect();
        for v in frontier {
            self.on_discovered(state, v);
        }
    }

    /// A query completed (or was aborted); `outcome.touched_values` lists the
    /// values whose local statistics may have changed.
    fn on_query_done(&mut self, _state: &CrawlState, _v: ValueId, _outcome: &QueryOutcome) {}

    /// Picks the next value to query; `None` ends the crawl.
    fn select(&mut self, state: &CrawlState) -> Option<ValueId>;
}

/// Constructors for the built-in policies (harness convenience).
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Breadth-first (`L_to-query` as a FIFO queue).
    Bfs,
    /// Depth-first (`L_to-query` as a stack).
    Dfs,
    /// Uniform random selection with the given seed.
    Random(u64),
    /// Greedy link-based selection (max degree in `G_local`).
    GreedyLink,
    /// Frequency-greedy selection (max `num(q, DB_local)`), the Ntoulas et
    /// al. keyword-crawling baseline.
    FreqGreedy,
    /// Greedy + min–max mutual-information re-ranking.
    Mmmi(MmmiConfig),
    /// Domain-knowledge-based selection over the given domain table.
    Domain(Arc<DomainTable>),
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn SelectionPolicy> {
        match self {
            PolicyKind::Bfs => Box::new(Bfs::new()),
            PolicyKind::Dfs => Box::new(Dfs::new()),
            PolicyKind::Random(seed) => Box::new(RandomSelect::new(*seed)),
            PolicyKind::GreedyLink => Box::new(GreedyLink::new()),
            PolicyKind::FreqGreedy => Box::new(FreqGreedy::new()),
            PolicyKind::Mmmi(cfg) => Box::new(Mmmi::new(*cfg)),
            PolicyKind::Domain(dt) => Box::new(DomainPolicy::new(Arc::clone(dt))),
        }
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Bfs => "BFS",
            PolicyKind::Dfs => "DFS",
            PolicyKind::Random(_) => "Random",
            PolicyKind::GreedyLink => "GL",
            PolicyKind::FreqGreedy => "FreqGreedy",
            PolicyKind::Mmmi(_) => "GL+MMMI",
            PolicyKind::Domain(_) => "DM",
        }
    }
}
